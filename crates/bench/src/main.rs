//! `trustmeter-bench` — the fleet perf harness.
//!
//! Streams a fixed audited batch through a [`FleetService`] worker pool
//! three times — journaling **off**, write-ahead journaling to the legacy
//! flush-per-append **file** sink, and to the **segmented** group-commit
//! sink (rotation, fsync policy, inline checkpoint cadence) — and writes
//! a JSON report (`BENCH_fleet.json` by default) with wall clock,
//! jobs/sec, the auditor's replay counters and the journal
//! append/commit/rotation/fsync counters, so both the performance
//! trajectory of the audited streaming path *and* the cost of each
//! durability mode are tracked from run to run. A fourth **sealed** mode
//! runs the same segmented configuration with the evidence ledger on
//! (hash-chained lines, signed block headers on rotation), so the
//! chain+seal overhead vs plain group commit is tracked from run to run.
//! With `--faults` a fifth **faulted** mode repeats the sealed
//! configuration with the journal sink wrapped in a
//! [`FaultInjectingSink`] carrying an *empty* schedule and the ingest
//! [`RetryPolicy`] armed: no fault ever fires, so the delta vs `sealed`
//! is what the fault-tolerance plumbing (the wrapper indirection plus
//! the retry loop around every group commit) costs on the healthy path.
//! In segmented and sealed modes the harness additionally reopens the
//! segment directory and verifies that recovery reproduces the live
//! service's ledger and metering exposition bit for bit; in sealed mode
//! it also verifies every sealed block header cryptographically.
//!
//! ```text
//! trustmeter-bench [--smoke] [--faults] [--jobs N] [--workers N]
//!                  [--repeat N] [--out PATH] [--fsync never|every|group]
//!                  [--group-entries N] [--group-bytes N]
//!                  [--segment-bytes N] [--checkpoint-every N]
//!                  [--arrival-rate JOBS_PER_SEC] [--duration SECS]
//! ```
//!
//! With `--arrival-rate` the harness additionally runs an **open-loop
//! sustained-load session**: a seeded Poisson arrival schedule (quantized
//! to 1 ms virtual ticks) is paced against the wall clock and submitted in
//! `submit_all` chunks through a bounded, shed-on-overflow queue — load
//! keeps arriving whether or not the service keeps up, which is what
//! separates a saturation measurement from the closed-loop modes above.
//! Tenant fairness is deficit-weighted by rate card (a tenant paying 4×
//! the base rate gets a 4× queue weight), and a small autoscaler
//! grows/shrinks the worker pool off the queue-depth gauge. The session's
//! saturation report (offered vs achieved rate, shed count, queue-depth
//! peak, autoscale trace, buffer-pool recycling, per-tenant shares) lands
//! in the output JSON under `open_loop`.
//!
//! Modes are measured in interleaved rounds (off, file, segmented, off,
//! file, …) and the reported run per mode is the **median** by wall
//! clock, so slow-machine drift hits every mode evenly instead of
//! whichever ran last. Every mode additionally runs each round **with a
//! pipeline tracer attached**: the report carries per-stage latency
//! distributions (p50/p90/p99 for queue wait, execution, audit, journal
//! commit and post, from the `fleet_stage_seconds` histograms), the
//! tracer's self-accounted overhead, and the measured tracing-on vs
//! tracing-off wall-clock delta — the meter metering itself.
//!
//! `--smoke` shrinks the batch to a few jobs for CI: it proves the harness
//! (including all three durability modes and the recovery check) runs end
//! to end without spending CI minutes on a real measurement.

use std::collections::BTreeMap;
use std::time::Instant;

use serde::Serialize;
use trustmeter_fleet::{
    metering_exposition, AttackSpec, BackpressurePolicy, CheckpointCadence, FaultInjectingSink,
    FaultSchedule, FleetConfig, FleetService, FsyncPolicy, IngestConfig, JobSpec, Journal,
    JournalStats, PipelineTracer, PoolStats, RateCard, RetryPolicy, SamplingPolicy, SegmentConfig,
    SegmentedFileSink, Stage, SubmitError, Tenant, TenantId,
};
use trustmeter_workloads::Workload;

/// Workload scale for harness jobs (matches the criterion fleet bench).
const SCALE: f64 = 0.001;
/// Fleet seed (matches the criterion fleet bench).
const SEED: u64 = 0xf1ee7;

/// How one harness run persists its journal.
#[derive(Debug, Clone, Copy)]
enum JournalMode {
    /// In-memory ledgers only.
    Off,
    /// The PR-4 sink: one append-only file, flush per entry.
    LegacyFile,
    /// Segmented group-commit sink with an inline checkpoint cadence.
    /// `label` distinguishes the flush-only run (`segmented`, the same
    /// process-death durability level as the legacy file sink) from the
    /// fsync-policy run (`segmented-fsync`, power-loss durability — a
    /// level the legacy sink never offered).
    Segmented {
        label: &'static str,
        config: SegmentConfig,
        checkpoint_every: u64,
    },
    /// The sealed segmented configuration with the sink wrapped in a
    /// [`FaultInjectingSink`] carrying an **empty** schedule and the
    /// ingest retry policy armed (`--faults`). No fault ever fires —
    /// the delta vs `sealed` is the healthy-path cost of the
    /// fault-tolerance plumbing itself.
    Faulted {
        config: SegmentConfig,
        checkpoint_every: u64,
    },
}

impl JournalMode {
    fn label(&self) -> &'static str {
        match self {
            JournalMode::Off => "off",
            JournalMode::LegacyFile => "file",
            JournalMode::Segmented { label, .. } => label,
            JournalMode::Faulted { .. } => "faulted",
        }
    }

    /// The segment configuration to reopen for the post-run recovery
    /// check (`None` for the unsegmented modes).
    fn segment_config(&self) -> Option<SegmentConfig> {
        match self {
            JournalMode::Segmented { config, .. } | JournalMode::Faulted { config, .. } => {
                Some(*config)
            }
            _ => None,
        }
    }
}

/// One pipeline stage's latency distribution, read back from the traced
/// run's `fleet_stage_seconds` histogram.
#[derive(Debug, Clone, Serialize)]
struct StageLatency {
    /// Stage label (`queue_wait`, `execute`, `audit`, `journal_commit`,
    /// `post`).
    stage: &'static str,
    /// Observations recorded for the stage.
    count: u64,
    /// Estimated p50 latency in seconds (`null` with zero observations).
    p50_secs: Option<f64>,
    /// Estimated p90 latency in seconds.
    p90_secs: Option<f64>,
    /// Estimated p99 latency in seconds.
    p99_secs: Option<f64>,
}

/// What one harness run measured.
#[derive(Debug, Serialize)]
struct BenchReport {
    /// Harness identifier.
    bench: &'static str,
    /// Durability mode: `off`, `file` (legacy flush-per-append),
    /// `segmented` (group-commit pipeline), `sealed` (group commit plus
    /// the hash-chained, block-sealed evidence ledger), `faulted` (the
    /// sealed configuration behind a no-op fault wrapper with the retry
    /// policy armed, `--faults` only) or `segmented-fsync` (group
    /// commit under the configured fsync policy).
    journal: &'static str,
    /// Fsync policy of the segmented run (`null` otherwise).
    fsync: Option<FsyncPolicy>,
    /// Segment rotation threshold of the segmented run (0 otherwise).
    segment_bytes: u64,
    /// Inline checkpoint cadence of the segmented run, in posted runs
    /// (0 = disabled).
    checkpoint_every: u64,
    /// Jobs streamed through the service.
    jobs: u64,
    /// Worker threads in the ingest pool.
    workers: usize,
    /// Interleaved measurement rounds this mode ran; the reported numbers
    /// are the median round by wall clock.
    repeat: usize,
    /// Workload scale factor per job.
    scale: f64,
    /// Audit sampling policy the run used.
    sampling: SamplingPolicy,
    /// End-to-end wall clock of submit → pump → finish, in seconds.
    wall_secs: f64,
    /// Jobs per wall-clock second.
    jobs_per_sec: f64,
    /// Inline reference replays the auditor performed (serial cost).
    audit_replays: u64,
    /// Runs audited with a worker-precomputed reference (parallel cost).
    audit_reference_hits: u64,
    /// Runs the audit flagged with at least one anomaly.
    flagged_runs: u64,
    /// Journal entries appended (0 with journaling off).
    journal_appends: u64,
    /// Journal bytes appended (0 with journaling off).
    journal_bytes: u64,
    /// Batched journal commits (one sink write per batch).
    journal_group_commits: u64,
    /// Segment rotations.
    journal_rotations: u64,
    /// fsync calls issued by the sink.
    journal_fsyncs: u64,
    /// Segments retired as superseded by a checkpoint.
    journal_segments_retired: u64,
    /// Signed block headers sealed over rotated segments (0 outside
    /// sealed mode).
    journal_seals: u64,
    /// Sealed block headers that verified cryptographically when the
    /// journal was reopened (0 outside sealed mode).
    seals_verified: u64,
    /// Whether a post-run recovery from the journal reproduced the live
    /// ledger and metering exposition bit for bit. `null` for the modes
    /// that have nothing to recover from (`off`, and `file` — the legacy
    /// sink has no recovery check wired); a boolean only where the check
    /// actually ran, so "did not run" can never read as "failed".
    recovery_bit_identical: Option<bool>,
    /// End-to-end wall clock of the median tracing-**on** round, in
    /// seconds (`wall_secs` is the tracing-off median — both run in every
    /// interleaved round).
    traced_wall_secs: f64,
    /// Measured cost of observing: traced vs untraced wall clock, in
    /// percent (positive = tracing slowed the run down).
    tracing_overhead_pct: f64,
    /// Spans the tracer recorded during the median traced round.
    observer_spans: u64,
    /// Time spent inside the observability layer itself during the median
    /// traced round, in seconds (the self-accounted share of the
    /// overhead).
    observer_overhead_secs: f64,
    /// Per-stage latency distributions from the median traced round.
    stages: Vec<StageLatency>,
}

/// The `i`-th harness job: tenants and workloads rotate, every fourth job
/// carries an attack (shared by the closed-loop batch and the open-loop
/// arrival stream).
fn spec(i: u64) -> JobSpec {
    let tenant = TenantId((i % 4) as u32 + 1);
    let workload = Workload::ALL[(i % 4) as usize];
    if i.is_multiple_of(4) {
        JobSpec::attacked(i, tenant, workload, SCALE, AttackSpec::Shell)
    } else {
        JobSpec::clean(i, tenant, workload, SCALE)
    }
}

fn batch(n: u64) -> Vec<JobSpec> {
    (0..n).map(spec).collect()
}

fn build_service(workers: usize) -> FleetService {
    let mut service = FleetService::new(FleetConfig::new(workers, SEED));
    for id in 1..=4u32 {
        service.register(Tenant::new(
            TenantId(id),
            format!("t{id}"),
            RateCard::per_cpu_hour(0.10),
        ));
    }
    service
}

fn run(jobs: u64, workers: usize, mode: JournalMode, traced: bool) -> BenchReport {
    // Per-mode scratch space under the temp dir, cleaned up at the end.
    let scratch = std::env::temp_dir().join(format!(
        "trustmeter-bench-{}-{}",
        mode.label(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create bench scratch dir");

    let mut service = build_service(workers);
    let tracer = traced.then(|| {
        // Up to five spans per job (queue wait, execute, audit, commit,
        // post); size the ring so a full run fits without evictions.
        PipelineTracer::new((jobs as usize * 8).max(64), SEED)
    });
    if let Some(tracer) = &tracer {
        service = service.with_tracer(tracer.clone());
    }
    let (fsync, segment_bytes, checkpoint_every, retry) = match mode {
        JournalMode::Off => (None, 0, 0, None),
        JournalMode::LegacyFile => {
            let journal = Journal::file(scratch.join("journal.jsonl")).expect("open bench journal");
            service = service.with_journal(journal);
            (None, 0, 0, None)
        }
        JournalMode::Segmented {
            config,
            checkpoint_every,
            ..
        } => {
            let journal =
                Journal::segmented(scratch.join("segments"), config).expect("open bench segments");
            service = service.with_journal(journal);
            if checkpoint_every > 0 {
                service = service
                    .with_checkpoint_cadence(CheckpointCadence::every_n_runs(checkpoint_every));
            }
            (
                Some(config.fsync),
                config.segment_bytes,
                checkpoint_every,
                None,
            )
        }
        JournalMode::Faulted {
            config,
            checkpoint_every,
        } => {
            // Same on-disk layout as the sealed mode, but every write
            // funnels through the fault wrapper (with nothing scheduled)
            // and every group commit runs inside the retry loop.
            let sink =
                SegmentedFileSink::open(scratch.join("segments"), config).expect("open segments");
            let (sink, _probe) = FaultInjectingSink::wrap(Box::new(sink), FaultSchedule::none());
            let journal = Journal::with_sink(Box::new(sink)).expect("wrap bench sink");
            service = service.with_journal(journal);
            if checkpoint_every > 0 {
                service = service
                    .with_checkpoint_cadence(CheckpointCadence::every_n_runs(checkpoint_every));
            }
            (
                Some(config.fsync),
                config.segment_bytes,
                checkpoint_every,
                Some(RetryPolicy::default()),
            )
        }
    };

    let specs = batch(jobs);
    let start = Instant::now();
    let mut ingest = IngestConfig::new(workers).with_capacity(specs.len());
    if let Some(policy) = retry {
        ingest = ingest.with_retry_policy(policy);
    }
    let mut stream = service.stream(ingest);
    // Submit in chunks: one guard hold, one Accepted group commit and one
    // worker wake per chunk instead of per job (results are bit-identical
    // to per-job submission), pumping completions between chunks.
    for chunk in specs.chunks(32) {
        stream.submit_all(chunk).expect("queue sized for batch");
        stream.pump();
    }
    // Keep pumping while the workers drain, like a live consumer would:
    // journal group commits then overlap with execution instead of
    // piling into a serial tail after the last job completes.
    while stream.verdicts().len() < jobs as usize {
        stream.pump();
        std::thread::yield_now();
    }
    let report = stream.finish();
    let wall_secs = start.elapsed().as_secs_f64();
    assert_eq!(report.records.len() as u64, jobs, "every job completed");
    let flagged_runs = report.flagged().count() as u64;
    let journal_stats = service.journal().map(|j| j.stats()).unwrap_or_default();

    // Segmented/sealed/faulted modes close the loop: reopen the
    // (rotated, retired) segment directory with the mode's own config and prove
    // recovery is bit-identical to the live service — neither the
    // group-commit pipeline nor the evidence ledger may cost correctness.
    // Sealed mode additionally verifies every sealed block header.
    let mut seals_verified = 0;
    let recovery_bit_identical = if let Some(config) = mode.segment_config() {
        let reopened =
            Journal::segmented(scratch.join("segments"), config).expect("reopen bench segments");
        let (entries, _tail) = reopened.entries().expect("parse bench journal");
        let mut recovered = build_service(workers);
        recovered
            .recover_latest(&entries)
            .expect("recover bench journal");
        assert_eq!(
            recovered.ledger(),
            service.ledger(),
            "recovered ledger == live ledger"
        );
        assert_eq!(
            metering_exposition(&recovered.metrics_text()),
            metering_exposition(&service.metrics_text()),
            "recovered metering exposition == live exposition"
        );
        if config.seal.is_some() {
            let verification = reopened.verify(SEED).expect("verify sealed bench journal");
            seals_verified = verification.seals_verified;
        }
        Some(true)
    } else {
        None
    };
    let _ = std::fs::remove_dir_all(&scratch);

    // Read the per-stage distributions back from the traced run's
    // histograms (zero observations — e.g. journal_commit with journaling
    // off — report `null` quantiles).
    let metrics = service.metrics();
    let stages = Stage::ALL
        .iter()
        .map(|stage| {
            let labels = [("stage", stage.label())];
            StageLatency {
                stage: stage.label(),
                count: metrics
                    .histogram_count("fleet_stage_seconds", &labels)
                    .unwrap_or(0),
                p50_secs: metrics.histogram_quantile("fleet_stage_seconds", &labels, 0.5),
                p90_secs: metrics.histogram_quantile("fleet_stage_seconds", &labels, 0.9),
                p99_secs: metrics.histogram_quantile("fleet_stage_seconds", &labels, 0.99),
            }
        })
        .collect();
    // The bench never schedules worker faults, so a healthy run must not
    // record a single reassignment span — if one shows up, the supervisor
    // reaped a worker that did nothing wrong (`--faults` smoke tripwire).
    if matches!(mode, JournalMode::Faulted { .. }) {
        let reassigns = metrics
            .histogram_count("fleet_stage_seconds", &[("stage", Stage::Reassign.label())])
            .unwrap_or(0);
        assert_eq!(reassigns, 0, "healthy bench run reassigned a job");
    }
    let observer = tracer.as_ref().map(|t| t.stats()).unwrap_or_default();

    let sampling = service.auditor().sampling();
    BenchReport {
        bench: "fleet_stream_audited",
        journal: mode.label(),
        fsync,
        segment_bytes,
        checkpoint_every,
        jobs,
        workers,
        repeat: 1,
        scale: SCALE,
        sampling,
        wall_secs,
        jobs_per_sec: jobs as f64 / wall_secs.max(f64::EPSILON),
        audit_replays: service.auditor().replay_count(),
        audit_reference_hits: service.auditor().reference_hit_count(),
        flagged_runs,
        journal_appends: journal_stats.appends,
        journal_bytes: journal_stats.bytes,
        journal_group_commits: journal_stats.group_commits,
        journal_rotations: journal_stats.rotations,
        journal_fsyncs: journal_stats.fsyncs,
        journal_segments_retired: journal_stats.segments_retired,
        journal_seals: journal_stats.seals,
        seals_verified,
        recovery_bit_identical,
        traced_wall_secs: if traced { wall_secs } else { 0.0 },
        tracing_overhead_pct: 0.0,
        observer_spans: observer.spans_recorded,
        observer_overhead_secs: observer.overhead_nanos as f64 / 1e9,
        stages,
    }
}

/// Folds the median traced round into the median untraced report: the
/// headline `wall_secs` stays the tracing-off number, the traced round
/// contributes its wall clock, the observer self-accounting and the
/// per-stage distributions. `tracing_overhead_pct` is **not** the ratio of
/// the two medians — those may come from different rounds, and on a noisy
/// machine that ratio swings by more than the effect being measured.
/// Instead it is the median of the per-round *paired* deltas: each round
/// runs tracing-on and tracing-off back to back, so its delta cancels
/// whatever drift that round carried, and the median across rounds drops
/// the outliers.
fn merge_traced(
    mut untraced: BenchReport,
    traced: BenchReport,
    paired_overhead_pct: f64,
) -> BenchReport {
    untraced.traced_wall_secs = traced.wall_secs;
    untraced.tracing_overhead_pct = paired_overhead_pct;
    untraced.observer_spans = traced.observer_spans;
    untraced.observer_overhead_secs = traced.observer_overhead_secs;
    untraced.stages = traced.stages;
    untraced
}

/// The median of the per-round tracing-on vs tracing-off wall-clock
/// deltas, in percent (`rounds` pairs each round's two runs).
fn median_paired_overhead_pct(untraced: &[BenchReport], traced: &[BenchReport]) -> f64 {
    let mut deltas: Vec<f64> = untraced
        .iter()
        .zip(traced)
        .map(|(off, on)| (on.wall_secs / off.wall_secs.max(f64::EPSILON) - 1.0) * 100.0)
        .collect();
    deltas.sort_by(f64::total_cmp);
    deltas[deltas.len() / 2]
}

fn stats_line(stats: &JournalStats) -> String {
    format!(
        "{} appends / {} commits ({} bytes), {} rotations, {} fsyncs, {} retired, {} seals",
        stats.appends,
        stats.group_commits,
        stats.bytes,
        stats.rotations,
        stats.fsyncs,
        stats.segments_retired,
        stats.seals
    )
}

/// The median round by wall clock (`samples` must be non-empty).
fn median_by_wall(mut samples: Vec<BenchReport>) -> BenchReport {
    let repeat = samples.len();
    samples.sort_by(|a, b| a.wall_secs.total_cmp(&b.wall_secs));
    let mut report = samples.swap_remove(repeat / 2);
    report.repeat = repeat;
    report
}

// ---------------------------------------------------------------------------
// Open-loop sustained-load session (`--arrival-rate`)
// ---------------------------------------------------------------------------

/// Virtual tick the arrival schedule is quantized to (1 ms).
const TICK_SECS: f64 = 0.001;
/// Bounded submission queue of the open-loop session; overflow is shed
/// (counted, never blocked on — blocking would close the loop).
const OPEN_LOOP_QUEUE: usize = 1024;
/// Per-tenant rate cards of the open-loop session, in $/cpu-hour. Fairness
/// weights are derived from these: a tenant paying 4× the base rate gets a
/// 4× deficit-round-robin weight.
const OPEN_LOOP_RATES: [f64; 4] = [0.05, 0.10, 0.10, 0.20];

/// The deficit-round-robin weight a rate card buys: its multiple of the
/// cheapest card, rounded (so [0.05, 0.10, 0.10, 0.20] → [1, 2, 2, 4]).
fn rate_card_weight(rate: f64) -> u32 {
    let base = OPEN_LOOP_RATES
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    ((rate / base).round() as u32).max(1)
}

/// One tenant's share of the open-loop session.
#[derive(Debug, Serialize)]
struct OpenLoopTenant {
    /// Tenant id.
    tenant: u32,
    /// The tenant's rate card, in $/cpu-hour.
    rate_per_cpu_hour: f64,
    /// The deficit-round-robin weight the rate card bought.
    weight: u32,
    /// Jobs of this tenant that completed and were billed.
    completed_runs: u64,
    /// The tenant's billed charge.
    billed_charge: f64,
}

/// What the open-loop sustained-load session measured.
#[derive(Debug, Serialize)]
struct OpenLoopReport {
    /// Harness identifier.
    bench: &'static str,
    /// Seed of the arrival schedule (and the fleet).
    seed: u64,
    /// Offered arrival rate, jobs per second.
    arrival_rate: f64,
    /// Length of the arrival window, seconds (drain time excluded).
    duration_secs: f64,
    /// Virtual tick the schedule is quantized to, seconds.
    virtual_tick_secs: f64,
    /// Bounded submission-queue capacity (overflow is shed).
    queue_capacity: usize,
    /// Worker-pool floor (the starting size; the autoscaler never shrinks
    /// below it).
    workers_min: usize,
    /// Worker-pool ceiling the autoscaler may grow to.
    workers_max: usize,
    /// Largest pool the autoscaler actually reached.
    workers_peak: usize,
    /// Autoscaler grow steps taken (one worker each).
    scale_ups: u64,
    /// Autoscaler shrink steps taken.
    scale_downs: u64,
    /// Jobs the seeded schedule offered.
    jobs_offered: u64,
    /// Jobs the bounded queue accepted.
    jobs_accepted: u64,
    /// Jobs shed because the queue was full (offered − accepted).
    jobs_rejected: u64,
    /// Jobs that completed and were billed.
    jobs_completed: u64,
    /// Wall clock of the whole session (arrival window + drain), seconds.
    wall_secs: f64,
    /// The offered rate (`arrival_rate`, repeated for the report reader).
    offered_jobs_per_sec: f64,
    /// Completed jobs over the whole session wall clock.
    achieved_jobs_per_sec: f64,
    /// Whether the service saturated: it shed load, or completed less
    /// than 95 % of the offered rate.
    saturated: bool,
    /// Deepest backlog the queue-depth gauge reached.
    queue_depth_peak: usize,
    /// Jobs shed on queue overflow, broken down by tenant id (every
    /// registered tenant appears, zero included; the values sum to
    /// `jobs_rejected`) — who actually pays for saturation under the
    /// deficit-weighted queue.
    shed_by_tenant: BTreeMap<u32, u64>,
    /// Release-path buffer recycling over the session.
    pool: PoolStats,
    /// Per-tenant weights and billed shares.
    tenants: Vec<OpenLoopTenant>,
}

/// The report file: one closed-loop entry per durability mode under
/// `modes`, plus the open-loop saturation report when `--arrival-rate`
/// ran one (`null` otherwise).
#[derive(Debug, Serialize)]
struct BenchFile {
    /// Closed-loop mode reports (off, file, segmented, sealed, …).
    modes: Vec<BenchReport>,
    /// Open-loop sustained-load report (`--arrival-rate` only).
    open_loop: Option<OpenLoopReport>,
}

/// splitmix64 — the arrival schedule's own tiny RNG, so the bench does not
/// reach into the simulator's.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in (0, 1].
fn unit(state: &mut u64) -> f64 {
    ((splitmix(state) >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

/// The seeded Poisson arrival schedule: exponential inter-arrival times at
/// `rate` jobs/s, quantized to virtual ticks, covering `duration` seconds.
/// Deterministic for a given seed — two runs offer byte-identical load.
fn arrival_schedule(seed: u64, rate: f64, duration: f64) -> Vec<u64> {
    let mut state = seed;
    let mut at = 0.0;
    let mut ticks = Vec::new();
    loop {
        at += -unit(&mut state).ln() / rate;
        if at >= duration {
            return ticks;
        }
        ticks.push((at / TICK_SECS) as u64);
    }
}

/// Runs the open-loop sustained-load session: pace the seeded schedule
/// against the wall clock, submit due arrivals in `submit_all` chunks,
/// shed on overflow, autoscale the worker pool off the queue-depth gauge,
/// and report saturation.
fn run_open_loop(rate: f64, duration: f64, workers: usize) -> OpenLoopReport {
    let mut service = FleetService::new(FleetConfig::new(workers, SEED));
    for (i, rate_card) in OPEN_LOOP_RATES.iter().enumerate() {
        let id = i as u32 + 1;
        service.register(Tenant::new(
            TenantId(id),
            format!("t{id}"),
            RateCard::per_cpu_hour(*rate_card),
        ));
    }
    let mut stream = service.stream(
        IngestConfig::new(workers)
            .with_capacity(OPEN_LOOP_QUEUE)
            .with_backpressure(BackpressurePolicy::Reject),
    );
    // Deficit-weighted fairness: queue share follows the rate card.
    for (i, rate_card) in OPEN_LOOP_RATES.iter().enumerate() {
        stream.set_tenant_weight(TenantId(i as u32 + 1), rate_card_weight(*rate_card));
    }

    let schedule = arrival_schedule(SEED, rate, duration);
    let offered = schedule.len() as u64;
    let workers_max = (workers * 2).max(workers + 1);
    let mut current = workers;
    let mut workers_peak = workers;
    let (mut scale_ups, mut scale_downs) = (0u64, 0u64);
    let mut queue_depth_peak = 0usize;
    // Autoscaler: grow a worker when the backlog passes half the queue,
    // retire one when it falls below a sixteenth — hysteresis wide enough
    // that the pool does not flap on every pump.
    let mut autoscale = |stream: &mut trustmeter_fleet::FleetStream<'_>, current: &mut usize| {
        let depth = stream.stats().queued;
        queue_depth_peak = queue_depth_peak.max(depth);
        if depth >= OPEN_LOOP_QUEUE / 2 && *current < workers_max {
            *current += 1;
            stream.scale_workers(*current);
            scale_ups += 1;
            workers_peak = workers_peak.max(*current);
        } else if depth <= OPEN_LOOP_QUEUE / 16 && *current > workers {
            *current -= 1;
            stream.scale_workers(*current);
            scale_downs += 1;
        }
    };

    let start = Instant::now();
    let mut next = 0usize;
    let mut chunk: Vec<JobSpec> = Vec::new();
    let mut shed_by_tenant: BTreeMap<u32, u64> = (1..=OPEN_LOOP_RATES.len() as u32)
        .map(|id| (id, 0))
        .collect();
    while next < schedule.len() {
        // Open loop: everything due by the current virtual tick is offered
        // now, whether or not the service kept up.
        let tick = (start.elapsed().as_secs_f64() / TICK_SECS) as u64;
        chunk.clear();
        while next < schedule.len() && schedule[next] <= tick {
            chunk.push(spec(next as u64));
            next += 1;
        }
        if !chunk.is_empty() {
            if let Err(e) = stream.submit_all(&chunk) {
                // Queue full: the tail of the chunk was shed (counted by
                // the pipeline); anything else is a harness bug. The
                // admitted prefix is `e.accepted` — everything after it
                // charges the owning tenant's shed column.
                assert_eq!(e.error, SubmitError::QueueFull, "open-loop submit: {e}");
                for job in &chunk[e.accepted.len()..] {
                    *shed_by_tenant.entry(job.tenant.0).or_default() += 1;
                }
            }
        }
        stream.pump();
        autoscale(&mut stream, &mut current);
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    // Drain what the bounded queue accepted, autoscaling down as the
    // backlog empties.
    let mut stats = stream.stats();
    while stats.completed < stats.submitted {
        stream.pump();
        autoscale(&mut stream, &mut current);
        std::thread::yield_now();
        stats = stream.stats();
    }
    stream.pump();
    let wall_secs = start.elapsed().as_secs_f64();
    let stats = stream.stats();
    let report = stream.finish();
    // End the autoscaler's borrows of the counters it reports on.
    #[allow(clippy::drop_non_drop)]
    drop(autoscale);

    let completed = report.records.len() as u64;
    let achieved = completed as f64 / wall_secs.max(f64::EPSILON);
    assert_eq!(
        shed_by_tenant.values().sum::<u64>(),
        stats.rejected,
        "per-tenant shed accounting must cover every rejected job"
    );
    let tenants = OPEN_LOOP_RATES
        .iter()
        .enumerate()
        .map(|(i, rate_card)| {
            let id = TenantId(i as u32 + 1);
            let account = report.ledger.account(id);
            OpenLoopTenant {
                tenant: id.0,
                rate_per_cpu_hour: *rate_card,
                weight: rate_card_weight(*rate_card),
                completed_runs: account.map(|a| a.runs).unwrap_or(0),
                billed_charge: account.map(|a| a.billed_charge).unwrap_or(0.0),
            }
        })
        .collect();
    OpenLoopReport {
        bench: "fleet_open_loop",
        seed: SEED,
        arrival_rate: rate,
        duration_secs: duration,
        virtual_tick_secs: TICK_SECS,
        queue_capacity: OPEN_LOOP_QUEUE,
        workers_min: workers,
        workers_max,
        workers_peak,
        scale_ups,
        scale_downs,
        jobs_offered: offered,
        jobs_accepted: stats.submitted,
        jobs_rejected: stats.rejected,
        jobs_completed: completed,
        wall_secs,
        offered_jobs_per_sec: rate,
        achieved_jobs_per_sec: achieved,
        saturated: stats.rejected > 0 || achieved < 0.95 * rate,
        queue_depth_peak,
        shed_by_tenant,
        pool: stats.pool,
        tenants,
    }
}

fn main() {
    // 192 jobs: enough post-checkpoint volume (the cadence fires at run
    // 100) that at least one sealed segment outlives retirement, so the
    // reopen-and-verify step always has a sealed block to check.
    let mut jobs: u64 = 192;
    let mut workers: usize = 4;
    let mut repeat: usize = 5;
    let mut faults = false;
    let mut arrival_rate: Option<f64> = None;
    let mut duration: f64 = 2.0;
    let mut out = String::from("BENCH_fleet.json");
    let mut fsync = FsyncPolicy::GroupCommit {
        max_entries: 64,
        max_bytes: 256 * 1024,
    };
    let mut group_entries: u64 = 64;
    let mut group_bytes: u64 = 256 * 1024;
    let mut segment_bytes: u64 = 128 * 1024;
    let mut checkpoint_every: u64 = 100;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                jobs = 8;
                workers = 2;
                segment_bytes = 4 * 1024;
                checkpoint_every = 4;
            }
            "--faults" => {
                faults = true;
            }
            "--jobs" => {
                let value = args.next().expect("--jobs requires a value");
                jobs = value.parse().expect("--jobs takes an integer");
            }
            "--workers" => {
                let value = args.next().expect("--workers requires a value");
                workers = value.parse().expect("--workers takes an integer");
                assert!(workers > 0, "--workers must be positive");
            }
            "--repeat" => {
                let value = args.next().expect("--repeat requires a value");
                repeat = value.parse().expect("--repeat takes an integer");
                assert!(repeat > 0, "--repeat must be positive");
            }
            "--out" => {
                out = args.next().expect("--out requires a path");
            }
            "--fsync" => {
                let value = args.next().expect("--fsync requires a value");
                fsync = match value.as_str() {
                    "never" => FsyncPolicy::Never,
                    "every" => FsyncPolicy::EveryAppend,
                    "group" => FsyncPolicy::GroupCommit {
                        max_entries: group_entries,
                        max_bytes: group_bytes,
                    },
                    other => panic!("--fsync takes never|every|group, got `{other}`"),
                };
            }
            "--group-entries" => {
                let value = args.next().expect("--group-entries requires a value");
                group_entries = value.parse().expect("--group-entries takes an integer");
            }
            "--group-bytes" => {
                let value = args.next().expect("--group-bytes requires a value");
                group_bytes = value.parse().expect("--group-bytes takes an integer");
            }
            "--segment-bytes" => {
                let value = args.next().expect("--segment-bytes requires a value");
                segment_bytes = value.parse().expect("--segment-bytes takes an integer");
                assert!(segment_bytes > 0, "--segment-bytes must be positive");
            }
            "--checkpoint-every" => {
                let value = args.next().expect("--checkpoint-every requires a value");
                checkpoint_every = value.parse().expect("--checkpoint-every takes an integer");
            }
            "--arrival-rate" => {
                let value = args.next().expect("--arrival-rate requires a value");
                let rate: f64 = value.parse().expect("--arrival-rate takes jobs/sec");
                assert!(rate > 0.0, "--arrival-rate must be positive");
                arrival_rate = Some(rate);
            }
            "--duration" => {
                let value = args.next().expect("--duration requires a value");
                duration = value.parse().expect("--duration takes seconds");
                assert!(duration > 0.0, "--duration must be positive");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: trustmeter-bench [--smoke] [--faults] [--jobs N] [--workers N] \
                     [--repeat N] [--out PATH] [--fsync never|every|group] [--group-entries N] \
                     [--group-bytes N] [--segment-bytes N] [--checkpoint-every N] \
                     [--arrival-rate JOBS_PER_SEC] [--duration SECS]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(jobs > 0, "--jobs must be positive");
    // Re-resolve group-commit knobs in case --group-* came after --fsync.
    if let FsyncPolicy::GroupCommit { .. } = fsync {
        fsync = FsyncPolicy::GroupCommit {
            max_entries: group_entries,
            max_bytes: group_bytes,
        };
    }

    let segment_config = SegmentConfig::default()
        .with_segment_bytes(segment_bytes)
        .with_fsync(fsync);
    let mut modes = vec![
        JournalMode::Off,
        JournalMode::LegacyFile,
        // Same durability level as the legacy file sink (flush to the OS,
        // no fsync): the apples-to-apples group-commit comparison.
        JournalMode::Segmented {
            label: "segmented",
            config: segment_config.with_fsync(FsyncPolicy::Never),
            checkpoint_every,
        },
        // The segmented configuration with the evidence ledger on: every
        // line hash-chained, every rotated segment sealed under a signed
        // block header. The delta vs `segmented` is the chain+seal cost.
        JournalMode::Segmented {
            label: "sealed",
            config: segment_config
                .with_fsync(FsyncPolicy::Never)
                .with_seal(SEED),
            checkpoint_every,
        },
    ];
    // The sealed configuration behind a faultless fault wrapper with the
    // default retry policy armed: the delta vs `sealed` is the
    // healthy-path price of the fault-tolerance machinery itself.
    if faults {
        modes.push(JournalMode::Faulted {
            config: segment_config
                .with_fsync(FsyncPolicy::Never)
                .with_seal(SEED),
            checkpoint_every,
        });
    }
    // The configured fsync policy on top: what power-loss durability
    // costs over journal-off. With `--fsync never` this would duplicate
    // the mode above under a misleading label, so it is skipped.
    if !matches!(fsync, FsyncPolicy::Never) {
        modes.push(JournalMode::Segmented {
            label: "segmented-fsync",
            config: segment_config,
            checkpoint_every,
        });
    }
    let mut untraced_samples: Vec<Vec<BenchReport>> = modes.iter().map(|_| Vec::new()).collect();
    let mut traced_samples: Vec<Vec<BenchReport>> = modes.iter().map(|_| Vec::new()).collect();
    for round in 0..repeat {
        // Rotate the starting mode each round so slow-machine drift
        // (thermal throttling, background load) hits every mode in every
        // position instead of always penalizing whichever runs last.
        for offset in 0..modes.len() {
            let at = (round + offset) % modes.len();
            // Interleave tracing-on and tracing-off within the round,
            // alternating which goes first, so the overhead delta is not
            // confounded by drift either.
            if round % 2 == 0 {
                untraced_samples[at].push(run(jobs, workers, modes[at], false));
                traced_samples[at].push(run(jobs, workers, modes[at], true));
            } else {
                traced_samples[at].push(run(jobs, workers, modes[at], true));
                untraced_samples[at].push(run(jobs, workers, modes[at], false));
            }
        }
    }
    let reports: Vec<BenchReport> = untraced_samples
        .into_iter()
        .zip(traced_samples)
        .map(|(untraced, traced)| {
            let overhead = median_paired_overhead_pct(&untraced, &traced);
            merge_traced(median_by_wall(untraced), median_by_wall(traced), overhead)
        })
        .collect();

    // Smoke caps the open-loop window too: prove the pacing loop, the
    // shedding path and the autoscaler run, not a real measurement.
    let open_loop = arrival_rate.map(|rate| {
        run_open_loop(
            rate,
            if jobs <= 8 {
                duration.min(1.0)
            } else {
                duration
            },
            workers,
        )
    });

    let file = BenchFile {
        modes: reports,
        open_loop,
    };
    let json = serde_json::to_string_pretty(&file).expect("serialize report");
    std::fs::write(&out, format!("{json}\n")).expect("write report file");
    let reports = &file.modes;
    for report in reports {
        println!(
            "journal={}: {} jobs / {} workers: {:.3} s wall, {:.1} jobs/s, \
             {} replays, {} reference hits, {}",
            report.journal,
            report.jobs,
            report.workers,
            report.wall_secs,
            report.jobs_per_sec,
            report.audit_replays,
            report.audit_reference_hits,
            stats_line(&JournalStats {
                appends: report.journal_appends,
                bytes: report.journal_bytes,
                group_commits: report.journal_group_commits,
                rotations: report.journal_rotations,
                fsyncs: report.journal_fsyncs,
                segments_retired: report.journal_segments_retired,
                seals: report.journal_seals,
            }),
        );
        let quantiles: Vec<String> = report
            .stages
            .iter()
            .filter(|s| s.count > 0)
            .map(|s| {
                format!(
                    "{} p50={:.0}µs p99={:.0}µs",
                    s.stage,
                    s.p50_secs.unwrap_or(0.0) * 1e6,
                    s.p99_secs.unwrap_or(0.0) * 1e6
                )
            })
            .collect();
        println!(
            "  tracing: {:+.1}% wall ({} spans, {:.1} ms observer overhead); {}",
            report.tracing_overhead_pct,
            report.observer_spans,
            report.observer_overhead_secs * 1e3,
            quantiles.join(", "),
        );
    }
    let baseline = reports[0].wall_secs.max(f64::EPSILON);
    for report in &reports[1..] {
        println!(
            "journal={} overhead: {:+.1}% wall clock{}",
            report.journal,
            (report.wall_secs / baseline - 1.0) * 100.0,
            if report.recovery_bit_identical == Some(true) {
                " (recovery verified bit-identical)"
            } else {
                ""
            }
        );
    }
    if let Some(open) = &file.open_loop {
        println!(
            "open-loop @ {:.0} jobs/s for {:.1} s: offered {}, completed {} \
             ({:.1} jobs/s achieved), shed {}, queue peak {}, workers {}→{} \
             ({} ups / {} downs), pool reuse {}/{}{}",
            open.arrival_rate,
            open.duration_secs,
            open.jobs_offered,
            open.jobs_completed,
            open.achieved_jobs_per_sec,
            open.jobs_rejected,
            open.queue_depth_peak,
            open.workers_min,
            open.workers_peak,
            open.scale_ups,
            open.scale_downs,
            open.pool.reused,
            open.pool.acquired,
            if open.saturated { " — SATURATED" } else { "" },
        );
        for tenant in &open.tenants {
            println!(
                "  tenant {} (weight {}, ${:.2}/cpu-h): {} runs, ${:.4} billed",
                tenant.tenant,
                tenant.weight,
                tenant.rate_per_cpu_hour,
                tenant.completed_runs,
                tenant.billed_charge,
            );
        }
    }
    println!("→ {out}");
}
