//! Local stub of `serde_json` for an offline build environment: prints and
//! parses JSON text over the vendored `serde` crate's [`Value`] tree.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error {
            message: e.to_string(),
        }
    }
}

fn err(message: impl Into<String>) -> Error {
    Error {
        message: message.into(),
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    Serializer::new(&mut out).serialize(value)?;
    Ok(out)
}

/// Serializes `value` as compact JSON into any [`std::io::Write`] — the
/// signature of the real `serde_json::to_writer`, kept so callers written
/// against the stub survive a future crates.io swap. The stub buffers the
/// whole document in one `String` before the single `write_all` (true
/// incremental streaming is only available via [`Serializer`]).
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let mut out = String::new();
    Serializer::new(&mut out).serialize(value)?;
    writer
        .write_all(out.as_bytes())
        .map_err(|e| err(format!("write serialized JSON: {e}")))
}

/// A compact-JSON serializer that appends into a caller-owned `String`,
/// so a hot loop can serialize many values through one reused buffer
/// instead of allocating a fresh `String` per value (the journal layer's
/// group-commit path does exactly that).
///
/// ```
/// let mut buf = String::new();
/// let mut ser = serde_json::Serializer::new(&mut buf);
/// ser.serialize(&vec![1u64, 2]).unwrap();
/// ser.serialize(&"x").unwrap();
/// assert_eq!(buf, "[1,2]\"x\"");
/// ```
pub struct Serializer<'a> {
    out: &'a mut String,
}

impl<'a> Serializer<'a> {
    /// A serializer appending to `out` (existing contents are kept).
    pub fn new(out: &'a mut String) -> Serializer<'a> {
        Serializer { out }
    }

    /// Appends `value`'s compact JSON to the buffer via
    /// [`Serialize::write_json`]: derived impls stream field by field
    /// with **no intermediate `Value` tree**, strings are escaped by
    /// byte-scan (contiguous clean runs are copied in one `push_str`)
    /// and numbers are formatted straight into the buffer, so the only
    /// allocation is the buffer growing.
    pub fn serialize<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        value.write_json(self.out);
        Ok(())
    }
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(err(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

/// Escapes by byte-scan (see [`serde::write_escaped_str`], the canonical
/// implementation shared with the streaming `write_json` path).
fn write_escaped(out: &mut String, s: &str) {
    serde::write_escaped_str(out, s);
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    use std::fmt::Write as _;
    // The compact flavour delegates to the one canonical compact printer,
    // so tree-printed and streamed (`write_json`) output cannot diverge.
    if indent.is_none() {
        serde::write_compact_value(out, v);
        return;
    }
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` keeps a decimal point or exponent, matching the
                // real serde_json's output for floats; formatting writes
                // straight into the buffer, no intermediate `String`.
                let _ = write!(out, "{x:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(err(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(err(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| err(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| err(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| err(format!("bad number `{text}`")))
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(err(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(err(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("fig4".into())),
            (
                "points".into(),
                Value::Seq(vec![Value::F64(1.25), Value::U64(3)]),
            ),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(
            out,
            r#"{"name":"fig4","points":[1.25,3],"ok":true,"none":null}"#
        );
        let back: Vec<(String, f64)> = from_str(r#"[["a", 1.5], ["b", 2]]"#).expect("parse nested");
        assert_eq!(back, vec![("a".into(), 1.5), ("b".into(), 2.0)]);
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![1u64, 2];
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "[\n  1,\n  2\n]");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{1}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("1 x").is_err());
        assert!(from_str::<u64>("[").is_err());
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let text = to_string(&vec![1.0f64]).unwrap();
        assert_eq!(text, "[1.0]");
    }

    #[test]
    fn serializer_appends_into_a_reused_buffer() {
        let mut buf = String::from("prefix:");
        let mut ser = Serializer::new(&mut buf);
        ser.serialize(&vec![1u64, 2]).unwrap();
        ser.serialize(&"x").unwrap();
        assert_eq!(buf, "prefix:[1,2]\"x\"");
        // Reuse: clearing keeps the capacity, the next serialize allocates
        // nothing new for a same-sized value.
        buf.clear();
        Serializer::new(&mut buf).serialize(&3.5f64).unwrap();
        assert_eq!(buf, "3.5");
    }

    #[test]
    fn serializer_output_is_byte_identical_to_to_string() {
        // Nested struct-shaped value with every escape class, exercised
        // through both paths.
        let v = Value::Map(vec![
            (
                "inner".into(),
                Value::Map(vec![
                    ("text".into(), Value::Str("a\"b\\c\nd\re\tf\u{1}g é".into())),
                    ("n".into(), Value::I64(-7)),
                ]),
            ),
            ("xs".into(), Value::Seq(vec![Value::F64(0.25), Value::Null])),
        ]);
        let legacy = to_string(&v).unwrap();
        let mut streamed = String::new();
        Serializer::new(&mut streamed).serialize(&v).unwrap();
        assert_eq!(streamed, legacy);
        // And the escaped text round-trips.
        let back: Value = from_str(&legacy).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn byte_scan_escapes_match_the_spec() {
        let mut out = String::new();
        write_escaped(&mut out, "plain");
        assert_eq!(out, "\"plain\"");
        out.clear();
        write_escaped(&mut out, "a\"b\\c\nd\re\tf\u{1}\u{1f}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\re\\tf\\u0001\\u001f\"");
        out.clear();
        // Multi-byte UTF-8 passes through untouched (bytes ≥ 0x80).
        write_escaped(&mut out, "héllo \u{1F600}");
        assert_eq!(out, "\"héllo \u{1F600}\"");
        out.clear();
        // Escape as the final byte: the trailing clean run is empty.
        write_escaped(&mut out, "end\n");
        assert_eq!(out, "\"end\\n\"");
    }

    #[test]
    fn derived_write_json_matches_tree_printing() {
        // A nested struct + enum through both serialization paths: the
        // streamed (`write_json`) bytes must equal printing the `Value`
        // tree, or journals written by one path could not be replayed
        // against receipts from the other.
        use serde::{Deserialize, Serialize};

        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Inner {
            text: String,
            count: u64,
            ratio: Option<f64>,
        }

        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        enum Wrapper {
            Unit,
            One(Inner),
            Pair(u32, i32),
            Named { flag: bool, items: Vec<String> },
        }

        let values = vec![
            Wrapper::Unit,
            Wrapper::One(Inner {
                text: "a\"b\\c\nd\u{1}é".into(),
                count: 7,
                ratio: Some(0.5),
            }),
            Wrapper::Pair(3, -4),
            Wrapper::Named {
                flag: true,
                items: vec!["x".into(), String::new()],
            },
        ];
        for value in &values {
            let mut streamed = String::new();
            serde::Serialize::write_json(value, &mut streamed);
            let mut tree = String::new();
            write_value(&mut tree, &serde::Serialize::to_value(value), None, 0);
            assert_eq!(streamed, tree, "paths diverged for {value:?}");
            let back: Wrapper = from_str(&streamed).unwrap();
            assert_eq!(&back, value);
        }
    }

    #[test]
    fn to_writer_streams_into_io_write() {
        let mut bytes: Vec<u8> = Vec::new();
        to_writer(&mut bytes, &vec![("k".to_string(), 1u64)]).unwrap();
        assert_eq!(bytes, br#"[["k",1]]"#);
        let back: Vec<(String, u64)> = from_str(std::str::from_utf8(&bytes).unwrap()).unwrap();
        assert_eq!(back, vec![("k".to_string(), 1)]);
    }
}
