//! # trustmeter-fleet
//!
//! A deterministic, sharded, multi-tenant metering service over the
//! trustmeter workspace — the paper's single-run trust argument
//! ([`trustmeter_core`]) lifted to the scale where billing disputes
//! actually happen: many tenants submitting many jobs to a provider whose
//! accounting may or may not be honest.
//!
//! | Piece | What it does |
//! |-------|--------------|
//! | [`executor::Fleet`] | shards [`executor::JobSpec`] batches across worker threads; results are bit-identical for any shard count |
//! | [`tenant::Ledger`] | aggregates per-run [`trustmeter_core::Invoice`]s and CPU time (billed vs TSC ground truth) into per-tenant accounts |
//! | [`auditor::Auditor`] | streams run records through the §VI trust workflow and raises per-tenant [`auditor::Anomaly`] verdicts |
//! | [`metrics::MetricsRegistry`] | Prometheus-style text exposition of usage and anomaly counters |
//! | [`FleetService`] | wires all four together: run → bill → audit → export |
//!
//! ## Example
//!
//! ```
//! use trustmeter_fleet::{
//!     AttackSpec, FleetConfig, FleetService, JobSpec, RateCard, Tenant, TenantId,
//! };
//! use trustmeter_workloads::Workload;
//!
//! let mut service = FleetService::new(FleetConfig::new(4, 2026));
//! service.register(Tenant::new(TenantId(1), "acme", RateCard::per_cpu_hour(0.10)));
//! service.register(Tenant::new(TenantId(2), "initech", RateCard::per_cpu_hour(0.08)));
//!
//! let jobs = vec![
//!     JobSpec::clean(0, TenantId(1), Workload::Pi, 0.002),
//!     JobSpec::attacked(1, TenantId(2), Workload::Pi, 0.002, AttackSpec::Shell),
//! ];
//! let report = service.process(&jobs);
//!
//! // The attacked tenant is billed above ground truth and flagged.
//! let honest = report.ledger.account(TenantId(1)).unwrap();
//! let victim = report.ledger.account(TenantId(2)).unwrap();
//! assert!(victim.overcharge_ratio() > honest.overcharge_ratio());
//! assert_eq!(victim.flagged_runs, 1);
//! assert!(service.metrics_text().contains("cpu_usage"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auditor;
pub mod executor;
pub mod metrics;
pub mod tenant;

pub use auditor::{Anomaly, AuditVerdict, Auditor, TenantAuditSummary};
pub use executor::{AttackSpec, Fleet, FleetConfig, JobId, JobSpec, RunRecord};
pub use metrics::{MetricKind, MetricsRegistry};
pub use tenant::{Ledger, Tenant, TenantDirectory, TenantId, TenantLedger};

// Re-exported so fleet callers can price tenants without importing core.
pub use trustmeter_core::RateCard;

use serde::{Deserialize, Serialize};

/// Everything one processed batch produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Run records in submission order.
    pub records: Vec<RunRecord>,
    /// Audit verdicts, one per record, in the same order.
    pub verdicts: Vec<AuditVerdict>,
    /// The ledger state after posting the batch (cumulative across
    /// batches).
    pub ledger: Ledger,
}

impl FleetReport {
    /// Records whose audit found at least one anomaly.
    pub fn flagged(&self) -> impl Iterator<Item = (&RunRecord, &AuditVerdict)> {
        self.records
            .iter()
            .zip(self.verdicts.iter())
            .filter(|(_, verdict)| !verdict.is_clean())
    }
}

/// The assembled metering service: executor, ledger, auditor and metrics
/// behind one `process` call.
#[derive(Debug)]
pub struct FleetService {
    fleet: Fleet,
    directory: TenantDirectory,
    auditor: Auditor,
    ledger: Ledger,
    metrics: MetricsRegistry,
    /// Pricing applied to tenants that were never registered.
    default_rate_card: RateCard,
}

impl FleetService {
    /// A service with the given executor configuration and a
    /// $0.10/CPU-hour default rate card.
    pub fn new(config: FleetConfig) -> FleetService {
        let auditor = Auditor::new(config.machine.clone());
        FleetService {
            fleet: Fleet::new(config),
            directory: TenantDirectory::new(),
            auditor,
            ledger: Ledger::new(),
            metrics: MetricsRegistry::new(),
            default_rate_card: RateCard::per_cpu_hour(0.10),
        }
    }

    /// Replaces the auditor (e.g. to widen its tolerance).
    pub fn with_auditor(mut self, auditor: Auditor) -> FleetService {
        self.auditor = auditor;
        self
    }

    /// Replaces the rate card used for unregistered tenants.
    pub fn with_default_rate_card(mut self, card: RateCard) -> FleetService {
        self.default_rate_card = card;
        self
    }

    /// Registers a tenant and its pricing.
    pub fn register(&mut self, tenant: Tenant) {
        self.directory.register(tenant);
    }

    /// The tenant directory.
    pub fn directory(&self) -> &TenantDirectory {
        &self.directory
    }

    /// The cumulative ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The streaming auditor.
    pub fn auditor(&self) -> &Auditor {
        &self.auditor
    }

    /// Executes, bills, audits and meters one batch of jobs.
    pub fn process(&mut self, jobs: &[JobSpec]) -> FleetReport {
        let records = self.fleet.run(jobs);
        let freq = self.fleet.config().machine.frequency;
        let mut verdicts = Vec::with_capacity(records.len());
        for record in &records {
            let card = self
                .directory
                .get(record.job.tenant)
                .map(|t| t.rate_card)
                .unwrap_or(self.default_rate_card);
            self.ledger.post_run(
                record.job.tenant,
                &card,
                freq,
                record.job.id,
                record.outcome.victim_billed,
                record.outcome.victim_truth,
                record.outcome.victim_process_aware,
            );
            let verdict = self.auditor.observe(record);
            if !verdict.is_clean() {
                self.ledger.account_mut(record.job.tenant).flag();
            }
            self.export_record(record, &verdict);
            verdicts.push(verdict);
        }
        self.export_gauges();
        FleetReport {
            records,
            verdicts,
            ledger: self.ledger.clone(),
        }
    }

    fn export_record(&mut self, record: &RunRecord, verdict: &AuditVerdict) {
        let tenant = record.job.tenant.to_string();
        let outcome = &record.outcome;
        self.metrics.counter_add(
            "fleet_jobs",
            "Jobs executed by the fleet",
            &[("tenant", &tenant)],
            1.0,
        );
        let usage_help = "CPU seconds attributed to tenant jobs";
        for (state, source, secs) in [
            ("user", "billed", outcome.billed_utime_secs()),
            ("system", "billed", outcome.billed_stime_secs()),
            (
                "user",
                "truth",
                outcome.truth_total_secs() - outcome.truth_stime_secs(),
            ),
            ("system", "truth", outcome.truth_stime_secs()),
        ] {
            self.metrics.counter_add(
                "cpu_usage",
                usage_help,
                &[("tenant", &tenant), ("state", state), ("source", source)],
                secs,
            );
        }
        // Pre-register every anomaly kind at zero so the exposition
        // distinguishes "zero anomalies" from "series never existed".
        let anomaly_help = "Audit anomalies raised, by kind";
        for kind in Anomaly::KINDS {
            self.metrics.counter_add(
                "fleet_anomalies",
                anomaly_help,
                &[("tenant", &tenant), ("kind", kind)],
                0.0,
            );
        }
        for anomaly in &verdict.anomalies {
            self.metrics.counter_add(
                "fleet_anomalies",
                anomaly_help,
                &[("tenant", &tenant), ("kind", anomaly.kind())],
                1.0,
            );
        }
    }

    fn export_gauges(&mut self) {
        self.metrics.gauge_set(
            "fleet_tenants",
            "Tenants with at least one posted run",
            &[],
            self.ledger.len() as f64,
        );
        let ledgers: Vec<(String, f64, f64)> = self
            .ledger
            .iter()
            .map(|a| (a.tenant.to_string(), a.billed_charge, a.truth_charge))
            .collect();
        for (tenant, billed, truth) in ledgers {
            self.metrics.gauge_set(
                "tenant_charge",
                "Cumulative charge per tenant, by source",
                &[("tenant", &tenant), ("source", "billed")],
                billed,
            );
            self.metrics.gauge_set(
                "tenant_charge",
                "Cumulative charge per tenant, by source",
                &[("tenant", &tenant), ("source", "truth")],
                truth,
            );
        }
    }

    /// The Prometheus-style text dump of every metric.
    pub fn metrics_text(&self) -> String {
        self.metrics.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustmeter_workloads::Workload;

    #[test]
    fn service_bills_audits_and_meters_one_batch() {
        let mut service = FleetService::new(FleetConfig::new(2, 9));
        service.register(Tenant::new(
            TenantId(1),
            "acme",
            RateCard::per_cpu_second(0.01),
        ));
        let jobs = vec![
            JobSpec::clean(0, TenantId(1), Workload::LoopO, 0.001),
            JobSpec::attacked(1, TenantId(1), Workload::LoopO, 0.001, AttackSpec::Shell),
        ];
        let report = service.process(&jobs);
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.verdicts.len(), 2);
        assert!(report.verdicts[0].is_clean());
        assert!(!report.verdicts[1].is_clean());
        assert_eq!(report.flagged().count(), 1);
        let account = report.ledger.account(TenantId(1)).unwrap();
        assert_eq!(account.runs, 2);
        assert_eq!(account.flagged_runs, 1);
        let text = service.metrics_text();
        assert!(text.contains("cpu_usage{"));
        assert!(text.contains("fleet_anomalies{"));
        assert!(text.contains("# TYPE fleet_jobs counter"));
    }

    #[test]
    fn unregistered_tenants_use_default_pricing() {
        let mut service = FleetService::new(FleetConfig::new(1, 5))
            .with_default_rate_card(RateCard::per_cpu_second(1.0));
        let jobs = vec![JobSpec::clean(0, TenantId(99), Workload::Pi, 0.001)];
        let report = service.process(&jobs);
        let account = report.ledger.account(TenantId(99)).unwrap();
        assert!(account.billed_charge > 0.0);
    }
}
