//! Streaming ingestion: a long-lived worker pool draining a bounded,
//! per-tenant-fair submission queue.
//!
//! [`FleetIngest`] replaces one-shot batch execution with a pipeline tenants
//! feed continuously: [`FleetIngest::submit`] enqueues a [`JobSpec`] into a
//! bounded [`FairQueue`]; worker threads pop jobs round-robin across tenants
//! and execute them with [`Fleet::run_one`]; completed [`RunRecord`]s land
//! in a sequence-numbered completion log. Because every job's kernel seed is
//! derived from the fleet seed and job id alone, and the completion log is
//! keyed by submission sequence, a streamed run is **bit-identical** to the
//! equivalent batch run for any worker count.
//!
//! Four backpressure-and-fairness knobs:
//!
//! * **Capacity** ([`IngestConfig::with_capacity`]) bounds the undispatched
//!   backlog.
//! * **Policy** ([`BackpressurePolicy`]): a full queue either rejects the
//!   submit with [`SubmitError::QueueFull`] (load shedding) or blocks the
//!   submitting thread until a slot frees (lossless streaming).
//! * **Fairness** is structural: the queue round-robins across tenant
//!   lanes, so one greedy tenant cannot starve the rest (see
//!   [`FleetIngest::dispatch_log`]).
//! * **Completion watermark**
//!   ([`IngestConfig::with_completion_watermark`]) bounds the *other* end:
//!   capacity bounds only the undispatched backlog, and completed records
//!   otherwise accumulate in the completion log until a consumer takes
//!   them ([`FleetIngest::take_ready`], a stream's `pump`, or `finish`).
//!   With a watermark, workers stall instead of letting the log outrun the
//!   consumer, so total pipeline memory is bounded by
//!   `capacity + watermark`.
//!
//! With a [`crate::Journal`] attached
//! ([`FleetIngest::over_journaled`]), every record is appended to the
//! write-ahead log *before* it is released to the consumer — the
//! durability boundary of the [`crate::journal`] layer. Those appends are
//! also the *evidence* boundary: each journaled record becomes a
//! hash-chained line (and, once its segment rotates under a sealing
//! sink, a Merkle leaf under a signed block header), so the order the
//! pipeline releases records in is exactly the order a disputing tenant
//! can later hold the provider to. The submission side is journaled too:
//! `submit` writes a [`crate::JournalEntry::Accepted`] spec *before* the
//! job becomes visible to any worker, so a crash between acceptance and
//! release no longer silently loses the job — recovery reports the
//! accepted-but-unreleased specs for deterministic resubmission.
//!
//! ## Surviving the disk: retry, quarantine, failover
//!
//! Journal I/O is the one place this pipeline touches a device that can
//! fail, so it never panics on it. Every journal commit (acceptance at
//! submit, the ready prefix at release) runs under a seeded-deterministic
//! [`RetryPolicy`]: transient errors are retried with bounded exponential
//! backoff in virtual ticks. On exhaustion the pipeline enters
//! **quarantine**: releases stop with the un-journaled batch parked
//! (preserving the *never-journaled ⇒ never-billed* invariant — nothing
//! is ever released unjournaled), `submit` fails fast with
//! [`SubmitError::Quarantined`], and the state is observable via
//! [`FleetIngest::health`] and the `fleet_quarantined` /
//! `fleet_journal_failures_total` metrics. Workers keep *executing*
//! during quarantine; only the billing boundary is closed. The operator
//! fails over with [`FleetIngest::resume_with_sink`]: the journal swaps
//! to a fresh sink (chain continuity intact — the evidence chain head
//! only ever advances on successful commits), the pending accepted set is
//! re-journaled so the new sink is recoverable on its own, and the next
//! pump drains the stalled prefix.
//!
//! ## Surviving the workers: watchdog, reassignment, poison jobs
//!
//! The execution layer is not assumed immortal either. A seeded
//! [`WorkerFaultSchedule`] ([`IngestConfig::with_worker_faults`]) injects
//! panics, hangs, pathological slowdowns and corrupted records into the
//! pool, and the supervisor machinery proves the pipeline's outputs stay
//! bit-identical to an unfaulted run:
//!
//! * **Detection is deterministic.** Time is a virtual tick counter that
//!   only injected faults advance — a healthy run never touches it. A
//!   hanging or slowed worker spins the clock and re-runs the watchdog
//!   each tick, so the moment its job's deadline
//!   ([`IngestConfig::with_job_deadline`], grace plus the job's declared
//!   workload length in ticks) passes, it is reaped — in ticks, never
//!   wall clock. Panics are caught by a reap-on-unwind guard; no panic
//!   escapes the pool. Corrupted records are rejected at completion by
//!   the same quote machinery the auditor uses
//!   ([`Fleet::verify_record`]).
//! * **Recovery is bounded.** A reaped worker's in-flight batch is
//!   reclaimed and requeued at the *same* sequence numbers (release
//!   order, and therefore every downstream artifact, is unchanged —
//!   re-execution is safe because the kernel is deterministic from the
//!   fleet seed and job id), and a replacement worker is respawned under
//!   the [`SupervisorPolicy`] restart budget: budget dry → the pool
//!   degrades; last worker dead → the fleet quarantines (the PR 8
//!   surface: submits fail fast, [`FleetIngest::health`] says why).
//! * **Zombies cannot double-release.** Completions carry the worker's
//!   generation; a reaped worker finishing late fails the dedup guard
//!   and its record is discarded — released ⇒ journaled ⇒ executed
//!   exactly once.
//! * **Poison jobs are quarantined individually.** A job that kills
//!   [`SupervisorPolicy::max_job_attempts`] workers in a row gets a
//!   tombstone in the completion log (the release cursor passes it), a
//!   journaled [`crate::JournalEntry::Poisoned`] verdict, and a
//!   tenant-visible [`JobVerdict::Poisoned`] — while every other job
//!   keeps flowing.
//!
//! ```
//! use trustmeter_fleet::{FleetConfig, FleetIngest, IngestConfig, JobSpec, TenantId};
//! use trustmeter_workloads::Workload;
//!
//! let ingest = FleetIngest::start(FleetConfig::new(2, 42), IngestConfig::new(2));
//! for id in 0..4 {
//!     let job = JobSpec::clean(id, TenantId((id % 2) as u32), Workload::LoopO, 0.001);
//!     ingest.submit(job).unwrap();
//! }
//! let outcome = ingest.finish();
//! // Completion log merges in submission order regardless of which worker
//! // finished first.
//! let ids: Vec<u64> = outcome.records.iter().map(|r| r.job.id.0).collect();
//! assert_eq!(ids, vec![0, 1, 2, 3]);
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use serde::{Deserialize, Serialize};

use crate::executor::{Fleet, FleetConfig, JobId, JobSpec, RunRecord};
use crate::faults::{RetryPolicy, SupervisorPolicy, WorkerFaultKind, WorkerFaultSchedule};
use crate::journal::{Journal, JournalError, JournalSink, PoisonNotice};
use crate::pool::{BufferPool, PoolStats};
use crate::queue::FairQueue;
use crate::tenant::TenantId;
use crate::trace::{PipelineTracer, Stage};

/// What `submit` does when the submission queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BackpressurePolicy {
    /// Block the submitting thread until a queue slot frees (lossless).
    #[default]
    Block,
    /// Return [`SubmitError::QueueFull`] immediately (load shedding).
    Reject,
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubmitError {
    /// The queue is at capacity and the policy is
    /// [`BackpressurePolicy::Reject`].
    QueueFull,
    /// The pipeline is shutting down; no further jobs are accepted.
    ShutDown,
    /// The journal exhausted its [`RetryPolicy`] and the pipeline is
    /// quarantined: nothing can be made durable, so nothing new is
    /// accepted (and nothing already executed is released). Fail over
    /// with [`FleetIngest::resume_with_sink`] to resume.
    Quarantined,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => f.write_str("submission queue is full"),
            SubmitError::ShutDown => f.write_str("ingest pipeline is shut down"),
            SubmitError::Quarantined => f.write_str(
                "ingest pipeline is quarantined: the journal is failing and \
                 nothing can be made durable (fail over with resume_with_sink)",
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A batch submission that did not fully succeed. The admitted prefix is
/// real work: those jobs are journaled (when a journal is attached), queued
/// and will execute — only the remainder was refused. Callers decide
/// whether to retry the tail, shed it, or fail over first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSubmitError {
    /// Submission sequence numbers of the jobs that *were* admitted, in
    /// submission order (empty when the batch failed outright).
    pub accepted: Vec<u64>,
    /// Why the remainder was refused.
    pub error: SubmitError,
}

impl fmt::Display for BatchSubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch submission stopped after {} accepted job(s): {}",
            self.accepted.len(),
            self.error
        )
    }
}

impl std::error::Error for BatchSubmitError {}

/// Worker-pool configuration for [`FleetIngest`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestConfig {
    /// Number of long-lived worker threads.
    pub workers: usize,
    /// Maximum undispatched jobs in the submission queue (0 = unbounded).
    /// Completed-but-unconsumed records are *not* counted: consumers must
    /// pump ([`FleetIngest::take_ready`]) to bound total pipeline memory.
    pub capacity: usize,
    /// What `submit` does when the queue is full.
    pub backpressure: BackpressurePolicy,
    /// Start with dispatch paused; call [`FleetIngest::resume`] to begin
    /// draining. Useful for tests and for staging a backlog.
    pub start_paused: bool,
    /// Completion-side watermark (0 = unbounded): workers stall before
    /// starting a new job while completed-but-unconsumed records plus
    /// in-flight jobs are at this limit, so a slow consumer bounds the
    /// completion log instead of letting it outrun `take_ready`. A
    /// graceful [`FleetIngest::finish`] lifts the watermark — the drain is
    /// about to consume everything anyway. See
    /// [`IngestConfig::with_completion_watermark`] for the deadlock hazard
    /// when the consuming thread also submits under
    /// [`BackpressurePolicy::Block`].
    pub completion_watermark: usize,
    /// The retry policy every journal commit (acceptance at submit, the
    /// ready prefix at release) runs under; exhaustion quarantines the
    /// pipeline instead of panicking. Irrelevant without a journal.
    pub retry: RetryPolicy,
    /// Per-job execution deadline grace, in virtual ticks (`None` = no
    /// watchdog). A job's deadline is this grace plus its declared
    /// workload length in ticks, measured from the moment a worker
    /// *starts* it; the virtual clock only advances when injected faults
    /// spin it, so healthy runs never trip a deadline and detection is
    /// deterministic. See [`IngestConfig::with_job_deadline`].
    pub job_deadline: Option<u64>,
    /// The supervisor's bounded recovery ladder for dead, hung and lying
    /// workers (see [`SupervisorPolicy`]).
    pub supervisor: SupervisorPolicy,
    /// The seeded worker fault schedule to inject (empty = healthy pool).
    pub worker_faults: WorkerFaultSchedule,
    /// Whether completions are checked with [`Fleet::verify_record`]
    /// before entering the completion log (the wrong-result defense).
    /// `None` (the default) enables verification exactly when a fault
    /// schedule is installed, keeping the healthy hot path free of quote
    /// recomputation.
    pub verify_completions: Option<bool>,
}

impl IngestConfig {
    /// Default queue capacity.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// `workers` threads over a [`Self::DEFAULT_CAPACITY`]-slot queue with
    /// blocking backpressure.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> IngestConfig {
        assert!(workers > 0, "an ingest pipeline needs at least one worker");
        IngestConfig {
            workers,
            capacity: Self::DEFAULT_CAPACITY,
            backpressure: BackpressurePolicy::Block,
            start_paused: false,
            completion_watermark: 0,
            retry: RetryPolicy::default(),
            job_deadline: None,
            supervisor: SupervisorPolicy::default(),
            worker_faults: WorkerFaultSchedule::none(),
            verify_completions: None,
        }
    }

    /// Replaces the queue capacity (0 = unbounded).
    pub fn with_capacity(mut self, capacity: usize) -> IngestConfig {
        self.capacity = capacity;
        self
    }

    /// Replaces the backpressure policy.
    pub fn with_backpressure(mut self, policy: BackpressurePolicy) -> IngestConfig {
        self.backpressure = policy;
        self
    }

    /// Starts the pipeline paused (no dispatch until
    /// [`FleetIngest::resume`]).
    pub fn paused(mut self) -> IngestConfig {
        self.start_paused = true;
        self
    }

    /// Replaces the completion-side watermark (0 = unbounded): workers
    /// stall before starting a new job while completed-but-unconsumed
    /// records plus in-flight jobs are at the limit, so total pipeline
    /// memory is bounded by `capacity + completion_watermark` even when
    /// the consumer stops pumping.
    ///
    /// **Deadlock hazard.** Only `take_ready`/`pump`/`finish` clear the
    /// watermark. Under [`BackpressurePolicy::Block`] with a bounded
    /// queue, a thread that submits more than `capacity + watermark` jobs
    /// without pumping parks in `submit` while every worker is stalled on
    /// the watermark — and if that thread is also the only consumer,
    /// nothing can ever wake either side. With a watermark, either pump
    /// from the submitting loop (as [`crate::FleetStream`] usage does),
    /// consume from a separate thread, use
    /// [`BackpressurePolicy::Reject`], or keep
    /// `capacity >= total submissions - watermark`.
    pub fn with_completion_watermark(mut self, watermark: usize) -> IngestConfig {
        self.completion_watermark = watermark;
        self
    }

    /// Replaces the journal-commit [`RetryPolicy`] (see
    /// [`IngestConfig::retry`]).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> IngestConfig {
        self.retry = retry;
        self
    }

    /// Arms the per-worker watchdog with a per-job deadline of
    /// `grace_ticks` plus the job's declared workload length in virtual
    /// ticks (one tick per simulated millisecond, at least one),
    /// measured from execution start. Detection is deterministic: the
    /// virtual clock advances only when injected faults spin it, so a
    /// healthy run can never expire a deadline. A worker whose running
    /// job outlives its deadline is reaped — its batch reassigned, a
    /// replacement respawned under the [`SupervisorPolicy`].
    pub fn with_job_deadline(mut self, grace_ticks: u64) -> IngestConfig {
        self.job_deadline = Some(grace_ticks);
        self
    }

    /// Replaces the [`SupervisorPolicy`] (restart budget, degradation,
    /// poison threshold).
    pub fn with_supervisor(mut self, supervisor: SupervisorPolicy) -> IngestConfig {
        self.supervisor = supervisor;
        self
    }

    /// Installs a [`WorkerFaultSchedule`] to inject into the pool. Also
    /// enables completion verification unless
    /// [`IngestConfig::with_completion_verification`] overrode it.
    pub fn with_worker_faults(mut self, faults: WorkerFaultSchedule) -> IngestConfig {
        self.worker_faults = faults;
        self
    }

    /// Forces completion verification on or off (see
    /// [`IngestConfig::verify_completions`]).
    pub fn with_completion_verification(mut self, verify: bool) -> IngestConfig {
        self.verify_completions = Some(verify);
        self
    }
}

/// A point-in-time snapshot of pipeline state (all counters monotonic
/// except `queued` and the inflight gauges).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct IngestStats {
    /// Jobs accepted by `submit` so far.
    pub submitted: u64,
    /// Jobs fully executed so far.
    pub completed: u64,
    /// Submissions rejected with [`SubmitError::QueueFull`].
    pub rejected: u64,
    /// Jobs queued and not yet dispatched to a worker.
    pub queued: usize,
    /// Completed records not yet consumed via [`FleetIngest::take_ready`]
    /// (what the completion watermark bounds).
    pub ready: usize,
    /// Jobs currently executing, per tenant.
    pub inflight: BTreeMap<TenantId, u64>,
    /// Failed journal commit attempts that were retried (each failed
    /// attempt before exhaustion counts one).
    pub retries: u64,
    /// Journal commits that exhausted the retry policy (each one
    /// quarantined the pipeline).
    pub journal_failures: u64,
    /// Whether the pipeline is currently quarantined (see
    /// [`SubmitError::Quarantined`]).
    pub quarantined: bool,
    /// Workers currently alive in the pool (moves with
    /// [`FleetIngest::scale_to`] and with supervisor reaps/respawns).
    pub workers: usize,
    /// Workers respawned by the supervisor after a reap.
    pub worker_restarts: u64,
    /// Jobs reclaimed from dead/hung/lying workers and requeued for
    /// re-execution (same sequence number, attempt advanced).
    pub reassigned: u64,
    /// Jobs declared poison after killing
    /// [`SupervisorPolicy::max_job_attempts`] workers in a row.
    pub poisoned: u64,
    /// Completions discarded by the zombie dedup guard (a reaped worker
    /// finishing late can never double-release).
    pub stale_completions: u64,
    /// Release-path buffer recycling counters (see [`crate::pool`]).
    pub pool: PoolStats,
}

impl IngestStats {
    /// Jobs currently executing across all tenants.
    pub fn inflight_total(&self) -> u64 {
        self.inflight.values().sum()
    }
}

/// A point-in-time durability health report for the ingest pipeline —
/// what an operator (or [`crate::FleetStream::health`]) reads to decide
/// whether a failover is needed and whether it worked.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FleetHealth {
    /// Whether the pipeline is quarantined: the journal exhausted its
    /// retry policy, releases are stopped and submits fail fast.
    pub quarantined: bool,
    /// Journal commits that exhausted the retry policy.
    pub journal_failures: u64,
    /// Failed journal commit attempts that were retried.
    pub retries: u64,
    /// Virtual backoff ticks spent waiting between retry attempts.
    pub backoff_ticks: u64,
    /// Completed records parked by quarantine, awaiting the post-failover
    /// drain (never released unjournaled).
    pub stalled: u64,
    /// Accepted-but-unreleased jobs whose `Accepted` markers are pending
    /// (re-journaled into the replacement sink on failover).
    pub pending_accepted: u64,
    /// The journal error that caused the current (or most recent)
    /// quarantine, if any.
    pub last_error: Option<String>,
    /// Workers currently alive in the pool.
    pub workers_live: usize,
    /// Workers respawned by the supervisor after a reap.
    pub worker_restarts: u64,
    /// Jobs reclaimed from dead/hung/lying workers and requeued.
    pub reassigned: u64,
    /// Jobs declared poison and individually quarantined.
    pub poisoned: u64,
    /// The last worker died with the restart budget spent: the fleet is
    /// quarantined until [`FleetIngest::scale_to`] revives the pool.
    pub workers_dead: bool,
}

/// Everything a drained pipeline produced.
#[derive(Debug, Clone)]
pub struct IngestOutcome {
    /// Records not yet taken via [`FleetIngest::take_ready`], in submission
    /// order.
    pub records: Vec<RunRecord>,
    /// The full dispatch order (which job each worker popped, in pop
    /// order) — the observable fairness record. A reassigned job appears
    /// once per dispatch.
    pub dispatch_log: Vec<(JobId, TenantId)>,
    /// Final counters (queue and inflight gauges are zero by construction).
    pub stats: IngestStats,
    /// Poison-job verdicts released over the pipeline's lifetime, in
    /// release order (tenant-visible; each was also journaled as a
    /// [`crate::JournalEntry::Poisoned`] chained entry).
    pub poisoned: Vec<PoisonNotice>,
}

/// The tenant-visible outcome of one submitted job.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobVerdict {
    /// The job executed and its record was released.
    Completed,
    /// The job was declared **poison**: it killed workers on `attempts`
    /// consecutive execution attempts and was individually quarantined
    /// (journaled, release cursor moved past it) while the rest of the
    /// fleet kept flowing.
    Poisoned {
        /// Execution attempts consumed before the verdict.
        attempts: u32,
    },
}

impl IngestOutcome {
    /// The verdict for `job`, judged from this outcome's released
    /// records and poison notices. Records taken by an earlier
    /// [`FleetIngest::take_ready`] are not in `records`, so a streaming
    /// consumer should track those itself; poison verdicts are
    /// lifetime-cumulative and always visible here.
    pub fn verdict(&self, job: JobId) -> Option<JobVerdict> {
        if self.records.iter().any(|r| r.job.id == job) {
            return Some(JobVerdict::Completed);
        }
        self.poisoned
            .iter()
            .find(|n| n.spec.id == job)
            .map(|n| JobVerdict::Poisoned {
                attempts: n.attempts,
            })
    }
}

/// One entry in the sequence-numbered completion log.
#[derive(Debug, Clone)]
enum Completion {
    /// A fully executed job's record (boxed: a tombstone is ~20× smaller
    /// than a record, and the log holds many entries at once).
    Record(Box<RunRecord>),
    /// A poison-job tombstone: lets the contiguous-prefix release cursor
    /// pass the sequence while a journaled verdict — not a record — is
    /// what gets released.
    Poisoned(PoisonNotice),
}

/// One dispatched (sequence, job) pair held by a worker — the
/// supervision record the watchdog, the reaper and the zombie dedup
/// guard all read.
#[derive(Debug, Clone)]
struct Assignment {
    /// The job as dispatched, kept so a reap can requeue it verbatim.
    job: JobSpec,
    /// Generation of the worker holding it; completions from any other
    /// generation (or a reaped one) are discarded.
    worker: u64,
    /// Execution attempt this dispatch is (1-based).
    attempt: u32,
    /// Whether the worker has actually begun executing it. Batch-mates
    /// behind the running job sit dispatched-but-unstarted: they consume
    /// no attempt (and hold no deadline) if their worker dies.
    started: bool,
    /// Absolute virtual-tick deadline, stamped when execution starts:
    /// `clock + grace + cost_ticks(job)`. `None` when no deadline is
    /// configured or the job has not started.
    deadline: Option<u64>,
    /// Wall-clock dispatch stamp for the [`Stage::Reassign`] span;
    /// stamped only when tracing.
    dispatched_at: Option<std::time::Instant>,
}

/// What [`Shared::complete`] did with an execution result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CompletionOutcome {
    /// Logged into the completion log; the worker proceeds.
    Accepted,
    /// The worker was reaped while executing — the record was discarded
    /// by the dedup guard; the worker abandons its batch and exits.
    Zombie,
    /// The record failed verification (a lying executor); the worker
    /// must be reaped and the job reassigned.
    Rejected,
}

/// Mutable pipeline state behind the mutex.
#[derive(Debug)]
struct State {
    queue: FairQueue,
    /// Next submission sequence number.
    next_seq: u64,
    /// Sequence-numbered completion log; contiguous prefixes are released
    /// to consumers in submission order (poison tombstones are passed,
    /// journaled and surfaced as verdicts).
    completed: BTreeMap<u64, Completion>,
    /// Next sequence number to release from the completion log.
    released: u64,
    /// Dispatch order (which job each worker popped, in pop order) — the
    /// observable fairness record.
    dispatch_log: Vec<(JobId, TenantId)>,
    inflight: BTreeMap<TenantId, u64>,
    submitted: u64,
    completed_count: u64,
    rejected: u64,
    paused: bool,
    shutting_down: bool,
    /// On shutdown, drop queued jobs instead of draining them (set by
    /// `Drop` teardown; `finish` drains).
    discard_queued: bool,
    /// The journal exhausted its retry policy: releases are stopped and
    /// submits fail fast until a failover lifts the quarantine.
    quarantined: bool,
    /// The ready batch whose journal commit exhausted the retry policy,
    /// parked at the release cursor: never released (the write-ahead
    /// invariant), drained by the first `take_ready` after failover.
    stalled: Vec<RunRecord>,
    /// Failed journal commit attempts that were retried.
    retries: u64,
    /// Journal commits that exhausted the retry policy.
    journal_failures: u64,
    /// Virtual backoff ticks spent between retry attempts.
    backoff_ticks: u64,
    /// The journal error behind the current/most recent quarantine.
    last_error: Option<String>,
    /// Accepted-but-unreleased specs, keyed by submission sequence: the
    /// jobs whose `Accepted` journal markers are still pending. Entries
    /// leave at release; the survivors are re-journaled into the
    /// replacement sink on failover so it is recoverable on its own.
    /// Empty without a journal.
    accepted: BTreeMap<u64, JobSpec>,
    /// Worker-pool size target (see [`FleetIngest::scale_to`]). Workers
    /// consume one "shrink token" each — exiting at the top of their loop —
    /// while `active_workers` exceeds this. Degrades when the restart
    /// budget runs dry.
    worker_target: usize,
    /// Workers currently alive (spawned minus exited minus reaped).
    active_workers: usize,
    /// In-flight dispatches keyed by sequence number — what the watchdog
    /// scans and a reap reclaims.
    assignments: BTreeMap<u64, Assignment>,
    /// Generations of reaped workers. Any thread still running one of
    /// these is a zombie: its completions are discarded and it exits at
    /// its next state check. Bounded by the restart budget.
    dead_workers: BTreeSet<u64>,
    /// Workers ever spawned — the generation for the next one.
    spawned_total: u64,
    /// Respawns consumed in the current restart window.
    restarts_in_window: u32,
    /// Virtual tick the current restart window opened at.
    window_start: u64,
    /// Workers respawned by the supervisor, lifetime.
    worker_restarts: u64,
    /// Jobs reclaimed from reaped workers and requeued, lifetime.
    jobs_reassigned: u64,
    /// Jobs declared poison, lifetime.
    poisoned_count: u64,
    /// Released poison verdicts, in release order (each journaled before
    /// the cursor passed it).
    poisoned_log: Vec<PoisonNotice>,
    /// Zombie completions discarded by the dedup guard, lifetime.
    stale_completions: u64,
    /// The last worker died with the restart budget spent. Distinct from
    /// journal quarantine (same `quarantined` gate, different exit):
    /// lifted by [`FleetIngest::scale_to`], not by a sink failover.
    workers_dead: bool,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    /// Signaled when work becomes available or pause/shutdown changes.
    job_ready: Condvar,
    /// Signaled when a queue slot frees (wakes blocked submitters).
    slot_free: Condvar,
    /// Signaled when a job completes (wakes `finish`).
    job_done: Condvar,
    policy: BackpressurePolicy,
    /// Completion-side watermark (0 = unbounded); see
    /// [`IngestConfig::with_completion_watermark`].
    watermark: usize,
    /// When set, every record is appended as a [`crate::JournalEntry::Run`]
    /// *before* it is released by `take_ready` — the write-ahead point of
    /// the durability layer.
    journal: Option<Journal>,
    /// When set, submits are timestamped and workers record queue-wait
    /// spans at dispatch; `take_ready` records the journal group commit.
    /// Observation only — release order and records are unaffected.
    tracer: Option<PipelineTracer>,
    /// Serializes consumers through `take_ready`, so journal appends (done
    /// *outside* the state lock, where they would otherwise stall every
    /// worker on release-path I/O) still happen in release order.
    release_guard: Mutex<()>,
    /// Serializes submitters, so the `Accepted` write-ahead append (done
    /// *outside* the state lock for the same reason) lands in the journal
    /// in exactly the submission-sequence order — and so the admission
    /// check stays valid across the append (no competing submitter can
    /// fill the queue in between; workers only ever free slots).
    submit_guard: Mutex<()>,
    /// The retry policy every journal commit runs under.
    retry: RetryPolicy,
    /// Recycles the release-path record buffers: `take_ready` drains into
    /// a pooled `Vec`, and consumers hand the emptied container back via
    /// [`FleetIngest::recycle`]. Leaf lock — only ever taken while holding
    /// nothing or the state lock, never the other way around.
    pool: BufferPool<RunRecord>,
    /// The virtual clock deadlines are measured against. Advanced only
    /// by injected faults' spin loops — a healthy pipeline never pays
    /// for it and never trips a deadline, which is what makes detection
    /// deterministic.
    clock: AtomicU64,
    /// The supervisor's recovery ladder (restart budget, degradation,
    /// poison threshold).
    supervisor: SupervisorPolicy,
    /// Per-job deadline grace in virtual ticks (`None` = no watchdog).
    deadline_grace: Option<u64>,
    /// The installed worker fault schedule (empty = healthy pool).
    worker_faults: WorkerFaultSchedule,
    /// Whether completions run [`Fleet::verify_record`] before entering
    /// the completion log.
    verify_completions: bool,
    /// The executor, held here so the supervisor can respawn workers
    /// from any thread (including a panicking worker's unwind guard).
    fleet: Fleet,
    /// Join handles of supervisor-respawned workers, joined by `finish`
    /// and `Drop`.
    respawned: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    /// Locks the state, recovering from poisoning: workers never panic
    /// while holding the lock (jobs run outside it), and the reap guard
    /// handles worker death.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait<'a>(&self, condvar: &Condvar, guard: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    fn submit(&self, job: JobSpec) -> Result<u64, SubmitError> {
        // One submitter at a time: the Accepted write-ahead append below
        // happens outside the state lock, and this guard is what keeps
        // (a) the journal's Accepted order equal to the sequence order
        // and (b) the admission decision valid across the append.
        let _submit = self
            .submit_guard
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        {
            let mut state = self.lock();
            loop {
                if state.shutting_down {
                    return Err(SubmitError::ShutDown);
                }
                if state.quarantined {
                    return Err(SubmitError::Quarantined);
                }
                if !state.queue.is_full() {
                    break;
                }
                match self.policy {
                    BackpressurePolicy::Reject => {
                        state.rejected += 1;
                        return Err(SubmitError::QueueFull);
                    }
                    BackpressurePolicy::Block => {
                        state = self.wait(&self.slot_free, state);
                    }
                }
            }
        }
        // The submission-side write-ahead point: the accepted spec is
        // durable *before* the job becomes visible to any worker, so a
        // crash between acceptance and release can no longer silently
        // lose it — recovery reports it for resubmission. Rejected
        // submissions never reach this point and are never journaled.
        if let Some(journal) = &self.journal {
            if let Err(e) =
                self.commit_with_retry(job.id, job.tenant, || journal.append_accepted(&job))
            {
                self.enter_quarantine(e, Vec::new());
                return Err(SubmitError::Quarantined);
            }
        }
        let mut state = self.lock();
        if state.shutting_down {
            // Shutdown raced the acceptance append. The orphan Accepted
            // entry is harmless by design: recovery reports the job as
            // unreleased and resubmitting it is the correct replay.
            return Err(SubmitError::ShutDown);
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.submitted += 1;
        if self.journal.is_some() {
            state.accepted.insert(seq, job.clone());
        }
        // Stamp the queue-wait clock only when someone will read it.
        let submitted_at = self.tracer.as_ref().map(|_| std::time::Instant::now());
        state
            .queue
            .push_at(seq, job, submitted_at)
            .expect("queue had a free slot under the submit guard");
        drop(state);
        self.job_ready.notify_one();
        Ok(seq)
    }

    /// Batched [`Shared::submit`]: admits `jobs` in capacity-sized slices,
    /// paying the submit guard once for the whole batch and, per slice, one
    /// grouped `Accepted` journal commit, one state-lock hold (sequence
    /// assignment plus a bulk queue push) and one condvar wake — instead of
    /// one of each per job.
    fn submit_all(&self, jobs: &[JobSpec]) -> Result<Vec<u64>, BatchSubmitError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let fail = |seqs: Vec<u64>, error: SubmitError| BatchSubmitError {
            accepted: seqs,
            error,
        };
        let mut seqs = Vec::with_capacity(jobs.len());
        let _submit = self
            .submit_guard
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut remaining = jobs;
        while !remaining.is_empty() {
            // Admission: how many fit right now (everything, if unbounded).
            let admit = {
                let mut state = self.lock();
                loop {
                    if state.shutting_down {
                        return Err(fail(seqs, SubmitError::ShutDown));
                    }
                    if state.quarantined {
                        return Err(fail(seqs, SubmitError::Quarantined));
                    }
                    let free = match state.queue.capacity() {
                        0 => remaining.len(),
                        cap => cap.saturating_sub(state.queue.len()),
                    };
                    if free > 0 {
                        break free.min(remaining.len());
                    }
                    match self.policy {
                        BackpressurePolicy::Reject => {
                            state.rejected += remaining.len() as u64;
                            return Err(fail(seqs, SubmitError::QueueFull));
                        }
                        BackpressurePolicy::Block => {
                            state = self.wait(&self.slot_free, state);
                        }
                    }
                }
            };
            let (slice, rest) = remaining.split_at(admit);
            remaining = rest;
            // The submission-side write-ahead point, batched: the whole
            // admitted slice becomes durable in one grouped Accepted commit
            // before any of it is visible to a worker. On exhaustion the
            // pipeline quarantines and the caller learns exactly which
            // prefix was accepted — those jobs are journaled and will run;
            // the slice and everything after it were refused.
            if let Some(journal) = &self.journal {
                if let Err(e) = self.commit_with_retry(slice[0].id, slice[0].tenant, || {
                    journal.append_accepted_batch(slice)
                }) {
                    self.enter_quarantine(e, Vec::new());
                    return Err(fail(seqs, SubmitError::Quarantined));
                }
            }
            let mut state = self.lock();
            if state.shutting_down {
                // Shutdown raced the acceptance append; the orphan Accepted
                // entries are harmless (recovery reports them unreleased).
                return Err(fail(seqs, SubmitError::ShutDown));
            }
            let first_seq = state.next_seq;
            state.next_seq += admit as u64;
            state.submitted += admit as u64;
            if self.journal.is_some() {
                for (offset, job) in slice.iter().enumerate() {
                    state
                        .accepted
                        .insert(first_seq + offset as u64, job.clone());
                }
            }
            let submitted_at = self.tracer.as_ref().map(|_| std::time::Instant::now());
            state
                .queue
                .push_batch_at(first_seq, slice, submitted_at)
                .expect("slice admitted under the submit guard");
            seqs.extend(first_seq..first_seq + admit as u64);
            drop(state);
            // One wake per admitted slice, not per job.
            if admit == 1 {
                self.job_ready.notify_one();
            } else {
                self.job_ready.notify_all();
            }
        }
        Ok(seqs)
    }

    fn stats(&self) -> IngestStats {
        let state = self.lock();
        IngestStats {
            submitted: state.submitted,
            completed: state.completed_count,
            rejected: state.rejected,
            queued: state.queue.len(),
            ready: state.completed.len() + state.stalled.len(),
            inflight: state.inflight.clone(),
            retries: state.retries,
            journal_failures: state.journal_failures,
            quarantined: state.quarantined,
            workers: state.active_workers,
            worker_restarts: state.worker_restarts,
            reassigned: state.jobs_reassigned,
            poisoned: state.poisoned_count,
            stale_completions: state.stale_completions,
            pool: self.pool.stats(),
        }
    }

    /// The pipeline's durability health report.
    fn health(&self) -> FleetHealth {
        let state = self.lock();
        FleetHealth {
            quarantined: state.quarantined,
            journal_failures: state.journal_failures,
            retries: state.retries,
            backoff_ticks: state.backoff_ticks,
            stalled: state.stalled.len() as u64,
            pending_accepted: state.accepted.len() as u64,
            last_error: state.last_error.clone(),
            workers_live: state.active_workers,
            worker_restarts: state.worker_restarts,
            reassigned: state.jobs_reassigned,
            poisoned: state.poisoned_count,
            workers_dead: state.workers_dead,
        }
    }

    /// Runs one journal commit under the retry policy: bounded attempts,
    /// deterministic exponential backoff in *virtual ticks* (cooperative
    /// yields, never wall-clock sleeps), one [`Stage::JournalRetry`]
    /// aggregate span per failed attempt when tracing. Returns the last
    /// error on exhaustion — the caller quarantines; nothing here panics.
    fn commit_with_retry(
        &self,
        job: JobId,
        tenant: TenantId,
        mut commit: impl FnMut() -> Result<(), JournalError>,
    ) -> Result<(), JournalError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let started = self.tracer.as_ref().map(|_| std::time::Instant::now());
            let Err(error) = commit() else {
                return Ok(());
            };
            if let (Some(tracer), Some(started)) = (&self.tracer, started) {
                // A shared commit attempt is nobody's per-tenant latency:
                // aggregate cell only, attributed to the batch's first job.
                tracer.record_aggregate(Stage::JournalRetry, job, tenant, started.elapsed());
            }
            if attempt >= self.retry.max_attempts {
                return Err(error);
            }
            let ticks = self.retry.backoff_ticks(attempt);
            {
                let mut state = self.lock();
                state.retries += 1;
                state.backoff_ticks += ticks;
            }
            for _ in 0..ticks {
                std::thread::yield_now();
            }
        }
    }

    /// Flips the pipeline into quarantine: `stalled` (the batch whose
    /// commit exhausted the policy — empty for a submission-side failure)
    /// is parked at the release cursor, releases stop, submits fail fast,
    /// and every waiter wakes to observe the state. Lifted only by
    /// [`Shared::resume_after_failover`].
    fn enter_quarantine(&self, error: JournalError, stalled: Vec<RunRecord>) {
        let mut state = self.lock();
        state.quarantined = true;
        state.journal_failures += 1;
        state.last_error = Some(error.to_string());
        debug_assert!(
            state.stalled.is_empty(),
            "a quarantined pipeline releases nothing, so at most one batch can stall"
        );
        state.stalled = stalled;
        drop(state);
        self.job_ready.notify_all();
        self.slot_free.notify_all();
        self.job_done.notify_all();
    }

    /// Completes a failover after [`Journal::fail_over`] swapped in a
    /// fresh sink: re-journals the pending accepted set (so the new sink
    /// is recoverable on its own, accepted-but-unreleased jobs included)
    /// and lifts the quarantine. On error the pipeline *stays*
    /// quarantined — the replacement sink is failing too.
    fn resume_after_failover(&self) -> Result<(), JournalError> {
        let Some(journal) = &self.journal else {
            return Ok(());
        };
        let specs: Vec<JobSpec> = {
            let state = self.lock();
            state.accepted.values().cloned().collect()
        };
        journal.append_accepted_batch(&specs)?;
        let mut state = self.lock();
        if state.workers_dead {
            // A dead worker pool is not a journal problem: the sink swap
            // succeeded, but only scale_to can staff the pool again.
            return Err(JournalError::Io(
                "fleet workers are all dead; scale_to a live pool before resuming".to_string(),
            ));
        }
        state.quarantined = false;
        state.last_error = None;
        drop(state);
        self.job_ready.notify_all();
        self.slot_free.notify_all();
        Ok(())
    }

    /// The most jobs one worker pulls per lock acquisition. Bounds the
    /// latency skew batching can introduce (a worker never hoards more
    /// than this while its peers idle); the fair-share cap below usually
    /// bites first.
    const MAX_PULL: usize = 8;

    /// The virtual-tick execution budget for a job: its declared workload
    /// length (user seconds at the job's scale) at one tick per simulated
    /// millisecond, at least one tick. The per-job deadline is this plus
    /// the configured grace, measured from execution start.
    fn cost_ticks(job: &JobSpec) -> u64 {
        let user_secs = job.workload.spec(job.scale).user_secs;
        (user_secs * 1000.0).ceil().max(1.0) as u64
    }

    /// Worker loop: pop a fair batch, execute it outside the lock, log the
    /// completions under one lock hold. Batching amortizes the state lock
    /// and condvar traffic without changing anything observable downstream:
    /// pops stay round-robin (the dispatch log is identical), and the
    /// completion log is keyed by submission sequence, so release order —
    /// and therefore reports, ledgers and metering — is bit-identical to
    /// one-job-at-a-time pulls.
    ///
    /// Every pop registers an [`Assignment`] under this worker's
    /// generation; the fault schedule is consulted per (job, attempt)
    /// before execution; completions go through the dedup guard in
    /// [`Shared::complete`]. A worker that learns it was reaped abandons
    /// its remaining batch (the reaper already reclaimed it) and exits.
    fn work(shared: &Arc<Shared>, gen: u64) {
        let fleet = &shared.fleet;
        let mut batch: Vec<crate::queue::QueuedJob> = Vec::with_capacity(Self::MAX_PULL);
        loop {
            {
                let mut state = shared.lock();
                loop {
                    if state.dead_workers.contains(&gen) {
                        // Reaped while idle; the reaper already adjusted
                        // the live count and reclaimed any assignments.
                        return;
                    }
                    if state.paused && !state.shutting_down {
                        state = shared.wait(&shared.job_ready, state);
                        continue;
                    }
                    if state.shutting_down && state.discard_queued {
                        // Teardown without finish(): abandon the backlog.
                        state.active_workers -= 1;
                        return;
                    }
                    // Scale-down: consume a shrink token and exit. Ignored
                    // while shutting down — finish() needs every worker
                    // still alive to drain the backlog.
                    if !state.shutting_down && state.active_workers > state.worker_target {
                        state.active_workers -= 1;
                        return;
                    }
                    // Completion watermark: don't start new work while the
                    // unconsumed completion log (plus what's already in
                    // flight) is at the limit. A graceful shutdown lifts
                    // the watermark — finish() consumes everything.
                    let mut budget = usize::MAX;
                    if shared.watermark > 0 && !state.shutting_down {
                        let inflight: u64 = state.inflight.values().sum();
                        let used = state.completed.len() as u64 + inflight;
                        if used >= shared.watermark as u64 {
                            state = shared.wait(&shared.job_ready, state);
                            continue;
                        }
                        budget = (shared.watermark as u64 - used) as usize;
                    }
                    if state.queue.is_empty() {
                        if state.shutting_down {
                            state.active_workers -= 1;
                            return;
                        }
                        state = shared.wait(&shared.job_ready, state);
                        continue;
                    }
                    // Pull a batch: watermark-respecting, capped, and no
                    // more than this worker's fair share of the backlog so
                    // one worker cannot strip-mine the queue while its
                    // peers idle.
                    let share = state.queue.len().div_ceil(state.active_workers.max(1));
                    let max = Self::MAX_PULL.min(budget).min(share).max(1);
                    let dispatch_stamp = shared.tracer.as_ref().map(|_| std::time::Instant::now());
                    let now = shared.clock.load(Ordering::Relaxed);
                    while batch.len() < max {
                        let Some(queued) = state.queue.pop() else {
                            break;
                        };
                        state.dispatch_log.push((queued.job.id, queued.job.tenant));
                        *state.inflight.entry(queued.job.tenant).or_insert(0) += 1;
                        // The first batch item starts executing right away;
                        // the rest open their execution (and deadline)
                        // windows as their predecessors complete.
                        let started = batch.is_empty();
                        let deadline = if started {
                            shared.deadline_grace.map(|grace| {
                                now.saturating_add(grace)
                                    .saturating_add(Self::cost_ticks(&queued.job))
                            })
                        } else {
                            None
                        };
                        state.assignments.insert(
                            queued.seq,
                            Assignment {
                                job: queued.job.clone(),
                                worker: gen,
                                attempt: queued.attempt,
                                started,
                                deadline,
                                dispatched_at: dispatch_stamp,
                            },
                        );
                        batch.push(queued);
                    }
                    break;
                }
            }
            if batch.len() == 1 {
                shared.slot_free.notify_one();
            } else {
                shared.slot_free.notify_all();
            }

            let mut abandoned = false;
            for idx in 0..batch.len() {
                let queued = &batch[idx];
                let next_seq = batch.get(idx + 1).map(|q| q.seq);
                // Dispatch closed the queue-wait window at pop; record it
                // outside the state lock so tracing never stalls workers.
                if let (Some(tracer), Some(submitted_at)) = (&shared.tracer, queued.submitted_at) {
                    tracer.record(
                        Stage::QueueWait,
                        queued.job.id,
                        queued.job.tenant,
                        submitted_at.elapsed(),
                    );
                }

                // Consult the fault schedule for this (job, attempt).
                let fault = shared
                    .worker_faults
                    .fault_for(queued.job.id, queued.attempt);
                let record = match fault {
                    Some(WorkerFaultKind::Panic) => panic!(
                        "injected worker fault: panic executing job {} (attempt {})",
                        queued.job.id.0, queued.attempt
                    ),
                    Some(WorkerFaultKind::Hang { ticks }) => {
                        if !Shared::spin_ticks(shared, gen, ticks) {
                            abandoned = true;
                            break;
                        }
                        fleet.run_one(&queued.job)
                    }
                    Some(WorkerFaultKind::SlowDown { factor }) => {
                        let extra =
                            Self::cost_ticks(&queued.job).saturating_mul(factor.saturating_sub(1));
                        if !Shared::spin_ticks(shared, gen, extra) {
                            abandoned = true;
                            break;
                        }
                        fleet.run_one(&queued.job)
                    }
                    Some(WorkerFaultKind::WrongResult) => {
                        // A lying executor: bill more than was done. The
                        // completion-side quote check catches it — the
                        // quote's MAC covers the honest usage.
                        let mut record = fleet.run_one(&queued.job);
                        record.outcome.victim_billed.utime.0 =
                            record.outcome.victim_billed.utime.0.wrapping_add(1_000_000);
                        record
                    }
                    None => fleet.run_one(&queued.job),
                };

                match shared.complete(gen, queued.seq, next_seq, record, fleet) {
                    CompletionOutcome::Accepted => {}
                    CompletionOutcome::Zombie => {
                        abandoned = true;
                        break;
                    }
                    CompletionOutcome::Rejected => {
                        Shared::reap(
                            shared,
                            gen,
                            "completion failed record verification (wrong-result executor)",
                        );
                        abandoned = true;
                        break;
                    }
                }
            }
            batch.clear();
            if abandoned {
                // The reaper reclaimed whatever this worker still held;
                // exit without touching counters it already adjusted.
                return;
            }
        }
    }

    /// Logs one execution result into the completion log, guarded against
    /// zombies: the record is accepted only if this worker's generation
    /// still owns the live assignment for `seq` — a reaped worker
    /// finishing late can never double-release or burn a chain link. On
    /// acceptance, the next batch item's execution window (and deadline)
    /// opens under the same lock hold.
    fn complete(
        &self,
        gen: u64,
        seq: u64,
        next_seq: Option<u64>,
        record: RunRecord,
        fleet: &Fleet,
    ) -> CompletionOutcome {
        if self.verify_completions {
            if let Err(_reason) = fleet.verify_record(&record) {
                return CompletionOutcome::Rejected;
            }
        }
        let mut state = self.lock();
        let live = !state.dead_workers.contains(&gen)
            && state
                .assignments
                .get(&seq)
                .is_some_and(|assignment| assignment.worker == gen);
        if !live {
            // The dedup guard: this worker was reaped (its job already
            // reassigned, maybe even re-executed and released) — the
            // stale record is discarded, never logged.
            state.stale_completions += 1;
            return CompletionOutcome::Zombie;
        }
        state.assignments.remove(&seq);
        let tenant = record.job.tenant;
        if let Some(inflight) = state.inflight.get_mut(&tenant) {
            *inflight -= 1;
            if *inflight == 0 {
                state.inflight.remove(&tenant);
            }
        }
        state
            .completed
            .insert(seq, Completion::Record(Box::new(record)));
        state.completed_count += 1;
        if let Some(next) = next_seq {
            let now = self.clock.load(Ordering::Relaxed);
            if let Some(assignment) = state.assignments.get_mut(&next) {
                if assignment.worker == gen {
                    let cost = Self::cost_ticks(&assignment.job);
                    assignment.started = true;
                    assignment.deadline = self
                        .deadline_grace
                        .map(|grace| now.saturating_add(grace).saturating_add(cost));
                }
            }
        }
        drop(state);
        self.job_done.notify_all();
        CompletionOutcome::Accepted
    }

    /// Burns `ticks` virtual ticks: each iteration advances the shared
    /// clock by one and re-runs the watchdog, so a hanging or slowed
    /// worker deterministically reaps *itself* the tick its job's
    /// deadline passes — detection is in ticks, not wall clock, and a
    /// healthy pipeline (no injected faults) never advances the clock at
    /// all. Returns `false` if this worker was reaped mid-spin or the
    /// pipeline began discarding (the caller abandons its batch).
    fn spin_ticks(shared: &Arc<Shared>, gen: u64, ticks: u64) -> bool {
        for _ in 0..ticks {
            shared.clock.fetch_add(1, Ordering::Relaxed);
            Shared::supervise(shared);
            {
                let mut state = shared.lock();
                if state.dead_workers.contains(&gen) {
                    return false;
                }
                if state.shutting_down && state.discard_queued {
                    state.active_workers = state.active_workers.saturating_sub(1);
                    return false;
                }
            }
            std::thread::yield_now();
        }
        true
    }

    /// The virtual-tick watchdog: reaps every worker whose *running*
    /// assignment has outlived its deadline. Deterministic — the clock
    /// only advances when injected faults spin it. Any thread may run
    /// the watchdog; hanging workers drive it from their own spin loops
    /// (reaping themselves), and consumers drive it from `take_ready` as
    /// a backstop.
    fn supervise(shared: &Arc<Shared>) {
        if shared.deadline_grace.is_none() {
            return;
        }
        let now = shared.clock.load(Ordering::Relaxed);
        let expired: Vec<u64> = {
            let state = shared.lock();
            state
                .assignments
                .values()
                .filter(|a| a.started && !state.dead_workers.contains(&a.worker))
                .filter(|a| a.deadline.is_some_and(|deadline| now > deadline))
                .map(|a| a.worker)
                .collect()
        };
        for gen in expired {
            Shared::reap(
                shared,
                gen,
                "job deadline expired (hung or pathologically slow worker)",
            );
        }
    }

    /// Reaps a worker: marks its generation dead (anything it still runs
    /// is zombie code whose completions the dedup guard discards),
    /// reclaims its in-flight assignments — requeueing each at the same
    /// sequence number with the attempt advanced, or declaring it poison
    /// once it has burned [`SupervisorPolicy::max_job_attempts`] workers
    /// — and respawns a replacement under the restart budget. Budget
    /// dry → the pool degrades; last worker dead → the fleet
    /// quarantines. Called from the unwind guard (panicked worker), the
    /// watchdog (expired worker) and the completion verifier (lying
    /// worker); it must never panic — it runs during unwinds.
    fn reap(shared: &Arc<Shared>, gen: u64, reason: &str) {
        let mut respawn_gen = None;
        let mut reassigned: Vec<(JobId, TenantId, Option<std::time::Instant>)> = Vec::new();
        {
            let mut state = shared.lock();
            if state.dead_workers.contains(&gen) {
                return; // a competing detector got here first
            }
            state.dead_workers.insert(gen);
            state.active_workers = state.active_workers.saturating_sub(1);
            // Reclaim everything the dead worker held. Requeueing keeps
            // the original sequence numbers, so release order — and every
            // bit of downstream output — is unchanged; re-execution is
            // safe because the kernel is deterministic from the fleet
            // seed and job id.
            let seqs: Vec<u64> = state
                .assignments
                .iter()
                .filter(|(_, a)| a.worker == gen)
                .map(|(seq, _)| *seq)
                .collect();
            for seq in seqs {
                let Some(assignment) = state.assignments.remove(&seq) else {
                    continue;
                };
                if let Some(inflight) = state.inflight.get_mut(&assignment.job.tenant) {
                    *inflight = inflight.saturating_sub(1);
                    if *inflight == 0 {
                        state.inflight.remove(&assignment.job.tenant);
                    }
                }
                state.jobs_reassigned += 1;
                reassigned.push((
                    assignment.job.id,
                    assignment.job.tenant,
                    assignment.dispatched_at,
                ));
                // Only the assignment actually *executing* consumed an
                // attempt; batch-mates the worker never started requeue at
                // their current attempt, so the fault schedule still
                // addresses their first execution.
                if assignment.started && assignment.attempt >= shared.supervisor.max_job_attempts {
                    // Poison: this job has killed max_job_attempts workers
                    // in a row. A tombstone lets the release cursor pass
                    // it; the verdict is journaled at release. The rest of
                    // the fleet keeps flowing.
                    state.poisoned_count += 1;
                    state.completed.insert(
                        seq,
                        Completion::Poisoned(PoisonNotice {
                            spec: assignment.job,
                            attempts: assignment.attempt,
                        }),
                    );
                } else {
                    let attempt = if assignment.started {
                        assignment.attempt + 1
                    } else {
                        assignment.attempt
                    };
                    state.queue.requeue(seq, assignment.job, attempt);
                }
            }
            // The restart ladder. Respawning continues during a graceful
            // finish (the drain needs workers) but not during teardown.
            if !(state.shutting_down && state.discard_queued) {
                let now = shared.clock.load(Ordering::Relaxed);
                if shared.supervisor.restart_window > 0
                    && now.saturating_sub(state.window_start) >= shared.supervisor.restart_window
                {
                    state.window_start = now;
                    state.restarts_in_window = 0;
                }
                if state.restarts_in_window < shared.supervisor.max_restarts {
                    state.restarts_in_window += 1;
                    state.worker_restarts += 1;
                    state.active_workers += 1;
                    let next_gen = state.spawned_total;
                    state.spawned_total += 1;
                    respawn_gen = Some(next_gen);
                } else {
                    // Budget spent: degrade to the surviving pool size.
                    state.worker_target = state.worker_target.min(state.active_workers.max(1));
                    if state.active_workers == 0 {
                        state.workers_dead = true;
                        state.quarantined = true;
                        state.last_error = Some(format!(
                            "last worker died with the restart budget spent: {reason}"
                        ));
                    }
                }
            }
        }
        // Spans and the respawn happen outside the state lock.
        if let Some(tracer) = &shared.tracer {
            for (job, tenant, dispatched_at) in &reassigned {
                // Reclaiming is nobody's per-tenant latency: aggregate
                // cell only, one span per reassigned job.
                let elapsed = dispatched_at.map(|at| at.elapsed()).unwrap_or_default();
                tracer.record_aggregate(Stage::Reassign, *job, *tenant, elapsed);
            }
        }
        if let Some(next_gen) = respawn_gen {
            let handle = Shared::spawn_worker(shared, next_gen);
            shared
                .respawned
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(handle);
        }
        shared.job_ready.notify_all();
        shared.job_done.notify_all();
        shared.slot_free.notify_all();
    }

    /// Spawns one worker thread at generation `gen` (startup, scale-up
    /// and supervisor respawns all come through here).
    fn spawn_worker(shared: &Arc<Shared>, gen: u64) -> JoinHandle<()> {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name(format!("fleet-ingest-{gen}"))
            .spawn(move || {
                // Reap on unwind: a panicking job (injected or real) gets
                // its worker reaped, its batch reassigned and a
                // replacement respawned — the panic never escapes the
                // pool and never takes the drain target down with it.
                let guard = WorkerReapGuard {
                    shared: Arc::clone(&shared),
                    gen,
                };
                Shared::work(&shared, gen);
                std::mem::forget(guard);
            })
            .expect("spawn ingest worker")
    }

    /// Removes and returns the contiguous run of completed records starting
    /// at the release cursor, in submission order. With a journal attached,
    /// the **whole ready prefix** is serialized into the journal's reused
    /// buffer and committed as one [`crate::JournalEntry::Run`] group
    /// commit **before** the release cursor advances — the write-ahead
    /// guarantee: a record a consumer ever observes (and bills) is already
    /// durable, and a record that was never journaled was never released.
    /// Batching the prefix costs one sink write (and one flush/fsync
    /// decision) per pump instead of one per record.
    ///
    /// Journal I/O happens under the consumer-only release guard, *not*
    /// the worker-shared state lock, so workers keep completing jobs while
    /// the consumer pays for the write-ahead commit.
    ///
    /// This never panics on I/O. The commit runs under the configured
    /// [`RetryPolicy`]; on exhaustion the batch is parked and the
    /// pipeline quarantines ([`Shared::enter_quarantine`]) — the release
    /// cursor never advances past an un-journaled record, so nothing is
    /// ever released unjournaled, under any fault schedule. A quarantined
    /// pipeline returns an empty batch until a failover lifts the
    /// quarantine, after which the parked batch drains first.
    fn take_ready(&self) -> Vec<RunRecord> {
        let _release = self
            .release_guard
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // The completion log now interleaves records with poison
        // tombstones, so the contiguous prefix drains in segments: runs
        // of records group-commit as one Run entry; each tombstone
        // journals its own chained Poisoned verdict. Record buffers are
        // pooled (or the parked quarantine batch, which is pooled too).
        enum Segment {
            Records(Vec<RunRecord>),
            Poison(PoisonNotice),
        }
        let mut out: Option<Vec<RunRecord>> = None;
        loop {
            let (first, segment) = {
                let mut state = self.lock();
                if state.quarantined {
                    break;
                }
                let first = state.released;
                if !state.stalled.is_empty() {
                    // A quarantine parked these records exactly at the
                    // release cursor; they drain first.
                    let mut ready = std::mem::take(&mut state.stalled);
                    Self::drain_contiguous_records(&mut state, first, &mut ready);
                    (first, Segment::Records(ready))
                } else {
                    match state.completed.get(&first) {
                        Some(Completion::Record(_)) => {
                            let mut ready = self.pool.acquire();
                            Self::drain_contiguous_records(&mut state, first, &mut ready);
                            (first, Segment::Records(ready))
                        }
                        Some(Completion::Poisoned(_)) => {
                            let Some(Completion::Poisoned(notice)) = state.completed.remove(&first)
                            else {
                                unreachable!("entry observed under the same lock hold");
                            };
                            (first, Segment::Poison(notice))
                        }
                        None => break,
                    }
                }
            };
            match segment {
                Segment::Records(ready) => {
                    debug_assert!(!ready.is_empty(), "record segments start non-empty");
                    if let Some(journal) = &self.journal {
                        // The batch is durable before the cursor advances.
                        let commit_started =
                            self.tracer.as_ref().map(|_| std::time::Instant::now());
                        if let Err(e) =
                            self.commit_with_retry(ready[0].job.id, ready[0].job.tenant, || {
                                journal.append_runs(&ready)
                            })
                        {
                            // Retry policy exhausted: park the batch
                            // (un-released, un-journaled — the cursor still
                            // points at its first record) and close the
                            // billing boundary.
                            self.enter_quarantine(e, ready);
                            break;
                        }
                        if let (Some(tracer), Some(started)) = (&self.tracer, commit_started) {
                            // One group commit covers the whole prefix;
                            // attribute the span to its first record
                            // (aggregate cell only — a shared commit is
                            // nobody's per-tenant latency).
                            tracer.record_aggregate(
                                Stage::JournalCommit,
                                ready[0].job.id,
                                ready[0].job.tenant,
                                started.elapsed(),
                            );
                        }
                    }
                    let mut state = self.lock();
                    debug_assert_eq!(state.released, first, "release guard serializes consumers");
                    state.released = first + ready.len() as u64;
                    // The released records' Accepted markers are no longer
                    // pending: a Run entry now vouches for each of them.
                    if !state.accepted.is_empty() {
                        for seq in first..state.released {
                            state.accepted.remove(&seq);
                        }
                    }
                    drop(state);
                    match &mut out {
                        None => out = Some(ready),
                        Some(acc) => acc.extend(ready),
                    }
                }
                Segment::Poison(notice) => {
                    // A poison verdict is released by journaling it — the
                    // chained Poisoned entry is the tenant-auditable
                    // outcome; there is no record to hand out.
                    if let Some(journal) = &self.journal {
                        if let Err(e) =
                            self.commit_with_retry(notice.spec.id, notice.spec.tenant, || {
                                journal.append_poisoned(&notice)
                            })
                        {
                            // Put the tombstone back; the cursor has not
                            // moved past it.
                            let mut state = self.lock();
                            state.completed.insert(first, Completion::Poisoned(notice));
                            drop(state);
                            self.enter_quarantine(e, Vec::new());
                            break;
                        }
                    }
                    let mut state = self.lock();
                    debug_assert_eq!(state.released, first, "release guard serializes consumers");
                    state.released = first + 1;
                    state.accepted.remove(&first);
                    state.poisoned_log.push(notice);
                }
            }
        }
        // Wake workers stalled on the completion watermark.
        self.job_ready.notify_all();
        out.unwrap_or_default()
    }

    /// Moves the contiguous run of records starting at `first +
    /// ready.len()` out of the completion log into `ready`, stopping at
    /// the first gap or poison tombstone (which stays put for the next
    /// segment).
    fn drain_contiguous_records(state: &mut State, first: u64, ready: &mut Vec<RunRecord>) {
        loop {
            let seq = first + ready.len() as u64;
            match state.completed.get(&seq) {
                Some(Completion::Record(_)) => {
                    let Some(Completion::Record(record)) = state.completed.remove(&seq) else {
                        unreachable!("entry observed under the same lock hold");
                    };
                    ready.push(*record);
                }
                _ => break,
            }
        }
    }
}

/// Reaps its worker on unwind (a panicking simulated run — injected or
/// real); forgotten on the normal exit path.
struct WorkerReapGuard {
    shared: Arc<Shared>,
    gen: u64,
}

impl Drop for WorkerReapGuard {
    fn drop(&mut self) {
        Shared::reap(&self.shared, self.gen, "worker panicked mid-job");
    }
}

/// The streaming ingestion pipeline: a worker pool over a bounded,
/// per-tenant-fair submission queue. See the [module docs](self).
///
/// Dropping a `FleetIngest` without calling [`FleetIngest::finish`] tears
/// the pipeline down: queued jobs are discarded, running jobs complete,
/// workers are joined, and blocked submitters are released with
/// [`SubmitError::ShutDown`]. Call `finish` to drain instead.
#[derive(Debug)]
pub struct FleetIngest {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// A cloneable, `Send` handle for submitting jobs to a [`FleetIngest`] from
/// other threads (each tenant can stream from its own thread).
#[derive(Debug, Clone)]
pub struct IngestHandle {
    shared: Arc<Shared>,
}

impl IngestHandle {
    /// Submits one job; returns its submission sequence number.
    ///
    /// # Errors
    /// [`SubmitError::QueueFull`] under [`BackpressurePolicy::Reject`] with
    /// a full queue; [`SubmitError::ShutDown`] once the pipeline is
    /// finishing.
    pub fn submit(&self, job: JobSpec) -> Result<u64, SubmitError> {
        self.shared.submit(job)
    }

    /// Submits a batch of jobs; see [`FleetIngest::submit_all`].
    ///
    /// # Errors
    /// [`BatchSubmitError`] carrying the accepted prefix and the
    /// [`SubmitError`] that stopped the batch.
    pub fn submit_all(&self, jobs: &[JobSpec]) -> Result<Vec<u64>, BatchSubmitError> {
        self.shared.submit_all(jobs)
    }

    /// A snapshot of the pipeline counters and gauges.
    pub fn stats(&self) -> IngestStats {
        self.shared.stats()
    }
}

impl FleetIngest {
    /// Spawns the worker pool for a fleet built from `fleet_config`.
    pub fn start(fleet_config: FleetConfig, config: IngestConfig) -> FleetIngest {
        FleetIngest::over(Fleet::new(fleet_config), config)
    }

    /// Spawns the worker pool over an existing executor.
    ///
    /// # Panics
    /// Panics if `config.workers` is zero.
    pub fn over(fleet: Fleet, config: IngestConfig) -> FleetIngest {
        FleetIngest::over_journaled(fleet, config, None)
    }

    /// Spawns the worker pool over an existing executor, write-ahead
    /// journaling every released record into `journal` (see
    /// [`crate::Journal`] and the [`crate::journal`] module docs).
    ///
    /// # Panics
    /// Panics if `config.workers` is zero.
    pub fn over_journaled(
        fleet: Fleet,
        config: IngestConfig,
        journal: Option<Journal>,
    ) -> FleetIngest {
        let tracer = fleet.tracer().cloned();
        FleetIngest::over_traced(fleet, config, journal, tracer)
    }

    /// Spawns the worker pool over an existing executor with an optional
    /// journal and an optional [`PipelineTracer`] recording queue-wait
    /// and journal-commit spans (the executor's own tracer, if any, keeps
    /// recording execution spans independently).
    ///
    /// # Panics
    /// Panics if `config.workers` is zero.
    pub fn over_traced(
        fleet: Fleet,
        config: IngestConfig,
        journal: Option<Journal>,
        tracer: Option<PipelineTracer>,
    ) -> FleetIngest {
        assert!(
            config.workers > 0,
            "an ingest pipeline needs at least one worker"
        );
        // Auto-verification: a fleet with injected executor faults checks
        // every completion against its quote unless told otherwise.
        let verify_completions = config
            .verify_completions
            .unwrap_or(!config.worker_faults.is_empty());
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: FairQueue::new(config.capacity),
                next_seq: 0,
                completed: BTreeMap::new(),
                released: 0,
                dispatch_log: Vec::new(),
                inflight: BTreeMap::new(),
                submitted: 0,
                completed_count: 0,
                rejected: 0,
                paused: config.start_paused,
                shutting_down: false,
                discard_queued: false,
                quarantined: false,
                stalled: Vec::new(),
                retries: 0,
                journal_failures: 0,
                backoff_ticks: 0,
                last_error: None,
                accepted: BTreeMap::new(),
                worker_target: config.workers,
                active_workers: config.workers,
                assignments: BTreeMap::new(),
                dead_workers: BTreeSet::new(),
                spawned_total: config.workers as u64,
                restarts_in_window: 0,
                window_start: 0,
                worker_restarts: 0,
                jobs_reassigned: 0,
                poisoned_count: 0,
                poisoned_log: Vec::new(),
                stale_completions: 0,
                workers_dead: false,
            }),
            job_ready: Condvar::new(),
            slot_free: Condvar::new(),
            job_done: Condvar::new(),
            policy: config.backpressure,
            watermark: config.completion_watermark,
            journal,
            tracer,
            release_guard: Mutex::new(()),
            submit_guard: Mutex::new(()),
            retry: config.retry,
            pool: BufferPool::new(),
            clock: AtomicU64::new(0),
            supervisor: config.supervisor,
            deadline_grace: config.job_deadline,
            worker_faults: config.worker_faults,
            verify_completions,
            fleet,
            respawned: Mutex::new(Vec::new()),
        });
        let workers = (0..config.workers)
            .map(|i| Shared::spawn_worker(&shared, i as u64))
            .collect();
        FleetIngest { shared, workers }
    }

    /// Resizes the worker pool to `workers` threads (clamped to at least
    /// one). Growing spawns immediately; shrinking is cooperative — each
    /// surplus worker finishes the batch it holds and exits at the top of
    /// its loop, so no job is ever abandoned mid-run. During shutdown the
    /// target is ignored: `finish` keeps every worker alive to drain.
    pub fn scale_to(&mut self, workers: usize) {
        let target = workers.max(1);
        let gens: Vec<u64> = {
            let mut state = self.shared.lock();
            if state.shutting_down {
                return;
            }
            state.worker_target = target;
            let grow = target.saturating_sub(state.active_workers);
            // Count the spawns now, under the lock, so the fair-share
            // batch cap sees the new pool size immediately.
            state.active_workers += grow;
            if grow > 0 && state.workers_dead {
                // A fresh pool revives a fleet whose last worker died
                // with the restart budget spent.
                state.workers_dead = false;
                state.quarantined = false;
                state.last_error = None;
            }
            let first = state.spawned_total;
            state.spawned_total += grow as u64;
            (first..first + grow as u64).collect()
        };
        let grew = !gens.is_empty();
        for gen in gens {
            self.workers.push(Shared::spawn_worker(&self.shared, gen));
        }
        if grew {
            // New workers (and possibly a revived pipeline) need waking
            // submitters and consumers.
            self.shared.slot_free.notify_all();
        }
        // Wake idle workers: on a shrink, surplus ones consume their
        // shrink tokens without waiting for the next submission.
        self.shared.job_ready.notify_all();
    }

    /// Sets a tenant's fairness weight: how many jobs its lane may release
    /// per rotation turn (deficit round robin). Weight 1 (the default) is
    /// plain round-robin; 0 is clamped to 1. Takes effect from the lane's
    /// next turn.
    pub fn set_tenant_weight(&self, tenant: TenantId, weight: u32) {
        self.shared.lock().queue.set_weight(tenant, weight);
    }

    /// Submits one job; returns its submission sequence number.
    ///
    /// # Errors
    /// [`SubmitError::QueueFull`] under [`BackpressurePolicy::Reject`] with
    /// a full queue; [`SubmitError::ShutDown`] once the pipeline is
    /// finishing.
    pub fn submit(&self, job: JobSpec) -> Result<u64, SubmitError> {
        self.shared.submit(job)
    }

    /// Submits a batch of jobs, paying the submission-path synchronization
    /// (submit guard, `Accepted` journal group commit, state lock, worker
    /// wake) once per admitted slice instead of once per job. Sequence
    /// numbers, queue fairness, journal bytes and every downstream artifact
    /// are bit-identical to submitting the same jobs one at a time.
    ///
    /// Under [`BackpressurePolicy::Block`] a batch larger than the queue
    /// capacity is admitted in capacity-sized slices, blocking between
    /// slices until slots free.
    ///
    /// # Errors
    /// [`BatchSubmitError`] carrying the sequence numbers of the accepted
    /// prefix (those jobs are in the pipeline and will run) and the
    /// [`SubmitError`] that stopped the rest of the batch.
    pub fn submit_all(&self, jobs: &[JobSpec]) -> Result<Vec<u64>, BatchSubmitError> {
        self.shared.submit_all(jobs)
    }

    /// A cloneable handle for submitting from other threads.
    pub fn handle(&self) -> IngestHandle {
        IngestHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A snapshot of the pipeline counters and gauges.
    pub fn stats(&self) -> IngestStats {
        self.shared.stats()
    }

    /// The pipeline's durability health report: quarantine state, retry
    /// and failure counters, parked work (see [`FleetHealth`]).
    pub fn health(&self) -> FleetHealth {
        self.shared.health()
    }

    /// Fails the journal over to a **fresh** sink (e.g. a new segment
    /// directory on a healthy disk) and lifts the quarantine. The swap
    /// keeps chain continuity — the evidence chain head only advances on
    /// successful commits, so the new sink's first line continues exactly
    /// where the dead sink's last committed line left off — and the
    /// pending accepted set is re-journaled into the new sink so it is
    /// recoverable on its own, accepted-but-unreleased jobs included.
    /// The next [`FleetIngest::take_ready`] drains the parked batch.
    ///
    /// Callers going through [`crate::FleetStream`] should use
    /// [`crate::FleetStream::resume_with_sink`] instead, which also
    /// writes a leading checkpoint so the new sink replays standalone.
    ///
    /// # Errors
    /// [`JournalError::Io`] if the pipeline has no journal, or if the
    /// replacement sink rejects the re-journaled accepted set — in which
    /// case the pipeline stays quarantined.
    pub fn resume_with_sink(&self, sink: Box<dyn JournalSink>) -> Result<(), JournalError> {
        let Some(journal) = &self.shared.journal else {
            return Err(JournalError::Io(
                "ingest pipeline has no journal to fail over".to_string(),
            ));
        };
        journal.fail_over(sink);
        self.shared.resume_after_failover()
    }

    /// The second half of a failover, for callers that swap the sink and
    /// write their own leading entries first (see
    /// [`crate::FleetStream::resume_with_sink`]): re-journals the pending
    /// accepted set and lifts the quarantine.
    pub(crate) fn resume_after_failover(&self) -> Result<(), JournalError> {
        self.shared.resume_after_failover()
    }

    /// Stops dispatching new jobs (running jobs finish normally).
    pub fn pause(&self) {
        self.shared.lock().paused = true;
    }

    /// Resumes dispatch after [`FleetIngest::pause`].
    pub fn resume(&self) {
        self.shared.lock().paused = false;
        self.shared.job_ready.notify_all();
    }

    /// The dispatch order so far — which job each worker popped, in pop
    /// order. This is the observable fairness record: with a backlog from
    /// several tenants, consecutive entries round-robin across tenants.
    pub fn dispatch_log(&self) -> Vec<(JobId, TenantId)> {
        self.shared.lock().dispatch_log.clone()
    }

    /// Removes and returns all completed records that form a contiguous
    /// run in submission order (the stream analogue of a batch result
    /// prefix). Records completed out of order are held back until the gap
    /// fills, so consumers always observe submission order. Poison
    /// verdicts release in the same order (their journaled `Poisoned`
    /// entry is the release) but yield no record — read them from
    /// [`FleetIngest::poisoned`] or [`IngestOutcome::poisoned`].
    ///
    /// Also runs the watchdog as a belt-and-braces backstop: a consumer
    /// pumping the stream re-checks every running job's virtual-tick
    /// deadline even if the hung worker's own spin loop has not.
    pub fn take_ready(&self) -> Vec<RunRecord> {
        Shared::supervise(&self.shared);
        self.shared.take_ready()
    }

    /// The poison verdicts released so far: jobs that killed
    /// [`SupervisorPolicy::max_job_attempts`] workers in a row and were
    /// retired with a journaled [`crate::JournalEntry::Poisoned`] entry
    /// instead of a record. In release (submission) order.
    pub fn poisoned(&self) -> Vec<PoisonNotice> {
        self.shared.lock().poisoned_log.clone()
    }

    /// Hands a consumed [`FleetIngest::take_ready`] buffer back to the
    /// release-path pool: the container is cleared (leftover records are
    /// dropped) and its capacity is reused by the next release batch. Pool
    /// traffic shows up in [`IngestStats::pool`]. Purely an allocator
    /// optimization — skipping it just means the next batch allocates.
    pub fn recycle(&self, buffer: Vec<RunRecord>) {
        self.shared.pool.release(buffer);
    }

    /// Graceful shutdown: stops accepting new submissions, drains every
    /// queued job, joins the workers, and returns all records not yet taken
    /// via [`FleetIngest::take_ready`] (in submission order) plus the final
    /// dispatch log and counters.
    ///
    /// Finishing while **quarantined** still executes and joins everything,
    /// but releases nothing: the parked and completed records stay behind
    /// the closed billing boundary (never journaled ⇒ never billed), and
    /// `outcome.records` is empty with `outcome.stats.quarantined` set.
    /// Fail over with [`FleetIngest::resume_with_sink`] *before* finishing
    /// to drain them instead.
    pub fn finish(mut self) -> IngestOutcome {
        {
            let mut state = self.shared.lock();
            state.shutting_down = true;
            // Draining overrides pause: a paused pipeline still finishes.
            state.paused = false;
            let target = state.submitted;
            // Every submitted job resolves to either a completed record
            // or a poison tombstone; the supervisor respawns through the
            // drain, so the target stays reachable — unless the whole
            // pool is dead with the restart budget spent.
            while state.completed_count + state.poisoned_count < target && !state.workers_dead {
                self.shared.job_ready.notify_all();
                state = self.shared.wait(&self.shared.job_done, state);
            }
            if state.workers_dead {
                // Nothing left to execute the backlog; release what did
                // complete and report the degraded state in the stats.
                state.discard_queued = true;
            }
        }
        // Wake everyone: idle workers exit, blocked submitters see ShutDown.
        self.shared.job_ready.notify_all();
        self.shared.slot_free.notify_all();
        for worker in self.workers.drain(..) {
            // Panicked workers were already reaped by their unwind guard;
            // their handles just carry the panic payload.
            let _ = worker.join();
        }
        loop {
            // Supervisor respawns can themselves respawn; drain until the
            // set is stable.
            let drained: Vec<JoinHandle<()>> = {
                let mut respawned = self
                    .shared
                    .respawned
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                std::mem::take(&mut *respawned)
            };
            if drained.is_empty() {
                break;
            }
            for worker in drained {
                let _ = worker.join();
            }
        }
        let records = self.shared.take_ready();
        let stats = self.shared.stats();
        let poisoned = self.shared.lock().poisoned_log.clone();
        IngestOutcome {
            records,
            dispatch_log: self.dispatch_log(),
            stats,
            poisoned,
        }
    }
}

impl Drop for FleetIngest {
    /// Teardown without [`FleetIngest::finish`] (early return, panic
    /// unwind, plain drop): discard queued jobs, release blocked
    /// submitters, join the workers. Never blocks longer than the jobs
    /// already running.
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return; // finish() already joined everything
        }
        {
            let mut state = self.shared.lock();
            state.shutting_down = true;
            state.discard_queued = true;
            state.paused = false;
        }
        self.shared.job_ready.notify_all();
        self.shared.slot_free.notify_all();
        for worker in self.workers.drain(..) {
            // A worker that panicked mid-job was already reaped by its
            // unwind guard; don't double-panic during teardown.
            let _ = worker.join();
        }
        let respawned: Vec<JoinHandle<()>> = {
            let mut respawned = self
                .shared
                .respawned
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *respawned)
        };
        for worker in respawned {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustmeter_workloads::Workload;

    const SCALE: f64 = 0.001;

    fn job(id: u64, tenant: u32) -> JobSpec {
        JobSpec::clean(id, TenantId(tenant), Workload::LoopO, SCALE)
    }

    #[test]
    fn streamed_records_arrive_in_submission_order() {
        let ingest = FleetIngest::start(FleetConfig::new(4, 7), IngestConfig::new(4));
        for id in 0..12 {
            ingest.submit(job(id, (id % 3) as u32)).unwrap();
        }
        let outcome = ingest.finish();
        let ids: Vec<u64> = outcome.records.iter().map(|r| r.job.id.0).collect();
        assert_eq!(ids, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn recycled_buffers_feed_the_next_release() {
        let ingest = FleetIngest::start(FleetConfig::new(1, 7), IngestConfig::new(1));
        let mut taken = 0;
        for round in 0..3 {
            for id in 0..4 {
                ingest.submit(job(round * 4 + id, 1)).unwrap();
            }
            // Pump like a stream consumer: take, consume, recycle.
            while taken < (round + 1) * 4 {
                let ready = ingest.take_ready();
                taken += ready.len() as u64;
                ingest.recycle(ready);
            }
        }
        let stats = ingest.stats().pool;
        assert!(stats.acquired > 0, "releases drew from the pool");
        assert!(
            stats.reused > 0,
            "later releases reused recycled capacity: {stats:?}"
        );
        assert_eq!(stats.acquired, stats.reused + stats.allocated());
        let outcome = ingest.finish();
        assert_eq!(outcome.stats.completed, 12);
    }

    #[test]
    fn reject_policy_returns_queue_full() {
        let config = IngestConfig::new(1)
            .with_capacity(2)
            .with_backpressure(BackpressurePolicy::Reject)
            .paused();
        let ingest = FleetIngest::start(FleetConfig::new(1, 7), config);
        ingest.submit(job(0, 1)).unwrap();
        ingest.submit(job(1, 1)).unwrap();
        assert_eq!(ingest.submit(job(2, 1)), Err(SubmitError::QueueFull));
        assert_eq!(ingest.stats().rejected, 1);
        ingest.resume();
        let outcome = ingest.finish();
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(outcome.stats.rejected, 1);
        assert_eq!(outcome.stats.queued, 0);
        assert_eq!(outcome.stats.inflight_total(), 0);
    }

    #[test]
    fn blocked_submitters_ride_out_backpressure() {
        let config = IngestConfig::new(2).with_capacity(1);
        let ingest = FleetIngest::start(FleetConfig::new(2, 3), config);
        let handle = ingest.handle();
        let submitter = std::thread::spawn(move || {
            for id in 0..10 {
                handle.submit(job(id, (id % 2) as u32)).unwrap();
            }
        });
        submitter.join().unwrap();
        let outcome = ingest.finish();
        assert_eq!(outcome.records.len(), 10);
        let ids: Vec<u64> = outcome.records.iter().map(|r| r.job.id.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn dispatch_log_round_robins_a_staged_backlog() {
        // Stage a backlog while paused so the dispatch order is exact.
        let config = IngestConfig::new(1).with_capacity(0).paused();
        let ingest = FleetIngest::start(FleetConfig::new(1, 5), config);
        for id in 0..6 {
            ingest.submit(job(id, 1)).unwrap(); // greedy tenant
        }
        ingest.submit(job(6, 2)).unwrap(); // modest tenant
        ingest.resume();
        let outcome = ingest.finish();
        assert_eq!(outcome.records.len(), 7);
        let dispatched: Vec<u32> = outcome
            .dispatch_log
            .iter()
            .map(|(_, tenant)| tenant.0)
            .collect();
        // Tenant 2's single job is served second, not seventh.
        assert_eq!(dispatched[1], 2, "dispatch order: {dispatched:?}");
    }

    #[test]
    fn dropping_without_finish_discards_backlog_and_joins_workers() {
        let config = IngestConfig::new(2).paused();
        let ingest = FleetIngest::start(FleetConfig::new(2, 11), config);
        let handle = ingest.handle();
        for id in 0..4 {
            ingest.submit(job(id, 1)).unwrap();
        }
        // No finish(): Drop must tear down without hanging, abandoning the
        // paused backlog.
        drop(ingest);
        assert_eq!(handle.submit(job(9, 1)), Err(SubmitError::ShutDown));
        assert_eq!(handle.stats().completed, 0, "backlog was discarded");
    }

    #[test]
    fn submit_after_finish_is_rejected() {
        let ingest = FleetIngest::start(FleetConfig::new(1, 1), IngestConfig::new(1));
        let handle = ingest.handle();
        ingest.submit(job(0, 1)).unwrap();
        ingest.finish();
        assert_eq!(handle.submit(job(1, 1)), Err(SubmitError::ShutDown));
    }

    #[test]
    fn completion_watermark_stalls_workers_until_consumed() {
        let config = IngestConfig::new(2).with_completion_watermark(1);
        let ingest = FleetIngest::start(FleetConfig::new(2, 13), config);
        for id in 0..5 {
            ingest.submit(job(id, 1)).unwrap();
        }
        // One job is allowed through; with ready + inflight at the
        // watermark, no worker may start another.
        while ingest.stats().ready < 1 {
            std::thread::yield_now();
        }
        for _ in 0..100 {
            std::thread::yield_now();
        }
        let stats = ingest.stats();
        assert_eq!(stats.ready, 1, "completion log is bounded at the watermark");
        assert_eq!(stats.completed, 1, "no further job started");
        // Consuming the record frees exactly one slot.
        let taken = ingest.take_ready();
        assert_eq!(taken.len(), 1);
        while ingest.stats().ready < 1 {
            std::thread::yield_now();
        }
        assert_eq!(ingest.stats().completed, 2);
        // A graceful finish lifts the watermark and drains the backlog.
        let outcome = ingest.finish();
        assert_eq!(outcome.records.len() + taken.len(), 5);
        assert_eq!(outcome.stats.ready, 0);
    }

    #[test]
    fn journal_receives_released_records_in_submission_order() {
        let journal = crate::journal::Journal::in_memory();
        let ingest = FleetIngest::over_journaled(
            Fleet::new(FleetConfig::new(4, 21)),
            IngestConfig::new(4),
            Some(journal.clone()),
        );
        for id in 0..8 {
            ingest.submit(job(id, (id % 2) as u32)).unwrap();
        }
        let outcome = ingest.finish();
        assert_eq!(outcome.records.len(), 8);
        let (entries, tail) = journal.entries().unwrap();
        assert!(!tail.is_truncated());
        // Every submission wrote an Accepted marker ahead of its Run.
        let accepted: Vec<u64> = entries
            .iter()
            .filter(|e| e.label() == "accepted")
            .map(|e| e.job().unwrap().0)
            .collect();
        assert_eq!(accepted, (0..8).collect::<Vec<_>>());
        let runs: Vec<u64> = entries
            .iter()
            .filter(|e| e.label() == "run")
            .map(|e| e.job().unwrap().0)
            .collect();
        assert_eq!(
            runs,
            (0..8).collect::<Vec<_>>(),
            "journal is submission order"
        );
        assert_eq!(journal.stats().appends, 16);
    }

    #[test]
    fn unreleased_records_are_never_journaled() {
        let journal = crate::journal::Journal::in_memory();
        let config = IngestConfig::new(1).paused();
        let ingest = FleetIngest::over_journaled(
            Fleet::new(FleetConfig::new(1, 17)),
            config,
            Some(journal.clone()),
        );
        ingest.submit(job(0, 1)).unwrap();
        // Teardown without finish(): the backlog is discarded, nothing was
        // released, so no Run entry was journaled — crash-lost work was
        // never billed. The Accepted marker *is* there: that is the
        // submission-side record a restarted service resubmits from.
        drop(ingest);
        let (entries, _) = journal.entries().unwrap();
        let labels: Vec<&str> = entries.iter().map(|e| e.label()).collect();
        assert_eq!(labels, vec!["accepted"]);
    }

    #[test]
    fn retry_policy_absorbs_transient_journal_faults() {
        use crate::faults::{FaultInjectingSink, FaultSchedule};
        use crate::journal::MemorySink;

        // Line 1 (job 0's Accepted is line 0; this hits job 1's Accepted)
        // fails twice, then clears: within the default 4-attempt policy.
        let schedule = FaultSchedule::none().transient_at(1, 2);
        let (sink, probe) = FaultInjectingSink::wrap(Box::new(MemorySink::new()), schedule);
        let journal = Journal::with_sink(Box::new(sink)).unwrap();
        let ingest = FleetIngest::over_journaled(
            Fleet::new(FleetConfig::new(1, 23)),
            IngestConfig::new(1),
            Some(journal.clone()),
        );
        for id in 0..3 {
            ingest.submit(job(id, 1)).unwrap();
        }
        let outcome = ingest.finish();
        assert_eq!(outcome.records.len(), 3);
        assert!(!outcome.stats.quarantined);
        assert_eq!(outcome.stats.retries, 2);
        assert_eq!(outcome.stats.journal_failures, 0);
        assert_eq!(probe.stats().injected_transient, 2);
        // The journal chain survived the retries intact.
        let (entries, _) = journal.entries().unwrap();
        assert_eq!(entries.len(), 6, "3 accepted + 3 runs");
    }

    #[test]
    fn exhausted_retries_quarantine_instead_of_panicking() {
        use crate::faults::{FaultInjectingSink, FaultSchedule, RetryPolicy};
        use crate::journal::MemorySink;

        // Accepted entries (lines 0..2) pass; the release-path Run commit
        // (line 2 onward) hits a dead disk.
        let schedule = FaultSchedule::none().disk_full_at(2);
        let (sink, _probe) = FaultInjectingSink::wrap(Box::new(MemorySink::new()), schedule);
        let journal = Journal::with_sink(Box::new(sink)).unwrap();
        let config = IngestConfig::new(1).with_retry_policy(RetryPolicy::new(2));
        let ingest = FleetIngest::over_journaled(
            Fleet::new(FleetConfig::new(1, 29)),
            config,
            Some(journal.clone()),
        );
        ingest.submit(job(0, 1)).unwrap();
        ingest.submit(job(1, 1)).unwrap();
        // Wait for both to complete, then try to release: the commit
        // exhausts the policy and quarantines — no panic, no release.
        while ingest.stats().completed < 2 {
            std::thread::yield_now();
        }
        assert!(ingest.take_ready().is_empty());
        let health = ingest.health();
        assert!(health.quarantined);
        assert_eq!(health.journal_failures, 1);
        assert_eq!(health.retries, 1);
        assert_eq!(health.stalled, 2);
        assert_eq!(health.pending_accepted, 2);
        assert!(health.last_error.unwrap().contains("disk-full"));
        // Quarantine closes the front door…
        assert_eq!(ingest.submit(job(2, 1)), Err(SubmitError::Quarantined));
        // …and the billing boundary: nothing was released unjournaled.
        let (entries, _) = journal.entries().unwrap();
        assert!(entries.iter().all(|e| e.label() == "accepted"));
        let outcome = ingest.finish();
        assert!(outcome.records.is_empty(), "quarantine releases nothing");
        assert!(outcome.stats.quarantined);
    }

    #[test]
    fn failover_drains_the_stalled_prefix_with_chain_continuity() {
        use crate::faults::{FaultInjectingSink, FaultSchedule, RetryPolicy};
        use crate::journal::{parse_journal, MemorySink};

        let schedule = FaultSchedule::none().permanent_at(2);
        let (sink, _probe) = FaultInjectingSink::wrap(Box::new(MemorySink::new()), schedule);
        let journal = Journal::with_sink(Box::new(sink)).unwrap();
        let config = IngestConfig::new(1).with_retry_policy(RetryPolicy::none());
        let ingest = FleetIngest::over_journaled(
            Fleet::new(FleetConfig::new(1, 31)),
            config,
            Some(journal.clone()),
        );
        ingest.submit(job(0, 1)).unwrap();
        ingest.submit(job(1, 1)).unwrap();
        while ingest.stats().completed < 2 {
            std::thread::yield_now();
        }
        assert!(ingest.take_ready().is_empty());
        assert!(ingest.health().quarantined);
        let dead_text = journal.text().unwrap();

        // Fail over to a fresh sink: quarantine lifts, the parked batch
        // drains, and new submissions are accepted again.
        ingest
            .resume_with_sink(Box::new(MemorySink::new()))
            .unwrap();
        assert!(!ingest.health().quarantined);
        let drained = ingest.take_ready();
        assert_eq!(drained.len(), 2);
        ingest.submit(job(2, 1)).unwrap();
        let outcome = ingest.finish();
        assert_eq!(outcome.records.len(), 1);

        // Chain continuity: the old text concatenated with the new sink's
        // text parses as ONE unbroken evidence chain.
        let new_text = journal.text().unwrap();
        let spliced = format!("{dead_text}{new_text}");
        let (entries, tail) = parse_journal(&spliced).unwrap();
        assert!(!tail.is_truncated());
        // 2 accepted (old) + 2 re-journaled accepted + 2 runs + 1 accepted
        // + 1 run (post-failover submission).
        assert_eq!(entries.len(), 8);
    }

    #[test]
    fn submit_all_slices_through_a_bounded_queue() {
        let config = IngestConfig::new(2).with_capacity(3);
        let ingest = FleetIngest::start(FleetConfig::new(2, 7), config);
        let jobs: Vec<JobSpec> = (0..10).map(|id| job(id, (id % 3) as u32)).collect();
        let seqs = ingest.submit_all(&jobs).unwrap();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
        let outcome = ingest.finish();
        let ids: Vec<u64> = outcome.records.iter().map(|r| r.job.id.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>(), "submission order held");
        assert_eq!(outcome.stats.submitted, 10);
    }

    #[test]
    fn batched_submission_journal_matches_per_job_bytes() {
        let jobs: Vec<JobSpec> = (0..6).map(|id| job(id, (id % 2) as u32)).collect();
        let run = |batched: bool| {
            let journal = Journal::in_memory();
            let config = IngestConfig::new(1).paused();
            let ingest = FleetIngest::over_journaled(
                Fleet::new(FleetConfig::new(1, 41)),
                config,
                Some(journal.clone()),
            );
            if batched {
                ingest.submit_all(&jobs).unwrap();
            } else {
                for j in &jobs {
                    ingest.submit(j.clone()).unwrap();
                }
            }
            ingest.resume();
            ingest.finish();
            journal.text().unwrap()
        };
        assert_eq!(
            run(false),
            run(true),
            "grouped Accepted commits are byte-identical to per-job appends"
        );
    }

    #[test]
    fn quarantine_mid_batch_reports_the_accepted_prefix() {
        use crate::faults::{FaultInjectingSink, FaultSchedule, RetryPolicy};
        use crate::journal::MemorySink;

        // Slice 1 (jobs 0-1, journal lines 0-1) commits; slice 2's grouped
        // Accepted commit starts at line 2 and hits a dead disk. Workers
        // never journal (runs are journaled at release, and nothing calls
        // take_ready), so the line schedule is deterministic even with the
        // pool running.
        let schedule = FaultSchedule::none().disk_full_at(2);
        let (sink, _probe) = FaultInjectingSink::wrap(Box::new(MemorySink::new()), schedule);
        let journal = Journal::with_sink(Box::new(sink)).unwrap();
        let config = IngestConfig::new(1)
            .with_capacity(2)
            .with_retry_policy(RetryPolicy::none());
        let ingest = FleetIngest::over_journaled(
            Fleet::new(FleetConfig::new(1, 43)),
            config,
            Some(journal.clone()),
        );
        let jobs: Vec<JobSpec> = (0..4).map(|id| job(id, 1)).collect();
        let err = ingest.submit_all(&jobs).unwrap_err();
        assert_eq!(
            err.accepted,
            vec![0, 1],
            "journaled prefix is in the pipeline"
        );
        assert_eq!(err.error, SubmitError::Quarantined);
        assert!(ingest.health().quarantined);
        let outcome = ingest.finish();
        assert_eq!(outcome.stats.submitted, 2, "only the durable prefix ran");
        assert!(outcome.records.is_empty(), "quarantine releases nothing");
    }

    #[test]
    fn scale_to_grows_and_shrinks_the_pool() {
        let mut ingest = FleetIngest::start(FleetConfig::new(2, 7), IngestConfig::new(2));
        assert_eq!(ingest.stats().workers, 2);
        ingest.scale_to(4);
        assert_eq!(ingest.stats().workers, 4);
        ingest.scale_to(1);
        while ingest.stats().workers > 1 {
            std::thread::yield_now();
        }
        // The shrunk pool still drains everything.
        for id in 0..8 {
            ingest.submit(job(id, (id % 2) as u32)).unwrap();
        }
        let outcome = ingest.finish();
        assert_eq!(outcome.records.len(), 8);
        assert_eq!(outcome.stats.workers, 0, "every worker exited on finish");
    }

    #[test]
    fn take_ready_holds_back_gaps() {
        let config = IngestConfig::new(1).paused();
        let ingest = FleetIngest::start(FleetConfig::new(1, 9), config);
        ingest.submit(job(0, 1)).unwrap();
        ingest.submit(job(1, 1)).unwrap();
        // Nothing completed yet: nothing to take.
        assert!(ingest.take_ready().is_empty());
        ingest.resume();
        let rest = ingest.finish();
        assert_eq!(rest.records.len(), 2);
    }
}
