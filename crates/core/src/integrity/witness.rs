//! Execution integrity: a hash-chain witness over executed control flow.
//!
//! Paper §VI-B observes that an adversary stronger than the one modelled in
//! the attacks could tamper with a program's *control flow* (control-data or
//! non-control-data attacks) to make it take a longer path. Execution
//! integrity means such deviations are detectable. The simulator implements
//! the simplest sound mechanism: the substrate appends the identifier of
//! every executed block/op to an [`ExecutionWitness`] hash chain; the
//! customer, who can regenerate the expected chain by running the same
//! program on her own reference platform, compares final digests (and, for
//! diagnosis, prefix lengths).

use super::measurement::Digest;
use super::sha256::Sha256;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where two execution witnesses diverge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WitnessMismatch {
    /// Index of the first differing step (equal to the shorter length when
    /// one chain is a prefix of the other).
    pub first_divergence: usize,
    /// Steps recorded by the local (reference) witness.
    pub expected_len: usize,
    /// Steps recorded by the remote (reported) witness.
    pub observed_len: usize,
}

impl fmt::Display for WitnessMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "execution diverged at step {} (expected {} steps, observed {})",
            self.first_divergence, self.expected_len, self.observed_len
        )
    }
}

/// A hash chain committing to the sequence of executed blocks.
///
/// # Example
///
/// ```
/// use trustmeter_core::ExecutionWitness;
///
/// let mut reference = ExecutionWitness::new();
/// let mut remote = ExecutionWitness::new();
/// for block in ["entry", "loop", "loop", "exit"] {
///     reference.record(block);
///     remote.record(block);
/// }
/// assert!(reference.matches(&remote));
///
/// remote.record("injected-code");
/// assert!(!reference.matches(&remote));
/// assert!(reference.diff(&remote).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ExecutionWitness {
    chain: Digest,
    steps: Vec<Digest>,
}

impl ExecutionWitness {
    /// Creates an empty witness.
    pub fn new() -> ExecutionWitness {
        ExecutionWitness {
            chain: Digest::ZERO,
            steps: Vec::new(),
        }
    }

    /// Records the execution of a block identified by `block_id`.
    pub fn record(&mut self, block_id: &str) {
        self.record_step(Digest::of(block_id.as_bytes()));
    }

    /// Records a step whose label digest the caller has already computed —
    /// bit-identical to [`ExecutionWitness::record`] when `step` is
    /// `Digest::of(label)`. Control-flow labels repeat heavily (a libcall
    /// loop re-records the same `call:<symbol>` every iteration), so
    /// substrates memoize the label digest and pay only the chain update —
    /// which must see every step — per record.
    pub fn record_step(&mut self, step: Digest) {
        self.chain = Digest(Sha256::digest_pair(&self.chain.0, &step.0));
        self.steps.push(step);
    }

    /// The running chain digest committing to everything recorded so far.
    pub fn digest(&self) -> Digest {
        self.chain
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Whether two witnesses commit to identical executions.
    pub fn matches(&self, other: &ExecutionWitness) -> bool {
        self.chain == other.chain && self.steps.len() == other.steps.len()
    }

    /// Locates the divergence between two witnesses, or `None` when they
    /// match.
    pub fn diff(&self, other: &ExecutionWitness) -> Option<WitnessMismatch> {
        if self.matches(other) {
            return None;
        }
        let common = self
            .steps
            .iter()
            .zip(other.steps.iter())
            .take_while(|(a, b)| a == b)
            .count();
        Some(WitnessMismatch {
            first_divergence: common,
            expected_len: self.steps.len(),
            observed_len: other.steps.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_match() {
        let mut a = ExecutionWitness::new();
        let mut b = ExecutionWitness::new();
        for s in ["a", "b", "c"] {
            a.record(s);
            b.record(s);
        }
        assert!(a.matches(&b));
        assert_eq!(a.diff(&b), None);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn order_matters() {
        let mut a = ExecutionWitness::new();
        let mut b = ExecutionWitness::new();
        a.record("x");
        a.record("y");
        b.record("y");
        b.record("x");
        assert!(!a.matches(&b));
        assert_eq!(a.diff(&b).unwrap().first_divergence, 0);
    }

    #[test]
    fn extra_steps_detected() {
        let mut reference = ExecutionWitness::new();
        let mut remote = ExecutionWitness::new();
        for s in ["entry", "compute"] {
            reference.record(s);
            remote.record(s);
        }
        remote.record("attacker-detour");
        let diff = reference.diff(&remote).unwrap();
        assert_eq!(diff.first_divergence, 2);
        assert_eq!(diff.expected_len, 2);
        assert_eq!(diff.observed_len, 3);
        assert!(format!("{diff}").contains("step 2"));
    }

    #[test]
    fn record_step_matches_record() {
        let mut by_label = ExecutionWitness::new();
        let mut by_step = ExecutionWitness::new();
        for label in ["entry", "call:sqrt", "call:sqrt", "exit"] {
            by_label.record(label);
            by_step.record_step(Digest::of(label.as_bytes()));
        }
        assert!(by_label.matches(&by_step));
        assert_eq!(by_label.digest(), by_step.digest());
    }

    #[test]
    fn empty_witnesses_match() {
        let a = ExecutionWitness::new();
        let b = ExecutionWitness::default();
        assert!(a.matches(&b));
        assert!(a.is_empty());
        assert_eq!(a.digest(), Digest::ZERO);
    }

    #[test]
    fn digest_changes_with_each_step() {
        let mut w = ExecutionWitness::new();
        let d0 = w.digest();
        w.record("a");
        let d1 = w.digest();
        w.record("a");
        let d2 = w.digest();
        assert_ne!(d0, d1);
        assert_ne!(d1, d2);
    }
}
