//! Executor fault-injection tests: the worker pool under hostile compute.
//!
//! Every failure mode is driven through a seeded [`WorkerFaultSchedule`]
//! so each scenario reproduces exactly: panics reaped by the unwind
//! guard, hangs caught by the virtual-tick deadline watchdog, slowdowns
//! bounded the same way, and lying executors rejected by completion
//! verification against their own attestation quotes. Recovery is
//! deterministic — a reassigned job re-executes bit-identically from the
//! (fleet seed, job id) derivation — so the property tests can demand
//! the strongest contract there is: report, ledger, metering exposition
//! and **journal bytes** identical to the unfaulted run at 1, 2 and 8
//! workers, under any poison-free schedule.

use proptest::prelude::*;
use trustmeter::prelude::*;

const SCALE: f64 = 0.001;

/// Env knobs for the CI chaos step: `PROPTEST_CASES` scales the number
/// of random schedules per property, `CHAOS_SEED` shifts the whole
/// seed space so distinct CI matrix legs explore distinct schedules.
fn proptest_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
}

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Injected worker panics are expected noise here; silence exactly those
/// so test output stays readable, and forward everything else to the
/// default hook.
fn quiet_injected_panics() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !message.contains("injected worker fault") {
                previous(info);
            }
        }));
    });
}

/// A mixed batch: four tenants, all four workloads, clean runs and a mix
/// of launch-time and runtime attacks (the `tests/fleet.rs` batch).
fn batch(n: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let tenant = TenantId((i % 4) as u32 + 1);
            let workload = Workload::ALL[(i % 4) as usize];
            match i % 5 {
                0 => JobSpec::attacked(i, tenant, workload, SCALE, AttackSpec::Shell),
                1 => JobSpec::attacked(
                    i,
                    tenant,
                    workload,
                    SCALE,
                    AttackSpec::Scheduling { nice: -10 },
                ),
                _ => JobSpec::clean(i, tenant, workload, SCALE),
            }
        })
        .collect()
}

/// A service on seed 77 with the four test tenants registered.
fn service77(workers: usize, journal: Option<Journal>) -> FleetService {
    let mut service = FleetService::new(FleetConfig::new(workers, 77));
    for id in 1..=4u32 {
        service.register(Tenant::new(
            TenantId(id),
            format!("tenant-{id}"),
            RateCard::per_cpu_second(0.01),
        ));
    }
    match journal {
        Some(journal) => service.with_journal(journal),
        None => service,
    }
}

fn count_entries(entries: &[JournalEntry], label: &str) -> usize {
    entries.iter().filter(|e| e.label() == label).count()
}

fn run_ids(entries: &[JournalEntry]) -> Vec<JobId> {
    entries
        .iter()
        .filter_map(|e| match e {
            JournalEntry::Run(record) => Some(record.job.id),
            _ => None,
        })
        .collect()
}

/// Streams `jobs` through a journaled session with the given fault
/// schedule; returns the report, the metering exposition and the raw
/// journal bytes.
///
/// Waits for every job to finish executing before draining: release is
/// pull-driven (nothing journals a `Run` entry until `take_ready`), so
/// draining a fully-executed pipeline journals one run block followed by
/// the billing receipts — the same byte layout no matter how workers
/// interleaved, which is what lets the property demand byte identity.
fn stream_with_faults(
    jobs: &[JobSpec],
    workers: usize,
    faults: WorkerFaultSchedule,
) -> (FleetReport, String, String) {
    let journal = Journal::in_memory();
    let mut service = service77(workers, Some(journal.clone()));
    let config = IngestConfig::new(workers)
        .with_job_deadline(8)
        .with_supervisor(SupervisorPolicy::default().with_max_restarts(64))
        .with_worker_faults(faults);
    let stream = service.stream(config);
    for job in jobs {
        stream.submit(job.clone()).expect("queue sized for batch");
    }
    let mut spins = 0u64;
    while stream.stats().completed < jobs.len() as u64 {
        spins += 1;
        assert!(
            spins < 100_000_000,
            "pipeline wedged: {:?}",
            stream.health()
        );
        std::thread::yield_now();
    }
    let report = stream.finish();
    let metering = metering_exposition(&service.metrics_text());
    let bytes = journal.text().expect("in-memory journal reads back");
    (report, metering, bytes)
}

// ---------------------------------------------------------------------------
// Panic: reap, respawn, reassign — bit-identical finish
// ---------------------------------------------------------------------------

#[test]
fn panicking_worker_is_reaped_respawned_and_its_batch_reassigned() {
    quiet_injected_panics();
    let jobs = batch(12);
    let mut baseline = service77(4, None);
    let baseline_report = baseline.process(&jobs);
    let baseline_metering = metering_exposition(&baseline.metrics_text());

    let journal = Journal::in_memory();
    let mut service = service77(2, Some(journal.clone()));
    let config =
        IngestConfig::new(2).with_worker_faults(WorkerFaultSchedule::none().panic_on(JobId(3)));
    let mut stream = service.stream(config);
    for job in &jobs {
        stream.submit(job.clone()).expect("queue sized for batch");
    }
    let health = loop {
        let health = stream.health();
        if health.worker_restarts >= 1 {
            break health;
        }
        stream.pump();
        std::thread::yield_now();
    };
    assert!(health.reassigned >= 1, "the panicked batch was reclaimed");
    let report = stream.finish();

    // The panic never escaped, and nothing it touched leaked into the
    // output: the report, ledger and metering exposition are the
    // unfaulted run's, bit for bit.
    assert_eq!(report, baseline_report);
    assert_eq!(
        metering_exposition(&service.metrics_text()),
        baseline_metering
    );

    // The recovery is observable where operators look.
    let text = service.metrics_text();
    assert!(
        text.contains("fleet_worker_restarts_total 1"),
        "dump:\n{text}"
    );
    assert!(text.contains("fleet_poison_jobs_total 0"), "dump:\n{text}");

    // Released ⇒ journaled ⇒ executed exactly once: every job has
    // exactly one Run entry despite the reassignment.
    let (entries, tail) = journal.entries().unwrap();
    assert_eq!(tail, TailStatus::Clean);
    let mut ids = run_ids(&entries);
    ids.sort_unstable();
    assert_eq!(ids, (0..12).map(JobId).collect::<Vec<_>>());
}

// ---------------------------------------------------------------------------
// Hang: the virtual-tick watchdog, not wall clock
// ---------------------------------------------------------------------------

#[test]
fn hung_worker_trips_the_deadline_watchdog_deterministically() {
    let jobs = batch(8);
    let mut baseline = service77(4, None);
    let baseline_report = baseline.process(&jobs);

    let mut service = service77(2, None);
    // The hang spins far past any deadline the job could earn: grace 2
    // plus the job's own cost ticks. Detection is purely virtual-tick —
    // the hanging worker reaps *itself* the tick its deadline passes.
    let config = IngestConfig::new(2)
        .with_job_deadline(2)
        .with_worker_faults(WorkerFaultSchedule::none().hang_on(JobId(5), 100_000));
    let stream = service.stream(config);
    for job in &jobs {
        stream.submit(job.clone()).expect("queue sized for batch");
    }
    let report = stream.finish();
    assert_eq!(report, baseline_report);

    let text = service.metrics_text();
    assert!(
        text.contains("fleet_worker_restarts_total 1"),
        "dump:\n{text}"
    );
    assert!(
        text.contains("fleet_jobs_reassigned_total"),
        "dump:\n{text}"
    );
}

// ---------------------------------------------------------------------------
// Wrong result: completion verification catches the lying executor
// ---------------------------------------------------------------------------

#[test]
fn lying_executor_is_rejected_by_quote_verification_and_job_reexecuted() {
    let jobs = batch(8);
    let mut baseline = service77(4, None);
    let baseline_report = baseline.process(&jobs);
    let baseline_metering = metering_exposition(&baseline.metrics_text());

    let mut service = service77(2, None);
    let config = IngestConfig::new(2)
        .with_worker_faults(WorkerFaultSchedule::none().wrong_result_on(JobId(2)));
    let stream = service.stream(config);
    for job in &jobs {
        stream.submit(job.clone()).expect("queue sized for batch");
    }
    let report = stream.finish();

    // The corrupted record never released: the attestation quote's MAC
    // covers the honest usage, so the inflated bill failed verification,
    // the worker was reaped, and the honest re-execution released.
    assert_eq!(report, baseline_report);
    assert_eq!(
        metering_exposition(&service.metrics_text()),
        baseline_metering
    );
    let text = service.metrics_text();
    assert!(
        text.contains("fleet_worker_restarts_total 1"),
        "dump:\n{text}"
    );
}

// ---------------------------------------------------------------------------
// Poison: individually quarantined, journaled, fleet keeps flowing
// ---------------------------------------------------------------------------

#[test]
fn poison_job_is_retired_with_a_journaled_verdict_while_the_fleet_flows() {
    quiet_injected_panics();
    let jobs = batch(12);
    // The baseline is the same batch without the poison job: everything
    // else must bill and audit exactly as if the poison never existed.
    let poison = JobId(6);
    let healthy: Vec<JobSpec> = jobs.iter().filter(|j| j.id != poison).cloned().collect();
    let mut baseline = service77(4, None);
    let baseline_report = baseline.process(&healthy);

    let journal = Journal::in_memory();
    let mut service = service77(2, Some(journal.clone()));
    let config = IngestConfig::new(2)
        .with_supervisor(SupervisorPolicy::default().with_max_job_attempts(2))
        .with_worker_faults(WorkerFaultSchedule::none().poison_on(poison));
    let stream = service.stream(config);
    for job in &jobs {
        stream.submit(job.clone()).expect("queue sized for batch");
    }
    let report = stream.finish();

    // Tenant-visible verdict: the poison job is named, with its attempt
    // count; everything else completed and billed bit-identically.
    let poisoned = stream_poisoned_after_finish(&journal);
    assert_eq!(poisoned.len(), 1);
    assert_eq!(poisoned[0].spec.id, poison);
    assert_eq!(poisoned[0].attempts, 2);
    assert_eq!(report.records.len(), 11);
    assert_eq!(report, baseline_report);

    // The verdict is part of the evidence: a chained Poisoned entry in
    // release order, retiring its Accepted marker on replay.
    let (entries, tail) = journal.entries().unwrap();
    assert_eq!(tail, TailStatus::Clean);
    assert_eq!(count_entries(&entries, "poisoned"), 1);
    assert_eq!(count_entries(&entries, "accepted"), 12);
    assert_eq!(count_entries(&entries, "run"), 11);
    let mut recovered = service77(2, None);
    let recovery = recovered.recover(&entries).expect("replay the journal");
    assert!(recovery.is_consistent());
    assert_eq!(recovery.poisoned, 1);
    assert_eq!(recovery.runs_replayed, 11);
    assert!(
        recovery.unreleased.is_empty(),
        "the poison verdict resolves its accepted entry"
    );
    assert_eq!(recovered.ledger(), &baseline_report.ledger);

    // And it is visible where operators look.
    let text = service.metrics_text();
    assert!(text.contains("fleet_poison_jobs_total 1"), "dump:\n{text}");
    assert!(
        text.contains("fleet_worker_restarts_total 2"),
        "dump:\n{text}"
    );
}

/// Reads the released poison verdicts back out of the journal — the
/// stream was consumed by `finish`, and the journal is the authoritative
/// record anyway.
fn stream_poisoned_after_finish(journal: &Journal) -> Vec<PoisonNotice> {
    let (entries, _) = journal.entries().unwrap();
    entries
        .iter()
        .filter_map(|e| match e {
            JournalEntry::Poisoned(notice) => Some(notice.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn poison_verdict_is_queryable_on_the_ingest_outcome() {
    quiet_injected_panics();
    let poison = JobId(1);
    let config = IngestConfig::new(1)
        .with_supervisor(SupervisorPolicy::default().with_max_job_attempts(3))
        .with_worker_faults(WorkerFaultSchedule::none().poison_on(poison));
    let ingest = FleetIngest::start(FleetConfig::new(1, 77), config);
    for job in batch(4) {
        ingest.submit(job).expect("queue sized for batch");
    }
    let outcome = ingest.finish();
    assert_eq!(
        outcome.verdict(poison),
        Some(JobVerdict::Poisoned { attempts: 3 })
    );
    assert_eq!(outcome.verdict(JobId(0)), Some(JobVerdict::Completed));
    assert_eq!(outcome.verdict(JobId(99)), None);
    assert_eq!(outcome.poisoned.len(), 1);
    assert_eq!(outcome.records.len(), 3);
    assert_eq!(outcome.stats.poisoned, 1);
    assert_eq!(outcome.stats.worker_restarts, 3);
}

// ---------------------------------------------------------------------------
// Restart budget: degrade, die, revive
// ---------------------------------------------------------------------------

#[test]
fn spent_restart_budget_quarantines_the_dead_pool_and_scale_to_revives_it() {
    quiet_injected_panics();
    let config = IngestConfig::new(1)
        .with_supervisor(SupervisorPolicy::default().with_max_restarts(0))
        .with_worker_faults(WorkerFaultSchedule::none().panic_on(JobId(0)));
    let mut ingest = FleetIngest::start(FleetConfig::new(1, 77), config);
    for job in batch(3) {
        ingest.submit(job).expect("queue sized for batch");
    }
    // The only worker dies with a zero restart budget: the fleet is
    // workers-dead and quarantined, observably.
    let health = loop {
        let health = ingest.health();
        if health.workers_dead {
            break health;
        }
        std::thread::yield_now();
    };
    assert!(health.quarantined);
    assert_eq!(health.workers_live, 0);
    assert!(health
        .last_error
        .as_deref()
        .is_some_and(|e| e.contains("restart budget")));
    assert_eq!(
        ingest.submit(batch(4)[3].clone()),
        Err(SubmitError::Quarantined)
    );

    // A fresh pool revives the fleet; the panicked job's second attempt
    // is clean, so the full backlog drains.
    ingest.scale_to(1);
    let health = ingest.health();
    assert!(!health.workers_dead);
    assert!(!health.quarantined);
    let outcome = ingest.finish();
    assert_eq!(outcome.records.len(), 3);
    // The dead worker's whole in-flight batch reclaims: the panicked job
    // plus any unstarted batch-mates it had popped alongside it.
    assert!(outcome.stats.reassigned >= 1);
    assert!(outcome.poisoned.is_empty());
}

// ---------------------------------------------------------------------------
// Satellite: submit_all never journals an Accepted line for rejected jobs
// ---------------------------------------------------------------------------

#[test]
fn submit_all_journals_accepted_lines_only_for_the_admitted_prefix() {
    let jobs = batch(6);
    let journal = Journal::in_memory();
    // Capacity 4, Reject, paused: the first 4 jobs are admitted (and
    // journaled) as one slice; the queue is then exactly full, so the
    // remaining 2 are rejected — the exact mid-batch boundary.
    let config = IngestConfig::new(1)
        .with_capacity(4)
        .with_backpressure(BackpressurePolicy::Reject)
        .paused();
    let ingest = FleetIngest::over_journaled(
        Fleet::new(FleetConfig::new(1, 77)),
        config,
        Some(journal.clone()),
    );
    let err = ingest.submit_all(&jobs).expect_err("two jobs do not fit");
    assert_eq!(err.accepted, vec![0, 1, 2, 3]);
    assert_eq!(err.error, SubmitError::QueueFull);

    // The write-ahead Accepted group commit covers exactly the admitted
    // slice — a rejected job must never acquire a durable acceptance.
    let (entries, tail) = journal.entries().unwrap();
    assert_eq!(tail, TailStatus::Clean);
    assert_eq!(count_entries(&entries, "accepted"), 4);
    let accepted_ids: Vec<JobId> = entries.iter().filter_map(|e| e.job()).collect();
    assert_eq!(accepted_ids, (0..4).map(JobId).collect::<Vec<_>>());

    // The admitted prefix runs; recovery sees a fully resolved journal.
    ingest.resume();
    let outcome = ingest.finish();
    assert_eq!(outcome.records.len(), 4);
    assert_eq!(outcome.stats.rejected, 2);
    let (entries, _) = journal.entries().unwrap();
    assert_eq!(count_entries(&entries, "accepted"), 4);
    assert_eq!(count_entries(&entries, "run"), 4);
}

#[test]
fn submit_all_exactly_at_capacity_is_fully_admitted() {
    let jobs = batch(4);
    let journal = Journal::in_memory();
    let config = IngestConfig::new(1)
        .with_capacity(4)
        .with_backpressure(BackpressurePolicy::Reject)
        .paused();
    let ingest = FleetIngest::over_journaled(
        Fleet::new(FleetConfig::new(1, 77)),
        config,
        Some(journal.clone()),
    );
    let seqs = ingest.submit_all(&jobs).expect("batch exactly fits");
    assert_eq!(seqs, vec![0, 1, 2, 3]);
    let (entries, _) = journal.entries().unwrap();
    assert_eq!(count_entries(&entries, "accepted"), 4);
    ingest.resume();
    assert_eq!(ingest.finish().records.len(), 4);
}

// ---------------------------------------------------------------------------
// Property: random poison-free schedules leave no trace in any artifact
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases()))]

    /// Whatever a poison-free schedule injects — panics, hangs, slow
    /// workers, lying executors — at 1, 2 or 8 workers, the released
    /// report, the ledger, the metering exposition and the raw journal
    /// bytes are bit-identical to the unfaulted run, every job executes
    /// (and bills) exactly once, and no panic escapes the pool.
    #[test]
    fn random_worker_fault_schedules_leave_every_artifact_bit_identical(
        seed in 0u64..1_000_000,
        workers_idx in 0usize..3,
        n in 4u64..12,
    ) {
        quiet_injected_panics();
        let workers = [1usize, 2, 8][workers_idx];
        let jobs = batch(n);
        let schedule = WorkerFaultSchedule::random(seed ^ chaos_seed(), n);

        let (clean_report, clean_metering, clean_bytes) =
            stream_with_faults(&jobs, workers, WorkerFaultSchedule::none());
        let (report, metering, bytes) = stream_with_faults(&jobs, workers, schedule);

        prop_assert_eq!(&report, &clean_report);
        prop_assert_eq!(&metering, &clean_metering);
        prop_assert_eq!(&bytes, &clean_bytes);

        // Executed exactly once: one Run entry per job, despite any
        // reassignments and re-executions behind the scenes.
        let (entries, tail) = parse_journal(&bytes).map_err(|e| {
            TestCaseError::fail(format!("journal must parse back: {e}"))
        })?;
        prop_assert_eq!(tail, TailStatus::Clean);
        let mut ids = run_ids(&entries);
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..n).map(JobId).collect::<Vec<_>>());
    }
}
