//! The simulated victim programs.
//!
//! A [`VictimProgram`] turns a [`VictimSpec`] into the op stream the
//! simulated kernel executes: an optional memory-allocation phase, worker
//! threads (for the multi-threaded Brute program), and a main loop of
//! compute chunks interleaved with shared-library calls, hot-variable
//! accesses (the thrashing attack's breakpoint target) and working-set
//! touches (the exception-flooding attack's amplifier).

use trustmeter_kernel::{Op, OpOutcome, Program, ProgramCtx, SyscallOp};
use trustmeter_sim::{CpuFrequency, Cycles, Nanos};

/// Parameters describing one victim program.
#[derive(Debug, Clone, PartialEq)]
pub struct VictimSpec {
    /// Program name (the figure label: "O", "P", "W" or "B").
    pub name: &'static str,
    /// Total user-mode computation across the whole thread group, in CPU
    /// seconds at the paper machine's clock.
    pub user_secs: f64,
    /// Size of one compute chunk in microseconds (the granularity at which
    /// the program can be preempted between ops).
    pub chunk_us: f64,
    /// Shared-library calls: `(symbol, total calls)` over the whole run.
    pub libcalls: Vec<(String, u64)>,
    /// Address of the hot variable (thrashing-attack breakpoint target).
    pub watched_addr: u64,
    /// Total number of accesses to the hot variable.
    pub watched_accesses: u64,
    /// Number of threads (1 = single-threaded).
    pub threads: u32,
    /// Working-set size in pages, allocated at startup.
    pub memory_pages: u64,
    /// Total page touches over the run (spread across chunks).
    pub touch_pages_total: u64,
}

impl VictimSpec {
    /// Returns a copy with every linear quantity multiplied by `scale`.
    pub fn scaled(mut self, scale: f64) -> VictimSpec {
        self.user_secs *= scale;
        self.watched_accesses = (self.watched_accesses as f64 * scale).round() as u64;
        self.touch_pages_total = (self.touch_pages_total as f64 * scale).round() as u64;
        for (_, calls) in &mut self.libcalls {
            *calls = (*calls as f64 * scale).round() as u64;
        }
        self
    }

    /// The number of compute chunks the main thread executes.
    pub fn main_chunks(&self) -> u64 {
        let per_thread_secs = self.user_secs / self.threads as f64;
        ((per_thread_secs * 1e6 / self.chunk_us).round() as u64).max(1)
    }
}

/// Phase of the victim program's state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Alloc,
    SpawnThreads { spawned: u32 },
    Main { chunk: u64, sub: u8 },
    WaitThreads { reaped: u32 },
    Done,
}

/// The simulated victim program.
///
/// # Example
///
/// ```
/// use trustmeter_workloads::Workload;
/// use trustmeter_kernel::{Kernel, KernelConfig};
///
/// let mut kernel = Kernel::new(KernelConfig::paper_machine());
/// let pid = kernel.spawn_process(Workload::LoopO.build(0.001), 0);
/// let result = kernel.run();
/// assert!(result.process(pid).unwrap().ground_truth().total().as_u64() > 0);
/// ```
pub struct VictimProgram {
    spec: VictimSpec,
    phase: Phase,
    chunk_cycles: Cycles,
    chunks: u64,
    libcall_schedule: Vec<(String, u64)>,
    watched_per_chunk: u64,
    watched_remainder: u64,
    touches_per_chunk: u64,
}

impl VictimProgram {
    /// Creates the program from its spec (costs expressed at the paper
    /// machine's clock frequency).
    pub fn new(spec: VictimSpec) -> VictimProgram {
        VictimProgram::with_frequency(spec, CpuFrequency::E7200)
    }

    /// Creates the program with an explicit CPU frequency for cost
    /// conversion.
    pub fn with_frequency(spec: VictimSpec, freq: CpuFrequency) -> VictimProgram {
        let chunk_cycles = freq.cycles_for(Nanos::from_secs_f64(spec.chunk_us / 1e6));
        let chunks = spec.main_chunks();
        let libcall_schedule: Vec<(String, u64)> = spec
            .libcalls
            .iter()
            .map(|(sym, total)| {
                (
                    sym.clone(),
                    (*total / chunks).max(if *total > 0 { 1 } else { 0 }),
                )
            })
            .collect();
        let watched_per_chunk = spec.watched_accesses / chunks;
        let watched_remainder = spec.watched_accesses % chunks;
        let touches_per_chunk = spec.touch_pages_total / chunks;
        VictimProgram {
            phase: Phase::Alloc,

            chunk_cycles,
            chunks,
            libcall_schedule,
            watched_per_chunk,
            watched_remainder,
            touches_per_chunk,
            spec,
        }
    }

    /// The spec this program was built from.
    pub fn spec(&self) -> &VictimSpec {
        &self.spec
    }

    fn worker(&self) -> WorkerProgram {
        WorkerProgram {
            name: self.spec.name,
            chunks_left: self.chunks,
            chunk_cycles: self.chunk_cycles,
            libcalls: self.libcall_schedule.clone(),
            touches_per_chunk: self.touches_per_chunk,
            sub: 0,
        }
    }
}

impl Program for VictimProgram {
    fn name(&self) -> &str {
        self.spec.name
    }

    fn next_op(&mut self, _ctx: &mut ProgramCtx<'_>) -> Option<Op> {
        loop {
            match self.phase {
                Phase::Alloc => {
                    self.phase = Phase::SpawnThreads { spawned: 0 };
                    if self.spec.memory_pages > 0 {
                        return Some(Op::AllocMemory {
                            pages: self.spec.memory_pages,
                        });
                    }
                }
                Phase::SpawnThreads { spawned } => {
                    if spawned + 1 < self.spec.threads {
                        self.phase = Phase::SpawnThreads {
                            spawned: spawned + 1,
                        };
                        return Some(Op::Syscall(SyscallOp::SpawnThread {
                            thread: Box::new(self.worker()),
                        }));
                    }
                    self.phase = Phase::Main { chunk: 0, sub: 0 };
                }
                Phase::Main { chunk, sub } => {
                    if chunk >= self.chunks {
                        self.phase = Phase::WaitThreads { reaped: 0 };
                        continue;
                    }
                    match sub {
                        0 => {
                            self.phase = Phase::Main { chunk, sub: 1 };
                            return Some(Op::Compute {
                                cycles: self.chunk_cycles,
                            });
                        }
                        s if (s as usize) <= self.libcall_schedule.len() => {
                            self.phase = Phase::Main {
                                chunk,
                                sub: sub + 1,
                            };
                            let (symbol, calls) = &self.libcall_schedule[s as usize - 1];
                            if *calls > 0 {
                                return Some(Op::LibCall {
                                    symbol: symbol.clone(),
                                    calls: *calls,
                                });
                            }
                        }
                        s if s as usize == self.libcall_schedule.len() + 1 => {
                            self.phase = Phase::Main {
                                chunk,
                                sub: sub + 1,
                            };
                            let mut count = self.watched_per_chunk;
                            if chunk < self.watched_remainder {
                                count += 1;
                            }
                            if count > 0 {
                                return Some(Op::AccessWatched {
                                    addr: self.spec.watched_addr,
                                    count,
                                });
                            }
                        }
                        _ => {
                            self.phase = Phase::Main {
                                chunk: chunk + 1,
                                sub: 0,
                            };
                            if self.touches_per_chunk > 0 {
                                return Some(Op::TouchMemory {
                                    pages: self.touches_per_chunk,
                                });
                            }
                        }
                    }
                }
                Phase::WaitThreads { reaped } => {
                    if reaped + 1 < self.spec.threads {
                        self.phase = Phase::WaitThreads { reaped: reaped + 1 };
                        return Some(Op::Syscall(SyscallOp::Wait));
                    }
                    self.phase = Phase::Done;
                }
                Phase::Done => return None,
            }
        }
    }
}

/// A worker thread of a multi-threaded victim (Brute's searcher threads).
pub struct WorkerProgram {
    name: &'static str,
    chunks_left: u64,
    chunk_cycles: Cycles,
    libcalls: Vec<(String, u64)>,
    touches_per_chunk: u64,
    sub: u8,
}

impl Program for WorkerProgram {
    fn name(&self) -> &str {
        self.name
    }

    fn next_op(&mut self, _ctx: &mut ProgramCtx<'_>) -> Option<Op> {
        loop {
            if self.chunks_left == 0 {
                return None;
            }
            match self.sub {
                0 => {
                    self.sub = 1;
                    return Some(Op::Compute {
                        cycles: self.chunk_cycles,
                    });
                }
                s if (s as usize) <= self.libcalls.len() => {
                    self.sub += 1;
                    let (symbol, calls) = &self.libcalls[s as usize - 1];
                    if *calls > 0 {
                        return Some(Op::LibCall {
                            symbol: symbol.clone(),
                            calls: *calls,
                        });
                    }
                }
                _ => {
                    self.sub = 0;
                    self.chunks_left -= 1;
                    if self.touches_per_chunk > 0 {
                        return Some(Op::TouchMemory {
                            pages: self.touches_per_chunk,
                        });
                    }
                }
            }
        }
    }
}

/// A convenience program used by examples: computes π digits' cost as pure
/// compute, then exits. Unlike [`VictimProgram`] it takes an explicit amount
/// of work, which makes it handy for calibration tests.
pub struct FixedComputeProgram {
    name: String,
    remaining_chunks: u64,
    chunk: Cycles,
}

impl FixedComputeProgram {
    /// A program that computes for `secs` CPU seconds in 1 ms chunks.
    pub fn seconds(name: impl Into<String>, secs: f64, freq: CpuFrequency) -> FixedComputeProgram {
        let chunk = freq.cycles_for(Nanos::from_millis(1));
        let remaining_chunks = (secs * 1_000.0).round().max(1.0) as u64;
        FixedComputeProgram {
            name: name.into(),
            remaining_chunks,
            chunk,
        }
    }
}

impl Program for FixedComputeProgram {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_op(&mut self, ctx: &mut ProgramCtx<'_>) -> Option<Op> {
        let _ = &ctx.last;
        if self.remaining_chunks == 0 {
            return None;
        }
        self.remaining_chunks -= 1;
        Some(Op::Compute { cycles: self.chunk })
    }
}

/// Returns `true` if the outcome indicates a completed wait on a child.
pub fn is_child_event(outcome: OpOutcome) -> bool {
    matches!(
        outcome,
        OpOutcome::ChildExited(_) | OpOutcome::ChildStopped(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Workload;
    use trustmeter_core::SchemeKind;
    use trustmeter_kernel::{Kernel, KernelConfig};
    use trustmeter_sim::SimRng;

    fn drain_ops(program: &mut dyn Program, limit: usize) -> Vec<String> {
        let mut rng = SimRng::seed_from(3);
        let mut out = Vec::new();
        for _ in 0..limit {
            let mut ctx = ProgramCtx {
                pid: trustmeter_core::TaskId(1),
                last: OpOutcome::Completed,
                rng: &mut rng,
            };
            match program.next_op(&mut ctx) {
                Some(op) => out.push(format!("{op:?}")),
                None => break,
            }
        }
        out
    }

    #[test]
    fn spec_scaling_and_chunks() {
        let spec = Workload::Whetstone.spec(0.01);
        assert!(spec.main_chunks() >= 1);
        let spec2 = spec.clone().scaled(2.0);
        assert!((spec2.user_secs - spec.user_secs * 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_threaded_victim_emits_expected_op_mix() {
        let mut prog = VictimProgram::new(Workload::Pi.spec(0.001));
        let ops = drain_ops(&mut prog, 100_000);
        assert!(ops.iter().any(|o| o.contains("AllocMemory")));
        assert!(ops.iter().any(|o| o.contains("Compute")));
        assert!(ops.iter().any(|o| o.contains("LibCall(sqrt")));
        assert!(ops.iter().any(|o| o.contains("AccessWatched")));
        assert!(ops.iter().any(|o| o.contains("TouchMemory")));
        // Single-threaded: no clone/wait.
        assert!(!ops.iter().any(|o| o.contains("clone")));
    }

    #[test]
    fn brute_spawns_and_waits_for_threads() {
        let mut prog = VictimProgram::new(Workload::Brute.spec(0.0005));
        let ops = drain_ops(&mut prog, 500_000);
        let spawns = ops.iter().filter(|o| o.contains("clone")).count();
        let waits = ops.iter().filter(|o| o.contains("Syscall(wait)")).count();
        assert_eq!(spawns, 7); // 8 threads = leader + 7 spawned
        assert_eq!(waits, 7);
    }

    #[test]
    fn watched_access_total_matches_spec() {
        let spec = Workload::Whetstone.spec(0.01);
        let expected = spec.watched_accesses;
        let mut prog = VictimProgram::new(spec);
        let mut rng = SimRng::seed_from(3);
        let mut total = 0u64;
        loop {
            let mut ctx = ProgramCtx {
                pid: trustmeter_core::TaskId(1),
                last: OpOutcome::Completed,
                rng: &mut rng,
            };
            match prog.next_op(&mut ctx) {
                Some(Op::AccessWatched { count, .. }) => total += count,
                Some(_) => {}
                None => break,
            }
        }
        assert_eq!(total, expected);
    }

    #[test]
    fn victims_run_to_completion_in_the_kernel() {
        for w in Workload::ALL {
            let mut kernel = Kernel::new(KernelConfig::paper_machine());
            let pid = kernel.spawn_process(w.build(0.002), 0);
            let result = kernel.run();
            assert!(!result.hit_horizon, "{w} hit the horizon");
            let p = result.process(pid).unwrap();
            assert!(p.ground_truth().total().as_u64() > 0, "{w} consumed no CPU");
            // Billed and ground truth agree within a few percent when there
            // is no attack and no competing load.
            let billed = p.usage(SchemeKind::Tick).total().as_f64();
            let truth = p.usage(SchemeKind::Tsc).total().as_f64();
            let rel = (billed - truth).abs() / truth;
            assert!(rel < 0.1, "{w}: billed {billed} vs truth {truth}");
        }
    }

    #[test]
    fn brute_usage_covers_all_threads() {
        let mut kernel = Kernel::new(KernelConfig::paper_machine());
        let spec = Workload::Brute.spec(0.002);
        let expected_secs = spec.user_secs;
        let pid = kernel.spawn_process(Box::new(VictimProgram::new(spec)), 0);
        let result = kernel.run();
        let p = result.process(pid).unwrap();
        assert_eq!(p.threads, 8);
        let truth_secs = p.ground_truth().total_secs(result.frequency);
        assert!(
            truth_secs >= expected_secs * 0.9,
            "group usage {truth_secs} should cover ~{expected_secs}"
        );
    }

    #[test]
    fn fixed_compute_program_emits_requested_work() {
        let freq = CpuFrequency::E7200;
        let mut prog = FixedComputeProgram::seconds("calib", 0.01, freq);
        let ops = drain_ops(&mut prog, 1_000);
        assert_eq!(ops.len(), 10); // 10 chunks of 1 ms
    }

    #[test]
    fn child_event_helper() {
        assert!(is_child_event(OpOutcome::ChildExited(
            trustmeter_core::TaskId(3)
        )));
        assert!(is_child_event(OpOutcome::ChildStopped(
            trustmeter_core::TaskId(3)
        )));
        assert!(!is_child_event(OpOutcome::Completed));
    }
}
