//! `trustmeter-bench` — the fleet perf harness.
//!
//! Streams a fixed audited batch through a [`FleetService`] worker pool
//! three times — journaling **off**, write-ahead journaling to the legacy
//! flush-per-append **file** sink, and to the **segmented** group-commit
//! sink (rotation, fsync policy, inline checkpoint cadence) — and writes
//! a JSON report (`BENCH_fleet.json` by default) with wall clock,
//! jobs/sec, the auditor's replay counters and the journal
//! append/commit/rotation/fsync counters, so both the performance
//! trajectory of the audited streaming path *and* the cost of each
//! durability mode are tracked from run to run. A fourth **sealed** mode
//! runs the same segmented configuration with the evidence ledger on
//! (hash-chained lines, signed block headers on rotation), so the
//! chain+seal overhead vs plain group commit is tracked from run to run.
//! With `--faults` a fifth **faulted** mode repeats the sealed
//! configuration with the journal sink wrapped in a
//! [`FaultInjectingSink`] carrying an *empty* schedule and the ingest
//! [`RetryPolicy`] armed: no fault ever fires, so the delta vs `sealed`
//! is what the fault-tolerance plumbing (the wrapper indirection plus
//! the retry loop around every group commit) costs on the healthy path.
//! In segmented and sealed modes the harness additionally reopens the
//! segment directory and verifies that recovery reproduces the live
//! service's ledger and metering exposition bit for bit; in sealed mode
//! it also verifies every sealed block header cryptographically.
//!
//! ```text
//! trustmeter-bench [--smoke] [--faults] [--jobs N] [--workers N]
//!                  [--repeat N] [--out PATH] [--fsync never|every|group]
//!                  [--group-entries N] [--group-bytes N]
//!                  [--segment-bytes N] [--checkpoint-every N]
//! ```
//!
//! Modes are measured in interleaved rounds (off, file, segmented, off,
//! file, …) and the reported run per mode is the **median** by wall
//! clock, so slow-machine drift hits every mode evenly instead of
//! whichever ran last. Every mode additionally runs each round **with a
//! pipeline tracer attached**: the report carries per-stage latency
//! distributions (p50/p90/p99 for queue wait, execution, audit, journal
//! commit and post, from the `fleet_stage_seconds` histograms), the
//! tracer's self-accounted overhead, and the measured tracing-on vs
//! tracing-off wall-clock delta — the meter metering itself.
//!
//! `--smoke` shrinks the batch to a few jobs for CI: it proves the harness
//! (including all three durability modes and the recovery check) runs end
//! to end without spending CI minutes on a real measurement.

use std::time::Instant;

use serde::Serialize;
use trustmeter_fleet::{
    metering_exposition, AttackSpec, CheckpointCadence, FaultInjectingSink, FaultSchedule,
    FleetConfig, FleetService, FsyncPolicy, IngestConfig, JobSpec, Journal, JournalStats,
    PipelineTracer, RateCard, RetryPolicy, SamplingPolicy, SegmentConfig, SegmentedFileSink, Stage,
    Tenant, TenantId,
};
use trustmeter_workloads::Workload;

/// Workload scale for harness jobs (matches the criterion fleet bench).
const SCALE: f64 = 0.001;
/// Fleet seed (matches the criterion fleet bench).
const SEED: u64 = 0xf1ee7;

/// How one harness run persists its journal.
#[derive(Debug, Clone, Copy)]
enum JournalMode {
    /// In-memory ledgers only.
    Off,
    /// The PR-4 sink: one append-only file, flush per entry.
    LegacyFile,
    /// Segmented group-commit sink with an inline checkpoint cadence.
    /// `label` distinguishes the flush-only run (`segmented`, the same
    /// process-death durability level as the legacy file sink) from the
    /// fsync-policy run (`segmented-fsync`, power-loss durability — a
    /// level the legacy sink never offered).
    Segmented {
        label: &'static str,
        config: SegmentConfig,
        checkpoint_every: u64,
    },
    /// The sealed segmented configuration with the sink wrapped in a
    /// [`FaultInjectingSink`] carrying an **empty** schedule and the
    /// ingest retry policy armed (`--faults`). No fault ever fires —
    /// the delta vs `sealed` is the healthy-path cost of the
    /// fault-tolerance plumbing itself.
    Faulted {
        config: SegmentConfig,
        checkpoint_every: u64,
    },
}

impl JournalMode {
    fn label(&self) -> &'static str {
        match self {
            JournalMode::Off => "off",
            JournalMode::LegacyFile => "file",
            JournalMode::Segmented { label, .. } => label,
            JournalMode::Faulted { .. } => "faulted",
        }
    }

    /// The segment configuration to reopen for the post-run recovery
    /// check (`None` for the unsegmented modes).
    fn segment_config(&self) -> Option<SegmentConfig> {
        match self {
            JournalMode::Segmented { config, .. } | JournalMode::Faulted { config, .. } => {
                Some(*config)
            }
            _ => None,
        }
    }
}

/// One pipeline stage's latency distribution, read back from the traced
/// run's `fleet_stage_seconds` histogram.
#[derive(Debug, Clone, Serialize)]
struct StageLatency {
    /// Stage label (`queue_wait`, `execute`, `audit`, `journal_commit`,
    /// `post`).
    stage: &'static str,
    /// Observations recorded for the stage.
    count: u64,
    /// Estimated p50 latency in seconds (`null` with zero observations).
    p50_secs: Option<f64>,
    /// Estimated p90 latency in seconds.
    p90_secs: Option<f64>,
    /// Estimated p99 latency in seconds.
    p99_secs: Option<f64>,
}

/// What one harness run measured.
#[derive(Debug, Serialize)]
struct BenchReport {
    /// Harness identifier.
    bench: &'static str,
    /// Durability mode: `off`, `file` (legacy flush-per-append),
    /// `segmented` (group-commit pipeline), `sealed` (group commit plus
    /// the hash-chained, block-sealed evidence ledger), `faulted` (the
    /// sealed configuration behind a no-op fault wrapper with the retry
    /// policy armed, `--faults` only) or `segmented-fsync` (group
    /// commit under the configured fsync policy).
    journal: &'static str,
    /// Fsync policy of the segmented run (`null` otherwise).
    fsync: Option<FsyncPolicy>,
    /// Segment rotation threshold of the segmented run (0 otherwise).
    segment_bytes: u64,
    /// Inline checkpoint cadence of the segmented run, in posted runs
    /// (0 = disabled).
    checkpoint_every: u64,
    /// Jobs streamed through the service.
    jobs: u64,
    /// Worker threads in the ingest pool.
    workers: usize,
    /// Interleaved measurement rounds this mode ran; the reported numbers
    /// are the median round by wall clock.
    repeat: usize,
    /// Workload scale factor per job.
    scale: f64,
    /// Audit sampling policy the run used.
    sampling: SamplingPolicy,
    /// End-to-end wall clock of submit → pump → finish, in seconds.
    wall_secs: f64,
    /// Jobs per wall-clock second.
    jobs_per_sec: f64,
    /// Inline reference replays the auditor performed (serial cost).
    audit_replays: u64,
    /// Runs audited with a worker-precomputed reference (parallel cost).
    audit_reference_hits: u64,
    /// Runs the audit flagged with at least one anomaly.
    flagged_runs: u64,
    /// Journal entries appended (0 with journaling off).
    journal_appends: u64,
    /// Journal bytes appended (0 with journaling off).
    journal_bytes: u64,
    /// Batched journal commits (one sink write per batch).
    journal_group_commits: u64,
    /// Segment rotations.
    journal_rotations: u64,
    /// fsync calls issued by the sink.
    journal_fsyncs: u64,
    /// Segments retired as superseded by a checkpoint.
    journal_segments_retired: u64,
    /// Signed block headers sealed over rotated segments (0 outside
    /// sealed mode).
    journal_seals: u64,
    /// Sealed block headers that verified cryptographically when the
    /// journal was reopened (0 outside sealed mode).
    seals_verified: u64,
    /// Whether a post-run recovery from the journal reproduced the live
    /// ledger and metering exposition bit for bit (segmented, sealed and
    /// faulted modes only; `false` means the check did not run).
    recovery_bit_identical: bool,
    /// End-to-end wall clock of the median tracing-**on** round, in
    /// seconds (`wall_secs` is the tracing-off median — both run in every
    /// interleaved round).
    traced_wall_secs: f64,
    /// Measured cost of observing: traced vs untraced wall clock, in
    /// percent (positive = tracing slowed the run down).
    tracing_overhead_pct: f64,
    /// Spans the tracer recorded during the median traced round.
    observer_spans: u64,
    /// Time spent inside the observability layer itself during the median
    /// traced round, in seconds (the self-accounted share of the
    /// overhead).
    observer_overhead_secs: f64,
    /// Per-stage latency distributions from the median traced round.
    stages: Vec<StageLatency>,
}

fn batch(n: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let tenant = TenantId((i % 4) as u32 + 1);
            let workload = Workload::ALL[(i % 4) as usize];
            if i % 4 == 0 {
                JobSpec::attacked(i, tenant, workload, SCALE, AttackSpec::Shell)
            } else {
                JobSpec::clean(i, tenant, workload, SCALE)
            }
        })
        .collect()
}

fn build_service(workers: usize) -> FleetService {
    let mut service = FleetService::new(FleetConfig::new(workers, SEED));
    for id in 1..=4u32 {
        service.register(Tenant::new(
            TenantId(id),
            format!("t{id}"),
            RateCard::per_cpu_hour(0.10),
        ));
    }
    service
}

fn run(jobs: u64, workers: usize, mode: JournalMode, traced: bool) -> BenchReport {
    // Per-mode scratch space under the temp dir, cleaned up at the end.
    let scratch = std::env::temp_dir().join(format!(
        "trustmeter-bench-{}-{}",
        mode.label(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create bench scratch dir");

    let mut service = build_service(workers);
    let tracer = traced.then(|| {
        // Up to five spans per job (queue wait, execute, audit, commit,
        // post); size the ring so a full run fits without evictions.
        PipelineTracer::new((jobs as usize * 8).max(64), SEED)
    });
    if let Some(tracer) = &tracer {
        service = service.with_tracer(tracer.clone());
    }
    let (fsync, segment_bytes, checkpoint_every, retry) = match mode {
        JournalMode::Off => (None, 0, 0, None),
        JournalMode::LegacyFile => {
            let journal = Journal::file(scratch.join("journal.jsonl")).expect("open bench journal");
            service = service.with_journal(journal);
            (None, 0, 0, None)
        }
        JournalMode::Segmented {
            config,
            checkpoint_every,
            ..
        } => {
            let journal =
                Journal::segmented(scratch.join("segments"), config).expect("open bench segments");
            service = service.with_journal(journal);
            if checkpoint_every > 0 {
                service = service
                    .with_checkpoint_cadence(CheckpointCadence::every_n_runs(checkpoint_every));
            }
            (
                Some(config.fsync),
                config.segment_bytes,
                checkpoint_every,
                None,
            )
        }
        JournalMode::Faulted {
            config,
            checkpoint_every,
        } => {
            // Same on-disk layout as the sealed mode, but every write
            // funnels through the fault wrapper (with nothing scheduled)
            // and every group commit runs inside the retry loop.
            let sink =
                SegmentedFileSink::open(scratch.join("segments"), config).expect("open segments");
            let (sink, _probe) = FaultInjectingSink::wrap(Box::new(sink), FaultSchedule::none());
            let journal = Journal::with_sink(Box::new(sink)).expect("wrap bench sink");
            service = service.with_journal(journal);
            if checkpoint_every > 0 {
                service = service
                    .with_checkpoint_cadence(CheckpointCadence::every_n_runs(checkpoint_every));
            }
            (
                Some(config.fsync),
                config.segment_bytes,
                checkpoint_every,
                Some(RetryPolicy::default()),
            )
        }
    };

    let specs = batch(jobs);
    let start = Instant::now();
    let mut ingest = IngestConfig::new(workers).with_capacity(specs.len());
    if let Some(policy) = retry {
        ingest = ingest.with_retry_policy(policy);
    }
    let mut stream = service.stream(ingest);
    for spec in &specs {
        stream.submit(spec.clone()).expect("queue sized for batch");
        stream.pump();
    }
    // Keep pumping while the workers drain, like a live consumer would:
    // journal group commits then overlap with execution instead of
    // piling into a serial tail after the last job completes.
    while stream.verdicts().len() < jobs as usize {
        stream.pump();
        std::thread::yield_now();
    }
    let report = stream.finish();
    let wall_secs = start.elapsed().as_secs_f64();
    assert_eq!(report.records.len() as u64, jobs, "every job completed");
    let flagged_runs = report.flagged().count() as u64;
    let journal_stats = service.journal().map(|j| j.stats()).unwrap_or_default();

    // Segmented/sealed/faulted modes close the loop: reopen the
    // (rotated, retired) segment directory with the mode's own config and prove
    // recovery is bit-identical to the live service — neither the
    // group-commit pipeline nor the evidence ledger may cost correctness.
    // Sealed mode additionally verifies every sealed block header.
    let mut seals_verified = 0;
    let recovery_bit_identical = if let Some(config) = mode.segment_config() {
        let reopened =
            Journal::segmented(scratch.join("segments"), config).expect("reopen bench segments");
        let (entries, _tail) = reopened.entries().expect("parse bench journal");
        let mut recovered = build_service(workers);
        recovered
            .recover_latest(&entries)
            .expect("recover bench journal");
        assert_eq!(
            recovered.ledger(),
            service.ledger(),
            "recovered ledger == live ledger"
        );
        assert_eq!(
            metering_exposition(&recovered.metrics_text()),
            metering_exposition(&service.metrics_text()),
            "recovered metering exposition == live exposition"
        );
        if config.seal.is_some() {
            let verification = reopened.verify(SEED).expect("verify sealed bench journal");
            seals_verified = verification.seals_verified;
        }
        true
    } else {
        false
    };
    let _ = std::fs::remove_dir_all(&scratch);

    // Read the per-stage distributions back from the traced run's
    // histograms (zero observations — e.g. journal_commit with journaling
    // off — report `null` quantiles).
    let metrics = service.metrics();
    let stages = Stage::ALL
        .iter()
        .map(|stage| {
            let labels = [("stage", stage.label())];
            StageLatency {
                stage: stage.label(),
                count: metrics
                    .histogram_count("fleet_stage_seconds", &labels)
                    .unwrap_or(0),
                p50_secs: metrics.histogram_quantile("fleet_stage_seconds", &labels, 0.5),
                p90_secs: metrics.histogram_quantile("fleet_stage_seconds", &labels, 0.9),
                p99_secs: metrics.histogram_quantile("fleet_stage_seconds", &labels, 0.99),
            }
        })
        .collect();
    let observer = tracer.as_ref().map(|t| t.stats()).unwrap_or_default();

    let sampling = service.auditor().sampling();
    BenchReport {
        bench: "fleet_stream_audited",
        journal: mode.label(),
        fsync,
        segment_bytes,
        checkpoint_every,
        jobs,
        workers,
        repeat: 1,
        scale: SCALE,
        sampling,
        wall_secs,
        jobs_per_sec: jobs as f64 / wall_secs.max(f64::EPSILON),
        audit_replays: service.auditor().replay_count(),
        audit_reference_hits: service.auditor().reference_hit_count(),
        flagged_runs,
        journal_appends: journal_stats.appends,
        journal_bytes: journal_stats.bytes,
        journal_group_commits: journal_stats.group_commits,
        journal_rotations: journal_stats.rotations,
        journal_fsyncs: journal_stats.fsyncs,
        journal_segments_retired: journal_stats.segments_retired,
        journal_seals: journal_stats.seals,
        seals_verified,
        recovery_bit_identical,
        traced_wall_secs: if traced { wall_secs } else { 0.0 },
        tracing_overhead_pct: 0.0,
        observer_spans: observer.spans_recorded,
        observer_overhead_secs: observer.overhead_nanos as f64 / 1e9,
        stages,
    }
}

/// Folds the median traced round into the median untraced report: the
/// headline `wall_secs` stays the tracing-off number, the traced round
/// contributes its wall clock (for the overhead delta), the observer
/// self-accounting and the per-stage distributions.
fn merge_traced(mut untraced: BenchReport, traced: BenchReport) -> BenchReport {
    untraced.traced_wall_secs = traced.wall_secs;
    untraced.tracing_overhead_pct =
        (traced.wall_secs / untraced.wall_secs.max(f64::EPSILON) - 1.0) * 100.0;
    untraced.observer_spans = traced.observer_spans;
    untraced.observer_overhead_secs = traced.observer_overhead_secs;
    untraced.stages = traced.stages;
    untraced
}

fn stats_line(stats: &JournalStats) -> String {
    format!(
        "{} appends / {} commits ({} bytes), {} rotations, {} fsyncs, {} retired, {} seals",
        stats.appends,
        stats.group_commits,
        stats.bytes,
        stats.rotations,
        stats.fsyncs,
        stats.segments_retired,
        stats.seals
    )
}

/// The median round by wall clock (`samples` must be non-empty).
fn median_by_wall(mut samples: Vec<BenchReport>) -> BenchReport {
    let repeat = samples.len();
    samples.sort_by(|a, b| a.wall_secs.total_cmp(&b.wall_secs));
    let mut report = samples.swap_remove(repeat / 2);
    report.repeat = repeat;
    report
}

fn main() {
    // 192 jobs: enough post-checkpoint volume (the cadence fires at run
    // 100) that at least one sealed segment outlives retirement, so the
    // reopen-and-verify step always has a sealed block to check.
    let mut jobs: u64 = 192;
    let mut workers: usize = 4;
    let mut repeat: usize = 5;
    let mut faults = false;
    let mut out = String::from("BENCH_fleet.json");
    let mut fsync = FsyncPolicy::GroupCommit {
        max_entries: 64,
        max_bytes: 256 * 1024,
    };
    let mut group_entries: u64 = 64;
    let mut group_bytes: u64 = 256 * 1024;
    let mut segment_bytes: u64 = 128 * 1024;
    let mut checkpoint_every: u64 = 100;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                jobs = 8;
                workers = 2;
                segment_bytes = 4 * 1024;
                checkpoint_every = 4;
            }
            "--faults" => {
                faults = true;
            }
            "--jobs" => {
                let value = args.next().expect("--jobs requires a value");
                jobs = value.parse().expect("--jobs takes an integer");
            }
            "--workers" => {
                let value = args.next().expect("--workers requires a value");
                workers = value.parse().expect("--workers takes an integer");
                assert!(workers > 0, "--workers must be positive");
            }
            "--repeat" => {
                let value = args.next().expect("--repeat requires a value");
                repeat = value.parse().expect("--repeat takes an integer");
                assert!(repeat > 0, "--repeat must be positive");
            }
            "--out" => {
                out = args.next().expect("--out requires a path");
            }
            "--fsync" => {
                let value = args.next().expect("--fsync requires a value");
                fsync = match value.as_str() {
                    "never" => FsyncPolicy::Never,
                    "every" => FsyncPolicy::EveryAppend,
                    "group" => FsyncPolicy::GroupCommit {
                        max_entries: group_entries,
                        max_bytes: group_bytes,
                    },
                    other => panic!("--fsync takes never|every|group, got `{other}`"),
                };
            }
            "--group-entries" => {
                let value = args.next().expect("--group-entries requires a value");
                group_entries = value.parse().expect("--group-entries takes an integer");
            }
            "--group-bytes" => {
                let value = args.next().expect("--group-bytes requires a value");
                group_bytes = value.parse().expect("--group-bytes takes an integer");
            }
            "--segment-bytes" => {
                let value = args.next().expect("--segment-bytes requires a value");
                segment_bytes = value.parse().expect("--segment-bytes takes an integer");
                assert!(segment_bytes > 0, "--segment-bytes must be positive");
            }
            "--checkpoint-every" => {
                let value = args.next().expect("--checkpoint-every requires a value");
                checkpoint_every = value.parse().expect("--checkpoint-every takes an integer");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: trustmeter-bench [--smoke] [--faults] [--jobs N] [--workers N] \
                     [--repeat N] [--out PATH] [--fsync never|every|group] [--group-entries N] \
                     [--group-bytes N] [--segment-bytes N] [--checkpoint-every N]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(jobs > 0, "--jobs must be positive");
    // Re-resolve group-commit knobs in case --group-* came after --fsync.
    if let FsyncPolicy::GroupCommit { .. } = fsync {
        fsync = FsyncPolicy::GroupCommit {
            max_entries: group_entries,
            max_bytes: group_bytes,
        };
    }

    let segment_config = SegmentConfig::default()
        .with_segment_bytes(segment_bytes)
        .with_fsync(fsync);
    let mut modes = vec![
        JournalMode::Off,
        JournalMode::LegacyFile,
        // Same durability level as the legacy file sink (flush to the OS,
        // no fsync): the apples-to-apples group-commit comparison.
        JournalMode::Segmented {
            label: "segmented",
            config: segment_config.with_fsync(FsyncPolicy::Never),
            checkpoint_every,
        },
        // The segmented configuration with the evidence ledger on: every
        // line hash-chained, every rotated segment sealed under a signed
        // block header. The delta vs `segmented` is the chain+seal cost.
        JournalMode::Segmented {
            label: "sealed",
            config: segment_config
                .with_fsync(FsyncPolicy::Never)
                .with_seal(SEED),
            checkpoint_every,
        },
    ];
    // The sealed configuration behind a faultless fault wrapper with the
    // default retry policy armed: the delta vs `sealed` is the
    // healthy-path price of the fault-tolerance machinery itself.
    if faults {
        modes.push(JournalMode::Faulted {
            config: segment_config
                .with_fsync(FsyncPolicy::Never)
                .with_seal(SEED),
            checkpoint_every,
        });
    }
    // The configured fsync policy on top: what power-loss durability
    // costs over journal-off. With `--fsync never` this would duplicate
    // the mode above under a misleading label, so it is skipped.
    if !matches!(fsync, FsyncPolicy::Never) {
        modes.push(JournalMode::Segmented {
            label: "segmented-fsync",
            config: segment_config,
            checkpoint_every,
        });
    }
    let mut untraced_samples: Vec<Vec<BenchReport>> = modes.iter().map(|_| Vec::new()).collect();
    let mut traced_samples: Vec<Vec<BenchReport>> = modes.iter().map(|_| Vec::new()).collect();
    for round in 0..repeat {
        // Rotate the starting mode each round so slow-machine drift
        // (thermal throttling, background load) hits every mode in every
        // position instead of always penalizing whichever runs last.
        for offset in 0..modes.len() {
            let at = (round + offset) % modes.len();
            // Interleave tracing-on and tracing-off within the round,
            // alternating which goes first, so the overhead delta is not
            // confounded by drift either.
            if round % 2 == 0 {
                untraced_samples[at].push(run(jobs, workers, modes[at], false));
                traced_samples[at].push(run(jobs, workers, modes[at], true));
            } else {
                traced_samples[at].push(run(jobs, workers, modes[at], true));
                untraced_samples[at].push(run(jobs, workers, modes[at], false));
            }
        }
    }
    let reports: Vec<BenchReport> = untraced_samples
        .into_iter()
        .zip(traced_samples)
        .map(|(untraced, traced)| merge_traced(median_by_wall(untraced), median_by_wall(traced)))
        .collect();

    let json = serde_json::to_string_pretty(&reports).expect("serialize report");
    std::fs::write(&out, format!("{json}\n")).expect("write report file");
    for report in &reports {
        println!(
            "journal={}: {} jobs / {} workers: {:.3} s wall, {:.1} jobs/s, \
             {} replays, {} reference hits, {}",
            report.journal,
            report.jobs,
            report.workers,
            report.wall_secs,
            report.jobs_per_sec,
            report.audit_replays,
            report.audit_reference_hits,
            stats_line(&JournalStats {
                appends: report.journal_appends,
                bytes: report.journal_bytes,
                group_commits: report.journal_group_commits,
                rotations: report.journal_rotations,
                fsyncs: report.journal_fsyncs,
                segments_retired: report.journal_segments_retired,
                seals: report.journal_seals,
            }),
        );
        let quantiles: Vec<String> = report
            .stages
            .iter()
            .filter(|s| s.count > 0)
            .map(|s| {
                format!(
                    "{} p50={:.0}µs p99={:.0}µs",
                    s.stage,
                    s.p50_secs.unwrap_or(0.0) * 1e6,
                    s.p99_secs.unwrap_or(0.0) * 1e6
                )
            })
            .collect();
        println!(
            "  tracing: {:+.1}% wall ({} spans, {:.1} ms observer overhead); {}",
            report.tracing_overhead_pct,
            report.observer_spans,
            report.observer_overhead_secs * 1e3,
            quantiles.join(", "),
        );
    }
    let baseline = reports[0].wall_secs.max(f64::EPSILON);
    for report in &reports[1..] {
        println!(
            "journal={} overhead: {:+.1}% wall clock{}",
            report.journal,
            (report.wall_secs / baseline - 1.0) * 100.0,
            if report.recovery_bit_identical {
                " (recovery verified bit-identical)"
            } else {
                ""
            }
        );
    }
    println!("→ {out}");
}
