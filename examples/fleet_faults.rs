//! Surviving the disk: fault injection, quarantine, failover, recovery.
//!
//! The demo drives the whole graceful-degradation story with a
//! deterministic fault schedule:
//!
//! 1. a [`FleetService`] streams a 3-tenant batch through a journal whose
//!    sink is wrapped in a [`FaultInjectingSink`]: a transient `EIO`
//!    burst early (absorbed by the [`RetryPolicy`], invisible except in
//!    `fleet_journal_retries_total`), then a full disk mid-stream;
//! 2. the disk-full exhausts the retry budget and **quarantines** the
//!    pipeline: releases stop (never journaled ⇒ never billed), `submit`
//!    fails fast with [`SubmitError::Quarantined`], and the condition is
//!    visible in [`FleetStream::health`] and the `fleet_quarantined` /
//!    `fleet_journal_failures_total` series;
//! 3. the operator fails over to a fresh sink with
//!    [`FleetStream::resume_with_sink`]: a leading checkpoint anchors the
//!    evidence chain, the accepted backlog is re-journaled, the stalled
//!    ready prefix drains, and the stream finishes normally;
//! 4. the finished report is **bit-identical** to a clean, unfaulted run
//!    of the same batch — and so is a fresh service recovered from the
//!    replacement sink alone, metering exposition byte for byte.
//!
//! ```text
//! cargo run --release --example fleet_faults
//! ```

use trustmeter::prelude::*;

const SCALE: f64 = 0.002;
const JOBS: u64 = 18;
const SEED: u64 = 0xFA17;

fn jobs() -> Vec<JobSpec> {
    (0..JOBS)
        .map(|id| {
            let tenant = TenantId((id % 3) as u32 + 1);
            let workload = Workload::ALL[(id % 4) as usize];
            if tenant.0 == 2 {
                JobSpec::attacked(id, tenant, workload, SCALE, AttackSpec::Shell)
            } else {
                JobSpec::clean(id, tenant, workload, SCALE)
            }
        })
        .collect()
}

fn build_service(journal: Option<Journal>) -> FleetService {
    let mut service = FleetService::new(FleetConfig::new(4, SEED));
    for (id, name) in [(1, "acme"), (2, "shelled-inc"), (3, "initech")] {
        service.register(Tenant::new(
            TenantId(id),
            name,
            RateCard::per_cpu_hour(0.10),
        ));
    }
    match journal {
        Some(journal) => service.with_journal(journal),
        None => service,
    }
}

fn main() {
    // Ground truth: the same batch on an unfaulted service.
    let mut clean = build_service(None);
    let clean_report = clean.process(&jobs());
    let clean_metering = metering_exposition(&clean.metrics_text());

    // ---- 1. A journal on a disk that is about to go bad ----------------
    // Submission journals one Accepted line per job (lines 0..18). The
    // schedule injects a 2-attempt transient EIO burst inside that prefix,
    // then a full disk at line 18 — the first *Run* group commit.
    let schedule = FaultSchedule::none().transient_at(7, 2).disk_full_at(JOBS);
    let (sink, probe) = FaultInjectingSink::wrap(Box::new(MemorySink::new()), schedule);
    let journal = Journal::with_sink(Box::new(sink)).expect("fresh sink opens");
    let mut service = build_service(Some(journal.clone()));
    let retry = RetryPolicy::new(4).with_base_ticks(1);
    let mut stream = service.stream(IngestConfig::new(4).with_retry_policy(retry));

    for job in jobs() {
        stream
            .submit(job)
            .expect("accepted lines precede the fault");
    }
    println!(
        "submitted {JOBS} jobs; the retry policy absorbed {} transient fault(s) silently",
        probe.stats().injected_transient
    );

    // ---- 2. The disk fills; the pipeline quarantines --------------------
    while !stream.health().quarantined {
        stream.pump();
        std::thread::yield_now();
    }
    let health = stream.health();
    println!(
        "*** quarantined: {} (after {} retries; {} records parked, {} accepted pending)",
        health.last_error.as_deref().unwrap_or("?"),
        health.retries,
        health.stalled,
        health.pending_accepted,
    );
    assert!(matches!(
        stream.submit(JobSpec::clean(99, TenantId(1), Workload::LoopO, SCALE)),
        Err(SubmitError::Quarantined)
    ));
    assert_eq!(stream.pump(), 0, "releases are stopped");
    assert!(probe.is_dead(), "the injected disk-full is terminal");

    // ---- 3. Failover to a fresh sink ------------------------------------
    stream
        .resume_with_sink(Box::new(MemorySink::new()))
        .expect("fresh sink accepts the failover");
    println!(
        "failed over to a fresh sink: quarantined={}, drained the stalled prefix",
        stream.health().quarantined
    );

    // ---- 4. Finish and compare against the clean run --------------------
    let report = stream.finish();
    assert_eq!(
        report, clean_report,
        "faulted run == clean run, bit for bit"
    );
    let text = service.metrics_text();
    assert_eq!(metering_exposition(&text), clean_metering);
    assert!(text.contains("fleet_quarantined 0"));
    assert!(text.contains("fleet_journal_failures_total 1"));
    println!(
        "finished: {} records, ledger and metering exposition identical to the clean run",
        report.records.len()
    );

    // The replacement sink replays standalone: leading checkpoint, the
    // re-journaled accepted backlog, the drained runs and receipts.
    let (entries, tail) = journal.entries().expect("replacement sink parses");
    assert_eq!(tail, TailStatus::Clean);
    assert_eq!(entries[0].label(), "checkpoint");
    let mut recovered = build_service(None);
    let recovery = recovered
        .recover_latest(&entries)
        .expect("failover sink replays standalone");
    assert!(recovery.is_consistent(), "no receipt was tampered with");
    assert!(
        recovery.unreleased.is_empty(),
        "every accepted job released"
    );
    assert_eq!(recovered.ledger(), &clean_report.ledger);
    assert_eq!(
        metering_exposition(&recovered.metrics_text()),
        clean_metering,
        "recovered metering exposition == clean exposition, byte for byte"
    );
    println!(
        "recovered a fresh service from the replacement sink alone: {} runs replayed, \
         {} accepted entries, state bit-identical to the clean run",
        recovery.runs_replayed, recovery.accepted
    );
    for account in recovered.ledger().iter() {
        println!("  {account}");
    }
}
