//! The program model: what simulated processes execute.
//!
//! A [`Program`] is a state machine that, each time the kernel asks, yields
//! the next [`Op`] it wants to perform: user-mode computation, a library
//! call, memory accesses, or a system call. The kernel lowers each op into
//! user/kernel/exception time and side effects, drives the metering schemes
//! with the resulting events, and feeds back an [`OpOutcome`] that the
//! program can use to make decisions (e.g. a ptrace tracer reacting to its
//! tracee stopping).

use crate::signals::Signal;
use std::fmt;
use trustmeter_core::TaskId;
use trustmeter_sim::{Cycles, Nanos, SimRng};

/// A system-call request issued by a program.
pub enum SyscallOp {
    /// Create a child process running `child`.
    Fork {
        /// The program the child will run.
        child: Box<dyn Program>,
        /// Nice value for the child (inherited behaviour is expressed by
        /// passing the parent's nice).
        nice: i8,
    },
    /// Create a thread in the caller's thread group running `thread`.
    SpawnThread {
        /// The program the new thread will run.
        thread: Box<dyn Program>,
    },
    /// Wait for any child to exit or (for traced children) stop.
    Wait,
    /// Terminate the calling task.
    Exit {
        /// Exit status.
        code: i32,
    },
    /// Sleep for the given duration.
    Nanosleep {
        /// How long to sleep.
        duration: Nanos,
    },
    /// Synchronous disk read of `bytes` bytes (blocks until the disk
    /// completes and raises an interrupt owned by the caller).
    Read {
        /// Number of bytes to read.
        bytes: u64,
    },
    /// Synchronous disk write.
    Write {
        /// Number of bytes to write.
        bytes: u64,
    },
    /// Load a shared library at runtime (`dlopen`), running its
    /// constructor in the caller's context.
    Dlopen {
        /// Library name, resolved against the kernel's library registry.
        library: String,
    },
    /// Unload a shared library (`dlclose`), running its destructor.
    Dlclose {
        /// Library name.
        library: String,
    },
    /// Change the caller's nice value (requires privilege to decrease).
    SetNice {
        /// The new nice value.
        nice: i8,
    },
    /// Send a signal to another task.
    Kill {
        /// Target task.
        target: TaskId,
        /// Signal to deliver.
        signal: Signal,
    },
    /// Attach to `target` as a tracer (stops the target).
    PtraceAttach {
        /// The task to trace.
        target: TaskId,
    },
    /// Arm a hardware breakpoint (debug registers DR0/DR7) on an address in
    /// the target's address space.
    PtraceSetBreakpoint {
        /// The traced task.
        target: TaskId,
        /// The watched address.
        addr: u64,
    },
    /// Resume a stopped tracee.
    PtraceCont {
        /// The traced task.
        target: TaskId,
    },
    /// Detach from a tracee (resumes it).
    PtraceDetach {
        /// The traced task.
        target: TaskId,
    },
    /// Read the caller's own accumulated CPU usage (as reported by the
    /// kernel's commodity tick accounting — exactly what `getrusage`
    /// returns on Linux).
    Getrusage,
}

impl fmt::Debug for SyscallOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl SyscallOp {
    /// Short name of the syscall (for traces and stats).
    pub fn name(&self) -> &'static str {
        match self {
            SyscallOp::Fork { .. } => "fork",
            SyscallOp::SpawnThread { .. } => "clone",
            SyscallOp::Wait => "wait",
            SyscallOp::Exit { .. } => "exit",
            SyscallOp::Nanosleep { .. } => "nanosleep",
            SyscallOp::Read { .. } => "read",
            SyscallOp::Write { .. } => "write",
            SyscallOp::Dlopen { .. } => "dlopen",
            SyscallOp::Dlclose { .. } => "dlclose",
            SyscallOp::SetNice { .. } => "setpriority",
            SyscallOp::Kill { .. } => "kill",
            SyscallOp::PtraceAttach { .. } => "ptrace(ATTACH)",
            SyscallOp::PtraceSetBreakpoint { .. } => "ptrace(POKEUSER)",
            SyscallOp::PtraceCont { .. } => "ptrace(CONT)",
            SyscallOp::PtraceDetach { .. } => "ptrace(DETACH)",
            SyscallOp::Getrusage => "getrusage",
        }
    }
}

/// One unit of work a program asks the kernel to perform.
pub enum Op {
    /// Pure user-mode computation.
    Compute {
        /// How many cycles of computation.
        cycles: Cycles,
    },
    /// Call a shared-library function `calls` times. The per-call cost is
    /// resolved through the dynamic loader (and is inflated when the symbol
    /// is interposed by a malicious preload library).
    LibCall {
        /// Symbol name, e.g. `"malloc"` or `"sqrt"`.
        symbol: String,
        /// Number of consecutive calls.
        calls: u64,
    },
    /// Touch `pages` distinct data pages (may fault depending on memory
    /// pressure).
    TouchMemory {
        /// Number of page touches.
        pages: u64,
    },
    /// Access a watched variable `count` times. If a hardware breakpoint is
    /// armed on `addr` (execution-thrashing attack), every access raises a
    /// debug exception and stops the task; otherwise the accesses cost
    /// almost nothing.
    AccessWatched {
        /// The address of the variable.
        addr: u64,
        /// Number of accesses.
        count: u64,
    },
    /// Grow the task's memory footprint by `pages` pages (used by the
    /// memory-hog attacker).
    AllocMemory {
        /// Number of pages to allocate.
        pages: u64,
    },
    /// Record a control-flow label into the task's execution witness
    /// (costless; used for the execution-integrity property).
    Label {
        /// Basic-block label.
        block: &'static str,
    },
    /// Invoke a system call.
    Syscall(SyscallOp),
}

impl fmt::Debug for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Compute { cycles } => write!(f, "Compute({cycles})"),
            Op::LibCall { symbol, calls } => write!(f, "LibCall({symbol} x{calls})"),
            Op::TouchMemory { pages } => write!(f, "TouchMemory({pages} pages)"),
            Op::AccessWatched { addr, count } => write!(f, "AccessWatched(0x{addr:x} x{count})"),
            Op::AllocMemory { pages } => write!(f, "AllocMemory({pages} pages)"),
            Op::Label { block } => write!(f, "Label({block})"),
            Op::Syscall(s) => write!(f, "Syscall({})", s.name()),
        }
    }
}

impl Op {
    /// Convenience constructor for a user-mode computation of `us`
    /// microseconds at the given clock frequency.
    pub fn compute_us(freq: trustmeter_sim::CpuFrequency, us: f64) -> Op {
        Op::Compute {
            cycles: freq.cycles_for(Nanos::from_secs_f64(us / 1e6)),
        }
    }

    /// Convenience constructor for [`SyscallOp::Exit`].
    pub fn exit(code: i32) -> Op {
        Op::Syscall(SyscallOp::Exit { code })
    }
}

/// The result of the previously executed op, made available to the program
/// when it is asked for its next op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OpOutcome {
    /// No previous op (first call) .
    #[default]
    None,
    /// The previous op completed normally.
    Completed,
    /// `fork` created this child.
    ForkedChild(TaskId),
    /// `clone` created this thread.
    ThreadSpawned(TaskId),
    /// `wait` reaped this exited child.
    ChildExited(TaskId),
    /// `wait` observed this traced child stopping.
    ChildStopped(TaskId),
    /// `wait` found no children to wait for.
    NoChildren,
    /// `getrusage` result: user and system cycles as accounted by the
    /// kernel's own (tick-based) scheme.
    Rusage {
        /// User time in cycles.
        utime: Cycles,
        /// System time in cycles.
        stime: Cycles,
    },
    /// The previous syscall failed (e.g. ptrace on a dead task).
    Failed,
}

/// Context handed to a program when it is asked for its next op.
pub struct ProgramCtx<'a> {
    /// The task's own id.
    pub pid: TaskId,
    /// Outcome of the previously executed op.
    pub last: OpOutcome,
    /// Deterministic per-task random number generator.
    pub rng: &'a mut SimRng,
}

/// A simulated program: a generator of [`Op`]s.
///
/// Programs must be `Send` so whole scenarios can be farmed out to worker
/// threads by the experiment harness.
pub trait Program: Send {
    /// The program's name (used for reporting and per-name aggregation).
    fn name(&self) -> &str;

    /// Returns the next op to execute, or `None` when the program is done
    /// (equivalent to calling `exit(0)`).
    fn next_op(&mut self, ctx: &mut ProgramCtx<'_>) -> Option<Op>;
}

/// A program defined by a fixed list of ops (useful for tests and for
/// simple attackers).
///
/// # Example
///
/// ```
/// use trustmeter_kernel::{Op, OpsProgram, Program};
/// use trustmeter_sim::Cycles;
///
/// let prog = OpsProgram::new("three-steps", vec![
///     Op::Compute { cycles: Cycles(1_000) },
///     Op::Label { block: "middle" },
///     Op::Compute { cycles: Cycles(2_000) },
/// ]);
/// assert_eq!(prog.name(), "three-steps");
/// ```
pub struct OpsProgram {
    name: String,
    ops: std::collections::VecDeque<Op>,
}

impl OpsProgram {
    /// Creates a program that performs `ops` in order and then exits.
    pub fn new(name: impl Into<String>, ops: Vec<Op>) -> OpsProgram {
        OpsProgram {
            name: name.into(),
            ops: ops.into(),
        }
    }

    /// Creates a program that performs a single computation and exits.
    pub fn compute_only(name: impl Into<String>, cycles: Cycles) -> OpsProgram {
        OpsProgram::new(name, vec![Op::Compute { cycles }])
    }
}

impl Program for OpsProgram {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_op(&mut self, _ctx: &mut ProgramCtx<'_>) -> Option<Op> {
        self.ops.pop_front()
    }
}

/// A program that repeats a generator closure a fixed number of times.
///
/// Each iteration the closure receives the iteration index and returns the
/// ops for that iteration; iterations are flattened into the op stream.
pub struct LoopProgram<F> {
    name: String,
    iterations: u64,
    current: u64,
    buffered: std::collections::VecDeque<Op>,
    body: F,
}

impl<F> LoopProgram<F>
where
    F: FnMut(u64) -> Vec<Op> + Send,
{
    /// Creates a looping program running `body` for `iterations` rounds.
    pub fn new(name: impl Into<String>, iterations: u64, body: F) -> LoopProgram<F> {
        LoopProgram {
            name: name.into(),
            iterations,
            current: 0,
            buffered: std::collections::VecDeque::new(),
            body,
        }
    }
}

impl<F> Program for LoopProgram<F>
where
    F: FnMut(u64) -> Vec<Op> + Send,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn next_op(&mut self, _ctx: &mut ProgramCtx<'_>) -> Option<Op> {
        loop {
            if let Some(op) = self.buffered.pop_front() {
                return Some(op);
            }
            if self.current >= self.iterations {
                return None;
            }
            let ops = (self.body)(self.current);
            self.current += 1;
            self.buffered.extend(ops);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustmeter_sim::CpuFrequency;

    fn ctx_with<'a>(rng: &'a mut SimRng) -> ProgramCtx<'a> {
        ProgramCtx {
            pid: TaskId(1),
            last: OpOutcome::None,
            rng,
        }
    }

    #[test]
    fn ops_program_yields_in_order_then_ends() {
        let mut rng = SimRng::seed_from(1);
        let mut p = OpsProgram::new(
            "t",
            vec![Op::Compute { cycles: Cycles(1) }, Op::Label { block: "x" }],
        );
        let mut ctx = ctx_with(&mut rng);
        assert!(matches!(p.next_op(&mut ctx), Some(Op::Compute { .. })));
        assert!(matches!(p.next_op(&mut ctx), Some(Op::Label { .. })));
        assert!(p.next_op(&mut ctx).is_none());
        assert!(p.next_op(&mut ctx).is_none());
    }

    #[test]
    fn compute_only_constructor() {
        let mut rng = SimRng::seed_from(1);
        let mut p = OpsProgram::compute_only("c", Cycles(77));
        let mut ctx = ctx_with(&mut rng);
        match p.next_op(&mut ctx) {
            Some(Op::Compute { cycles }) => assert_eq!(cycles, Cycles(77)),
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn loop_program_flattens_iterations() {
        let mut rng = SimRng::seed_from(1);
        let mut p = LoopProgram::new("loop", 3, |i| {
            vec![
                Op::Compute {
                    cycles: Cycles(i + 1),
                },
                Op::Label { block: "iter" },
            ]
        });
        let mut ctx = ctx_with(&mut rng);
        let mut computes = Vec::new();
        while let Some(op) = p.next_op(&mut ctx) {
            if let Op::Compute { cycles } = op {
                computes.push(cycles.as_u64());
            }
        }
        assert_eq!(computes, vec![1, 2, 3]);
    }

    #[test]
    fn loop_program_with_empty_body_terminates() {
        let mut rng = SimRng::seed_from(1);
        let mut p = LoopProgram::new("empty", 5, |_| Vec::new());
        let mut ctx = ctx_with(&mut rng);
        assert!(p.next_op(&mut ctx).is_none());
    }

    #[test]
    fn op_debug_and_helpers() {
        let freq = CpuFrequency::from_mhz(1000);
        let op = Op::compute_us(freq, 2.0);
        match op {
            Op::Compute { cycles } => assert_eq!(cycles, Cycles(2_000)),
            _ => panic!("wrong op"),
        }
        assert!(format!("{:?}", Op::exit(0)).contains("exit"));
        assert!(format!(
            "{:?}",
            Op::LibCall {
                symbol: "malloc".into(),
                calls: 3
            }
        )
        .contains("malloc"));
        assert_eq!(SyscallOp::Wait.name(), "wait");
        assert_eq!(SyscallOp::Getrusage.name(), "getrusage");
    }

    #[test]
    fn outcome_default_is_none() {
        assert_eq!(OpOutcome::default(), OpOutcome::None);
    }
}
