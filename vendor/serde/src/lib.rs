//! Local stub of `serde` for an offline build environment.
//!
//! The real serde uses a visitor-based zero-copy architecture; this stub
//! replaces it with a simple [`Value`] tree: `Serialize` renders a type into
//! a `Value`, `Deserialize` rebuilds it from one. The vendored `serde_json`
//! crate prints and parses `Value`s as JSON text. The API surface is exactly
//! what this workspace needs — plain `#[derive(Serialize, Deserialize)]` on
//! non-generic structs and enums, with no `#[serde(...)]` attributes.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value: the common tree both traits speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Looks up a field in a map value, yielding `Null` when the key is
    /// absent or the value is not a map (so `Option` fields default to
    /// `None` instead of erroring).
    pub fn field_or_null(&self, name: &str) -> &Value {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// Interprets the value as a sequence of exactly `len` elements.
    pub fn as_seq(&self, len: usize) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) if items.len() == len => Ok(items),
            Value::Seq(items) => Err(Error::custom(format!(
                "expected a sequence of {len} elements, got {}",
                items.len()
            ))),
            other => Err(Error::custom(format!("expected a sequence, got {other:?}"))),
        }
    }
}

/// A (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error from a message.
    pub fn custom(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    other => Err(Error::custom(format!(
                        "expected an unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 {
                    Value::I64(n)
                } else {
                    Value::U64(n as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    other => Err(Error::custom(format!(
                        "expected an integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(Error::custom(format!(
                        "expected a number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected a bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected a string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// Borrowed strings serialize fine but cannot be rebuilt from an owned
/// value tree; the impl exists so derives on types with `&'static str`
/// fields compile (deserializing one errors at runtime, like the real
/// serde_json does for non-borrowable input).
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Err(Error::custom(format!(
            "cannot deserialize a borrowed str from an owned value ({v:?})"
        )))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected a one-char string, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected a sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_seq(N)?;
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom(format!("expected an array of {N} elements")))
    }
}

/// Renders a map key as the JSON object key, the way serde_json does:
/// strings stay strings, integers and unit enum variants stringify.
///
/// # Panics
/// Panics when the key serializes to a compound value (seq/map), which JSON
/// cannot represent as an object key — the real serde_json errors there too.
fn key_to_string(key: &Value) -> String {
    match key {
        Value::Str(s) => s.clone(),
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must be string-like, got {other:?}"),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    // Unit enum variants and strings deserialize from Str; integer keys were
    // stringified on the way out, so retry as a number.
    K::from_value(&Value::Str(key.to_string())).or_else(|e| {
        if let Ok(n) = key.parse::<u64>() {
            K::from_value(&Value::U64(n))
        } else if let Ok(n) = key.parse::<i64>() {
            K::from_value(&Value::I64(n))
        } else {
            Err(e)
        }
    })
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected a map, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = stringify!($idx); 1 })+;
                let items = v.as_seq(LEN)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip_distinguishes_null() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::U64(4)).unwrap(), Some(4));
        assert_eq!(Some("x".to_string()).to_value(), Value::Str("x".into()));
    }

    #[test]
    fn missing_map_field_reads_as_null() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.field_or_null("a"), &Value::U64(1));
        assert_eq!(v.field_or_null("b"), &Value::Null);
    }

    #[test]
    fn arrays_and_tuples_roundtrip() {
        let arr = [1u8, 2, 3];
        let back: [u8; 3] = Deserialize::from_value(&arr.to_value()).unwrap();
        assert_eq!(back, arr);
        let t = ("x".to_string(), 2u64, 1.5f64);
        let back: (String, u64, f64) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn signed_integers_choose_representation() {
        assert_eq!((-3i32).to_value(), Value::I64(-3));
        assert_eq!(3i32.to_value(), Value::U64(3));
        assert_eq!(i32::from_value(&Value::I64(-3)).unwrap(), -3);
    }
}
