//! Microbenchmarks of the simulation substrate: if these regress, every
//! figure regeneration gets slower.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use trustmeter_core::{
    MeterEvent, MeteringScheme, Mode, Sha256, TaskId, TickAccounting, TscAccounting,
};
use trustmeter_kernel::{Kernel, KernelConfig, OpsProgram};
use trustmeter_sim::{Cycles, EventQueue, SimRng};
use trustmeter_workloads::native::{md5, pi, whetstone};

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.sample_size(20);

    group.bench_function("event_queue_10k", |b| {
        b.iter_batched(
            || {
                let mut rng = SimRng::seed_from(1);
                (0..10_000u64)
                    .map(|_| Cycles(rng.next_u64() % 1_000_000))
                    .collect::<Vec<_>>()
            },
            |times| {
                let mut q = EventQueue::new();
                for (i, t) in times.iter().enumerate() {
                    q.schedule(*t, i);
                }
                let mut count = 0;
                while q.pop().is_some() {
                    count += 1;
                }
                count
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("sha256_64KiB", |b| {
        let data = vec![0xabu8; 64 * 1024];
        b.iter(|| Sha256::digest(&data))
    });

    group.bench_function("md5_brute_2_chars", |b| {
        let target = md5::digest(b"zz");
        b.iter(|| md5::brute_force(&target, 2))
    });

    group.bench_function("pi_spigot_100_digits", |b| {
        b.iter(|| pi::spigot_digits(100))
    });

    group.bench_function("whetstone_10_loops", |b| b.iter(|| whetstone::run(10)));

    group.bench_function("accounting_100k_ticks", |b| {
        b.iter(|| {
            let mut acct = TickAccounting::new(Cycles(1_000));
            let mut tsc = TscAccounting::new();
            for i in 0..100_000u64 {
                let ev = MeterEvent::TimerTick {
                    at: Cycles(i * 1_000),
                    task: Some(TaskId((i % 4) as u32 + 1)),
                    mode: if i % 3 == 0 { Mode::Kernel } else { Mode::User },
                };
                acct.on_event(&ev);
                tsc.on_event(&ev);
            }
            (acct.usages().len(), tsc.usages().len())
        })
    });

    group.bench_function("kernel_run_two_tasks_50ms_each", |b| {
        b.iter(|| {
            let cfg = KernelConfig::paper_machine();
            let work = cfg
                .frequency
                .cycles_for(trustmeter_sim::Nanos::from_millis(50));
            let mut k = Kernel::new(cfg);
            k.spawn_process(Box::new(OpsProgram::compute_only("a", work)), 0);
            k.spawn_process(Box::new(OpsProgram::compute_only("b", work)), -5);
            k.run().stats.ticks
        })
    });

    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
