//! Surviving the workers: executor fault injection, watchdog supervision,
//! deterministic reassignment and poison-job quarantine.
//!
//! The disk-fault demo (`fleet_faults`) killed the journal; this one kills
//! the *executors*. A seeded [`WorkerFaultSchedule`] drives the whole
//! supervision story:
//!
//! 1. a worker **panics** mid-batch: the unwind guard reaps it, the
//!    supervisor respawns a replacement, and the dead worker's in-flight
//!    batch is reassigned and re-executed — deterministically, because a
//!    job's seed derives from (fleet seed, job id), not from which worker
//!    runs it;
//! 2. a worker **hangs**: no wall clock is consulted — the virtual-tick
//!    deadline watchdog catches it the tick its per-job deadline passes,
//!    and the job is reassigned the same way;
//! 3. a worker **lies**, inflating the victim's bill: completion
//!    verification replays the attestation quote MAC over the claimed
//!    usage, rejects the record, reaps the liar, and re-executes honestly;
//! 4. the finished report, ledger and metering exposition are
//!    **bit-identical** to a clean run — every job ran (and billed)
//!    exactly once, per the journal;
//! 5. a **poison job** that kills every worker that touches it is retired
//!    after `max_job_attempts` with a journaled, chained `Poisoned`
//!    verdict — the rest of the fleet keeps flowing and bills exactly as
//!    if the poison had never been submitted;
//! 6. a pool that dies with its restart budget spent **quarantines**
//!    (fail-fast submits, `workers_dead` in health) until the operator
//!    revives it with `scale_to`.
//!
//! ```text
//! cargo run --release --example fleet_chaos
//! ```

use trustmeter::prelude::*;

const SCALE: f64 = 0.002;
const JOBS: u64 = 16;
const SEED: u64 = 0xC4A0;

fn jobs() -> Vec<JobSpec> {
    (0..JOBS)
        .map(|id| {
            let tenant = TenantId((id % 4) as u32 + 1);
            let workload = Workload::ALL[(id % 4) as usize];
            if tenant.0 == 2 {
                JobSpec::attacked(id, tenant, workload, SCALE, AttackSpec::Shell)
            } else {
                JobSpec::clean(id, tenant, workload, SCALE)
            }
        })
        .collect()
}

fn build_service(journal: Option<Journal>) -> FleetService {
    let mut service = FleetService::new(FleetConfig::new(4, SEED));
    for (id, name) in [
        (1, "acme"),
        (2, "shelled-inc"),
        (3, "initech"),
        (4, "hooli"),
    ] {
        service.register(Tenant::new(
            TenantId(id),
            name,
            RateCard::per_cpu_hour(0.10),
        ));
    }
    match journal {
        Some(journal) => service.with_journal(journal),
        None => service,
    }
}

/// Injected worker panics are the point of the demo; keep them off the
/// terminal and let anything unexpected through.
fn quiet_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let message = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !message.contains("injected worker fault") {
            previous(info);
        }
    }));
}

fn main() {
    quiet_injected_panics();

    // Ground truth: the same batch on an unfaulted service.
    let mut clean = build_service(None);
    let clean_report = clean.process(&jobs());
    let clean_metering = metering_exposition(&clean.metrics_text());

    // ---- 1-3. Panic, hang, lie — one schedule, one stream ---------------
    let schedule = WorkerFaultSchedule::none()
        .panic_on(JobId(3))
        .hang_on(JobId(7), 50_000)
        .wrong_result_on(JobId(11));
    let journal = Journal::in_memory();
    let mut service = build_service(Some(journal.clone()));
    let config = IngestConfig::new(2)
        .with_job_deadline(4)
        .with_worker_faults(schedule);
    let mut stream = service.stream(config);
    for job in jobs() {
        stream.submit(job).expect("queue sized for the batch");
    }

    // The three faults each kill one worker (the hang trips the virtual-
    // tick watchdog; its spin can push slow-but-honest peers past their
    // own deadlines too, which reassigns them just as safely).
    let health = loop {
        let health = stream.health();
        if health.worker_restarts >= 3 {
            break health;
        }
        stream.pump();
        std::thread::yield_now();
    };
    println!(
        "supervisor: {} workers reaped+respawned, {} jobs reassigned, {} live",
        health.worker_restarts, health.reassigned, health.workers_live
    );
    assert!(health.reassigned >= 3, "each fault reclaimed its batch");
    assert!(!health.workers_dead);

    // ---- 4. Bit-identical finish ----------------------------------------
    let report = stream.finish();
    assert_eq!(report, clean_report, "chaos run == clean run, bit for bit");
    let text = service.metrics_text();
    assert_eq!(metering_exposition(&text), clean_metering);
    assert!(text.contains("fleet_poison_jobs_total 0"));
    println!(
        "finished: {} records; report, ledger and metering exposition \
         identical to the clean run",
        report.records.len()
    );

    // Released ⇒ journaled ⇒ executed exactly once, despite three
    // re-executions behind the scenes.
    let (entries, tail) = journal.entries().expect("journal parses back");
    assert_eq!(tail, TailStatus::Clean);
    let mut ran: Vec<JobId> = entries
        .iter()
        .filter_map(|e| match e {
            JournalEntry::Run(record) => Some(record.job.id),
            _ => None,
        })
        .collect();
    ran.sort_unstable();
    assert_eq!(ran, (0..JOBS).map(JobId).collect::<Vec<_>>());
    println!("journal: every job has exactly one Run entry");

    // ---- 5. A poison job is quarantined; the fleet keeps flowing --------
    let poison = JobId(5);
    let healthy: Vec<JobSpec> = jobs().into_iter().filter(|j| j.id != poison).collect();
    let mut baseline = build_service(None);
    let baseline_report = baseline.process(&healthy);

    let journal = Journal::in_memory();
    let mut service = build_service(Some(journal.clone()));
    let config = IngestConfig::new(2)
        .with_supervisor(SupervisorPolicy::default().with_max_job_attempts(2))
        .with_worker_faults(WorkerFaultSchedule::none().poison_on(poison));
    let stream = service.stream(config);
    for job in jobs() {
        stream.submit(job).expect("queue sized for the batch");
    }
    let report = stream.finish();
    assert_eq!(report.records.len(), JOBS as usize - 1);
    assert_eq!(
        report, baseline_report,
        "everyone else bills as if the poison never existed"
    );
    let (entries, _) = journal.entries().expect("journal parses back");
    let notice = entries
        .iter()
        .find_map(|e| match e {
            JournalEntry::Poisoned(notice) => Some(notice.clone()),
            _ => None,
        })
        .expect("the verdict is part of the evidence chain");
    assert_eq!(notice.spec.id, poison);
    println!(
        "poison job {:?} retired after {} attempts ({} workers killed), \
         verdict journaled; {} healthy records billed",
        notice.spec.id,
        notice.attempts,
        notice.attempts,
        report.records.len()
    );
    let mut recovered = build_service(None);
    let recovery = recovered.recover(&entries).expect("journal replays");
    assert!(recovery.is_consistent());
    assert_eq!(recovery.poisoned, 1);
    assert!(
        recovery.unreleased.is_empty(),
        "the Poisoned entry retires its Accepted marker"
    );
    assert_eq!(recovered.ledger(), &baseline_report.ledger);
    assert!(service.metrics_text().contains("fleet_poison_jobs_total 1"));
    println!("replay: recovery consistent, poison retired, ledger matches baseline");

    // ---- 6. Restart budget spent: dead pool, operator revival -----------
    let config = IngestConfig::new(1)
        .with_supervisor(SupervisorPolicy::default().with_max_restarts(0))
        .with_worker_faults(WorkerFaultSchedule::none().panic_on(JobId(0)));
    let mut ingest = FleetIngest::start(FleetConfig::new(1, SEED), config);
    for job in jobs().into_iter().take(3) {
        ingest.submit(job).expect("queue sized for the batch");
    }
    while !ingest.health().workers_dead {
        std::thread::yield_now();
    }
    let health = ingest.health();
    println!(
        "*** workers dead: {} (budget spent; submits fail fast)",
        health.last_error.as_deref().unwrap_or("?")
    );
    assert!(health.quarantined);
    assert_eq!(
        ingest.submit(JobSpec::clean(99, TenantId(1), Workload::LoopO, SCALE)),
        Err(SubmitError::Quarantined)
    );
    ingest.scale_to(1);
    assert!(
        !ingest.health().workers_dead,
        "a fresh pool lifts the quarantine"
    );
    let outcome = ingest.finish();
    assert_eq!(outcome.records.len(), 3);
    assert!(outcome.poisoned.is_empty());
    println!(
        "revived with scale_to(1): backlog drained, {} records ({} reassigned)",
        outcome.records.len(),
        outcome.stats.reassigned
    );
}
