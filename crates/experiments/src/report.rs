//! Figure/table data containers and rendering.

use serde::{Deserialize, Serialize};
use std::fmt;
use trustmeter_sim::Series;

/// The reproduced data behind one paper figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureData {
    /// Identifier, e.g. `"fig4"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// What the paper reports for this figure (qualitative expectation).
    pub paper_expectation: String,
    /// The reproduced series.
    pub series: Vec<Series>,
    /// Free-form notes (calibration, scale, deviations).
    pub notes: Vec<String>,
}

impl FigureData {
    /// Creates an empty figure container.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        expectation: impl Into<String>,
    ) -> FigureData {
        FigureData {
            id: id.into(),
            title: title.into(),
            paper_expectation: expectation.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Adds a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Looks up a series by name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }
}

impl fmt::Display for FigureData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {} ===", self.id, self.title)?;
        writeln!(f, "paper: {}", self.paper_expectation)?;
        for s in &self.series {
            writeln!(f, "  {s}")?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// One row of the §V-C attack-comparison table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Attack name.
    pub attack: String,
    /// Which accounting component is inflated.
    pub component: String,
    /// Privilege the operator needs.
    pub privilege: String,
    /// Victim's billed-time inflation over the clean run, as a factor.
    pub inflation_factor: f64,
    /// Share of the extra billed time that landed in system time (0..1).
    pub stime_share_of_extra: f64,
    /// Extra billed CPU seconds.
    pub extra_secs: f64,
}

/// The full comparison table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ComparisonTable {
    /// One row per attack.
    pub rows: Vec<ComparisonRow>,
}

impl fmt::Display for ComparisonTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<20} {:<22} {:<26} {:>10} {:>12} {:>10}",
            "attack", "component", "privilege", "inflation", "stime share", "extra (s)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<20} {:<22} {:<26} {:>9.2}x {:>11.0}% {:>10.2}",
                r.attack,
                r.component,
                r.privilege,
                r.inflation_factor,
                r.stime_share_of_extra * 100.0,
                r.extra_secs
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_container_roundtrip() {
        let mut fig = FigureData::new("fig4", "Shell attack", "utime grows by a constant");
        let mut s = Series::new("user time (attack)");
        s.push("O", 154.0);
        fig.push_series(s);
        fig.note("scale = 0.01");
        assert!(fig.series_named("user time (attack)").is_some());
        assert!(fig.series_named("missing").is_none());
        let text = format!("{fig}");
        assert!(text.contains("fig4"));
        assert!(text.contains("note: scale"));
        let json = serde_json::to_string(&fig).unwrap();
        let back: FigureData = serde_json::from_str(&json).unwrap();
        assert_eq!(back, fig);
    }

    #[test]
    fn comparison_table_renders() {
        let table = ComparisonTable {
            rows: vec![ComparisonRow {
                attack: "shell".into(),
                component: "user-time inflation".into(),
                privilege: "shell/environment control".into(),
                inflation_factor: 1.28,
                stime_share_of_extra: 0.0,
                extra_secs: 34.0,
            }],
        };
        let text = format!("{table}");
        assert!(text.contains("shell"));
        assert!(text.contains("1.28x"));
    }
}
