//! # trustmeter-core
//!
//! The primary contribution of the reproduced paper, *"On Trustworthiness of
//! CPU Usage Metering and Accounting"* (Liu & Ding, ICDCSW 2010), as a
//! reusable library: CPU-time **metering schemes**, the **trust properties**
//! the paper argues a utility-computing platform must provide (source
//! integrity, execution integrity, fine-grained metering), and the
//! **billing / overcharge analysis** used to quantify how much a dishonest
//! provider inflates a customer's bill.
//!
//! The crate is deliberately independent of the simulated kernel: it consumes
//! a stream of [`MeterEvent`]s (context switches, mode changes, timer ticks,
//! interrupts, exceptions) that any execution substrate — the bundled
//! simulator, a trace replayer, or a real instrumented kernel — can produce.
//!
//! ## Metering schemes
//!
//! * [`TickAccounting`] — the commodity scheme the paper attacks: one jiffy
//!   is charged to whichever task is current when the timer interrupt fires,
//!   to `utime` or `stime` depending on the interrupted mode.
//! * [`TscAccounting`] — fine-grained metering built on the time-stamp
//!   counter: exact cycles are attributed at every state transition.
//! * [`ProcessAwareAccounting`] — fine-grained metering that additionally
//!   attributes interrupt-handler time to the interrupt's owner instead of
//!   the interrupted victim (the fix for the interrupt-flooding attack).
//!
//! ## Trust properties
//!
//! * [`integrity::MeasurementLog`] / [`integrity::PcrBank`] — TPM-style
//!   measured launch of every image that enters a process's context
//!   (source integrity).
//! * [`integrity::ExecutionWitness`] — a hash-chain witness over the executed
//!   control flow (execution integrity).
//! * [`attest::Quote`] — a signed attestation binding a usage report to the
//!   measurement log.
//!
//! ## Example
//!
//! ```
//! use trustmeter_core::{
//!     CpuTime, MeterEvent, MeteringScheme, Mode, TaskId, TickAccounting, TscAccounting,
//! };
//! use trustmeter_sim::{CpuFrequency, Cycles, Nanos};
//!
//! let freq = CpuFrequency::E7200;
//! let jiffy = freq.cycles_for(Nanos::from_millis(4)); // HZ=250
//! let mut tick = TickAccounting::new(jiffy);
//! let mut tsc = TscAccounting::new();
//! let t = TaskId(7);
//!
//! // Task 7 runs in user mode for half a jiffy, then another task runs the
//! // remaining half and is current when the tick arrives.
//! let half = Cycles(jiffy.as_u64() / 2);
//! for scheme in [&mut tick as &mut dyn MeteringScheme, &mut tsc] {
//!     scheme.on_event(&MeterEvent::SwitchIn { at: Cycles(0), task: t, mode: Mode::User });
//!     scheme.on_event(&MeterEvent::SwitchOut { at: half, task: t });
//!     scheme.on_event(&MeterEvent::SwitchIn { at: half, task: TaskId(8), mode: Mode::User });
//!     scheme.on_event(&MeterEvent::TimerTick { at: jiffy, task: Some(TaskId(8)), mode: Mode::User });
//! }
//!
//! // The commodity scheme charges the whole jiffy to task 8 and nothing to
//! // task 7 — exactly the imprecision the scheduling attack exploits.
//! assert_eq!(tick.usage(t), CpuTime::ZERO);
//! assert_eq!(tsc.usage(t).utime, half);
//! ```

// Unsafe is denied everywhere except the one hardware-intrinsics module
// (`integrity::sha256::shani`), which carries its own `allow` and safety
// comments.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod attest;
pub mod billing;
pub mod cputime;
pub mod events;
pub mod integrity;
pub mod scheme;

pub use analysis::{AttackClass, OverchargeReport, TrustAssessment, TrustProperty, Verdict};
pub use attest::{AttestationKey, Quote, QuoteError};
pub use billing::{Invoice, LineItem, RateCard, RoundingPolicy};
pub use cputime::{CpuTime, Mode, TaskId};
pub use events::{ExceptionKind, IrqLine, MeterEvent};
pub use integrity::{
    Digest, ExecutionWitness, ImageKind, MeasuredImage, MeasurementLog, PcrBank, Sha256,
    SourceIntegrityReport,
};
pub use scheme::{
    MeterBank, MeteringScheme, ProcessAwareAccounting, SchemeKind, TickAccounting, TscAccounting,
};
