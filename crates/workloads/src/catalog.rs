//! The workload catalog: the paper's four victim programs and their
//! calibration.
//!
//! The evaluation (§V-A) uses four test programs, abbreviated O, P, W and B:
//!
//! | Key | Paper program | Simulated as |
//! |-----|---------------|--------------|
//! | `O` | a CPU-bound loop program written by the authors | pure compute loop with a hot loop-control variable |
//! | `P` | an open-source π calculator | Machin-series compute with `sqrt`/`malloc` library calls and a hot variable `y` |
//! | `W` | the netlib Whetstone benchmark | Whetstone op mix with heavy libm usage and a hot variable `T1` |
//! | `B` | an MD5 brute-force cracker | multi-threaded MD5 search (threads scheduled like processes, as on Linux) with a hot counter in `crack_len()` |
//!
//! Baseline user-time targets are calibrated to the "no attack" bars of the
//! paper's Figures 4–6 (roughly 120–220 CPU seconds on the 2.53 GHz E7200).
//! Every quantity scales linearly with the `scale` parameter so tests and CI
//! can run small instances while preserving all the ratios.

use crate::programs::{VictimProgram, VictimSpec};
use serde::{Deserialize, Serialize};
use std::fmt;
use trustmeter_kernel::Program;

/// The four victim programs of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// The authors' own CPU-bound loop program ("O").
    LoopO,
    /// The π calculator ("P").
    Pi,
    /// The Whetstone benchmark ("W").
    Whetstone,
    /// The multi-threaded MD5 brute-forcer ("B").
    Brute,
}

impl Workload {
    /// All four workloads in the order the paper's figures use (O, P, W, B).
    pub const ALL: [Workload; 4] = [
        Workload::LoopO,
        Workload::Pi,
        Workload::Whetstone,
        Workload::Brute,
    ];

    /// The one-letter label used on the figures' X axis.
    pub fn label(self) -> &'static str {
        match self {
            Workload::LoopO => "O",
            Workload::Pi => "P",
            Workload::Whetstone => "W",
            Workload::Brute => "B",
        }
    }

    /// The address of the program's hot variable (the breakpoint target of
    /// the execution-thrashing attack, §V-B4).
    pub fn hot_variable_addr(self) -> u64 {
        match self {
            Workload::LoopO => 0x6010_0010,     // loop control variable
            Workload::Pi => 0x6012_0040,        // variable y
            Workload::Whetstone => 0x6014_0080, // variable T1
            Workload::Brute => 0x6016_00c0,     // `count` in crack_len()
        }
    }

    /// Baseline parameters at `scale = 1.0`.
    fn base_spec(self) -> VictimSpec {
        match self {
            Workload::LoopO => VictimSpec {
                name: "O",
                user_secs: 120.0,
                chunk_us: 1_000.0,
                libcalls: vec![("malloc".to_string(), 3_000)],
                watched_addr: self.hot_variable_addr(),
                watched_accesses: 1_000_000,
                threads: 1,
                memory_pages: 25_000,
                touch_pages_total: 1_000_000,
            },
            Workload::Pi => VictimSpec {
                name: "P",
                user_secs: 150.0,
                chunk_us: 1_000.0,
                libcalls: vec![("sqrt".to_string(), 6_000), ("malloc".to_string(), 1_000)],
                watched_addr: self.hot_variable_addr(),
                // The paper sets the breakpoint on a variable accessed about
                // 10^7 times.
                watched_accesses: 10_000_000,
                threads: 1,
                memory_pages: 5_000,
                touch_pages_total: 500_000,
            },
            Workload::Whetstone => VictimSpec {
                name: "W",
                user_secs: 190.0,
                chunk_us: 1_000.0,
                libcalls: vec![
                    ("sqrt".to_string(), 4_000),
                    ("sin".to_string(), 2_000),
                    ("cos".to_string(), 2_000),
                ],
                watched_addr: self.hot_variable_addr(),
                // T1 is accessed about 2 × 10^5 times.
                watched_accesses: 200_000,
                threads: 1,
                memory_pages: 10_000,
                touch_pages_total: 500_000,
            },
            Workload::Brute => VictimSpec {
                name: "B",
                user_secs: 215.0,
                chunk_us: 1_000.0,
                libcalls: vec![("malloc".to_string(), 8_000)],
                watched_addr: self.hot_variable_addr(),
                // `count` is hit about 895 thousand times with
                // PER_THREAD_TRIES = 50.
                watched_accesses: 895_000,
                threads: 8,
                memory_pages: 40_000,
                touch_pages_total: 1_000_000,
            },
        }
    }

    /// The workload's parameters at the given scale.
    ///
    /// # Panics
    /// Panics if `scale` is not positive and finite.
    pub fn spec(self, scale: f64) -> VictimSpec {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        self.base_spec().scaled(scale)
    }

    /// Builds the simulated program at the given scale.
    pub fn build(self, scale: f64) -> Box<dyn Program> {
        Box::new(VictimProgram::new(self.spec(scale)))
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_order() {
        let labels: Vec<&str> = Workload::ALL.iter().map(|w| w.label()).collect();
        assert_eq!(labels, vec!["O", "P", "W", "B"]);
        assert_eq!(format!("{}", Workload::Pi), "P");
    }

    #[test]
    fn hot_variable_addresses_are_distinct() {
        let mut addrs: Vec<u64> = Workload::ALL
            .iter()
            .map(|w| w.hot_variable_addr())
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 4);
    }

    #[test]
    fn spec_scales_linearly() {
        let full = Workload::Whetstone.spec(1.0);
        let half = Workload::Whetstone.spec(0.5);
        assert!((half.user_secs - full.user_secs / 2.0).abs() < 1e-9);
        assert_eq!(half.watched_accesses, full.watched_accesses / 2);
        assert_eq!(half.libcalls[0].1, full.libcalls[0].1 / 2);
        assert_eq!(half.threads, full.threads);
    }

    #[test]
    fn baselines_follow_paper_ordering() {
        // The paper's "no attack" bars are ordered O < P < W < B.
        let secs: Vec<f64> = Workload::ALL
            .iter()
            .map(|w| w.spec(1.0).user_secs)
            .collect();
        assert!(secs.windows(2).all(|w| w[0] < w[1]), "{secs:?}");
    }

    #[test]
    fn brute_is_multithreaded_and_paper_counts_kept() {
        let b = Workload::Brute.spec(1.0);
        assert!(b.threads > 1);
        assert_eq!(b.watched_accesses, 895_000);
        assert_eq!(Workload::Pi.spec(1.0).watched_accesses, 10_000_000);
        assert_eq!(Workload::Whetstone.spec(1.0).watched_accesses, 200_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = Workload::Pi.spec(0.0);
    }

    #[test]
    fn build_produces_named_program() {
        let p = Workload::Brute.build(0.01);
        assert_eq!(p.name(), "B");
    }
}
