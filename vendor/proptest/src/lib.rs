//! Local stub of `proptest` for an offline build environment.
//!
//! Replaces proptest's shrinking value trees with plain deterministic random
//! generation: every `#[test]` inside [`proptest!`] runs its body for
//! `ProptestConfig::cases` inputs drawn from a fixed-seed SplitMix64 stream,
//! so failures reproduce bit-for-bit (there is no shrinking — the failing
//! input is printed by the assertion message instead). The supported API is
//! the slice this workspace's property tests use: range and tuple
//! strategies, `any::<T>()`, `prop::collection::vec`, simple `[a-z]{m,n}`
//! string patterns, `prop_map`, and the `prop_assert*` macros.

pub mod strategy;
pub mod test_runner;

/// Mirrors proptest's `prop` facade module (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// The glob-imported surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs each contained `#[test]` function over many generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for case in 0..config.cases {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&($($strat,)+), &mut rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    ::std::panic!("property failed on case {case}: {e}");
                }
            }
        }
    )*};
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, "assertion failed: {:?} != {:?}", left, right);
    }};
}

/// Fails the current property case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, "assertion failed: both sides are {:?}", left);
    }};
}
