//! Attestation of usage reports.
//!
//! The paper's threat model (§III-B) rules out the trivial attack where the
//! server simply reports a made-up number, by assuming the kernel is trusted
//! and that "the measurement result is signed by the TPM on the kernel's
//! request and the signature is then verified by the user". This module
//! provides that piece: a simulated attestation key that signs a [`Quote`]
//! binding together the customer's nonce, the measurement-log PCR (source
//! integrity), the execution-witness digest (execution integrity) and the
//! usage report itself.
//!
//! The "signature" is an HMAC-SHA256 under a key shared with the verifier —
//! a stand-in for a TPM quote; the substitution is documented in DESIGN.md.

use crate::cputime::CpuTime;
use crate::integrity::{Digest, Sha256};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors returned by quote verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuoteError {
    /// The MAC does not verify under the expected key.
    BadSignature,
    /// The nonce does not match the challenge the verifier issued.
    NonceMismatch,
}

impl fmt::Display for QuoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuoteError::BadSignature => f.write_str("quote signature did not verify"),
            QuoteError::NonceMismatch => f.write_str("quote nonce did not match the challenge"),
        }
    }
}

impl std::error::Error for QuoteError {}

/// A simulated TPM attestation identity key.
///
/// # Example
///
/// ```
/// use trustmeter_core::{AttestationKey, CpuTime, Digest};
/// use trustmeter_sim::Cycles;
///
/// let key = AttestationKey::from_seed(b"platform-aik");
/// let usage = CpuTime::new(Cycles(1_000), Cycles(200));
/// let quote = key.quote(42, Digest::of(b"pcr"), Digest::of(b"witness"), usage);
/// assert!(key.verify(&quote, 42).is_ok());
/// assert!(key.verify(&quote, 43).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationKey {
    secret: [u8; 32],
}

impl AttestationKey {
    /// Derives a key deterministically from a seed.
    pub fn from_seed(seed: &[u8]) -> AttestationKey {
        AttestationKey {
            secret: Sha256::digest(seed),
        }
    }

    /// Produces a quote over the given platform state and usage report.
    pub fn quote(
        &self,
        nonce: u64,
        measurement_pcr: Digest,
        witness_digest: Digest,
        usage: CpuTime,
    ) -> Quote {
        let mut quote = Quote {
            nonce,
            measurement_pcr,
            witness_digest,
            usage,
            mac: [0u8; 32],
        };
        quote.mac = Sha256::hmac(&self.secret, &quote.signing_bytes());
        quote
    }

    /// Verifies a quote against the challenge nonce the verifier issued.
    ///
    /// # Errors
    /// Returns [`QuoteError::NonceMismatch`] if the nonce differs from the
    /// challenge and [`QuoteError::BadSignature`] if the MAC does not verify.
    pub fn verify(&self, quote: &Quote, challenge_nonce: u64) -> Result<(), QuoteError> {
        if quote.nonce != challenge_nonce {
            return Err(QuoteError::NonceMismatch);
        }
        let expected = Sha256::hmac(&self.secret, &quote.signing_bytes());
        if expected != quote.mac {
            return Err(QuoteError::BadSignature);
        }
        Ok(())
    }
}

/// A signed usage attestation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quote {
    /// The verifier's freshness challenge.
    pub nonce: u64,
    /// PCR value committing to the process's measurement log.
    pub measurement_pcr: Digest,
    /// Digest of the execution witness chain.
    pub witness_digest: Digest,
    /// The usage report being attested.
    pub usage: CpuTime,
    /// HMAC-SHA256 over the above under the platform attestation key.
    pub mac: [u8; 32],
}

impl Quote {
    /// Canonical byte encoding of the signed fields.
    fn signing_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 32 + 32 + 16);
        out.extend_from_slice(&self.nonce.to_be_bytes());
        out.extend_from_slice(&self.measurement_pcr.0);
        out.extend_from_slice(&self.witness_digest.0);
        out.extend_from_slice(&self.usage.utime.as_u64().to_be_bytes());
        out.extend_from_slice(&self.usage.stime.as_u64().to_be_bytes());
        out
    }
}

impl fmt::Display for Quote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "quote(nonce={}, pcr={}, witness={}, {})",
            self.nonce, self.measurement_pcr, self.witness_digest, self.usage
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustmeter_sim::Cycles;

    fn sample_usage() -> CpuTime {
        CpuTime::new(Cycles(123_456), Cycles(7_890))
    }

    #[test]
    fn quote_round_trip() {
        let key = AttestationKey::from_seed(b"aik");
        let q = key.quote(7, Digest::of(b"pcr"), Digest::of(b"wit"), sample_usage());
        assert_eq!(key.verify(&q, 7), Ok(()));
        assert!(format!("{q}").contains("nonce=7"));
    }

    #[test]
    fn wrong_nonce_rejected() {
        let key = AttestationKey::from_seed(b"aik");
        let q = key.quote(7, Digest::ZERO, Digest::ZERO, sample_usage());
        assert_eq!(key.verify(&q, 8), Err(QuoteError::NonceMismatch));
    }

    #[test]
    fn tampered_usage_rejected() {
        let key = AttestationKey::from_seed(b"aik");
        let mut q = key.quote(7, Digest::ZERO, Digest::ZERO, sample_usage());
        q.usage.utime = Cycles(999_999_999);
        assert_eq!(key.verify(&q, 7), Err(QuoteError::BadSignature));
    }

    #[test]
    fn tampered_pcr_rejected() {
        let key = AttestationKey::from_seed(b"aik");
        let mut q = key.quote(7, Digest::of(b"real"), Digest::ZERO, sample_usage());
        q.measurement_pcr = Digest::of(b"forged");
        assert_eq!(key.verify(&q, 7), Err(QuoteError::BadSignature));
    }

    #[test]
    fn different_key_rejected() {
        let signer = AttestationKey::from_seed(b"aik-1");
        let verifier = AttestationKey::from_seed(b"aik-2");
        let q = signer.quote(1, Digest::ZERO, Digest::ZERO, sample_usage());
        assert_eq!(verifier.verify(&q, 1), Err(QuoteError::BadSignature));
    }

    #[test]
    fn error_display() {
        assert!(format!("{}", QuoteError::BadSignature).contains("signature"));
        assert!(format!("{}", QuoteError::NonceMismatch).contains("nonce"));
    }
}
