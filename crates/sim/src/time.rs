//! Virtual time primitives.
//!
//! All simulated activity is measured in CPU **cycles** of a single core.
//! Wall-clock quantities (nanoseconds, jiffies, seconds) are derived from
//! cycles through a [`CpuFrequency`]. Keeping the canonical unit in cycles
//! mirrors the paper's observation that modern CPUs expose a time-stamp
//! counter (TSC) that a fine-grained metering scheme can build on (§VI-B).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration or instant measured in CPU cycles.
///
/// `Cycles` is the canonical unit of simulated time. It is an additive
/// newtype over `u64`; arithmetic saturates on subtraction so accounting
/// code can never produce negative durations.
///
/// # Example
///
/// ```
/// use trustmeter_sim::Cycles;
/// let a = Cycles(100);
/// let b = Cycles(40);
/// assert_eq!(a + b, Cycles(140));
/// assert_eq!(b.saturating_sub(a), Cycles(0));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Cycles(pub u64);

impl Cycles {
    /// The zero duration.
    pub const ZERO: Cycles = Cycles(0);
    /// The largest representable instant.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Returns the raw cycle count.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the raw cycle count as `f64` (useful for statistics).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction: never underflows below zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: Cycles) -> Option<Cycles> {
        self.0.checked_add(rhs.0).map(Cycles)
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }

    /// Returns `true` if this is the zero duration.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the minimum of two cycle counts.
    #[inline]
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }

    /// Returns the maximum of two cycle counts.
    #[inline]
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    /// Panics on underflow in debug builds; use [`Cycles::saturating_sub`]
    /// in accounting paths.
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// A wall-clock duration in nanoseconds.
///
/// # Example
///
/// ```
/// use trustmeter_sim::Nanos;
/// assert_eq!(Nanos::from_millis(2).as_u64(), 2_000_000);
/// assert_eq!(Nanos::from_secs(1).as_millis_f64(), 1000.0);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Nanos(pub u64);

impl Nanos {
    /// The zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Constructs from microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// Constructs from milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// Constructs from whole seconds.
    #[inline]
    pub fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// Constructs from fractional seconds.
    ///
    /// # Panics
    /// Panics if `s` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Nanos {
        assert!(
            s.is_finite() && s >= 0.0,
            "seconds must be finite and non-negative"
        );
        Nanos((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Duration in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} ms", self.as_millis_f64())
        } else {
            write!(f, "{} ns", self.0)
        }
    }
}

/// The clock frequency of the simulated CPU, used to convert between
/// [`Cycles`] and [`Nanos`].
///
/// The paper's test machine is an Intel Core 2 Duo E7200 at 2.53 GHz with
/// one core disabled; [`CpuFrequency::E7200`] reproduces it.
///
/// # Example
///
/// ```
/// use trustmeter_sim::{CpuFrequency, Nanos};
/// let f = CpuFrequency::E7200;
/// let cycles = f.cycles_for(Nanos::from_secs(1));
/// assert_eq!(cycles.as_u64(), 2_533_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CpuFrequency {
    khz: u64,
}

impl CpuFrequency {
    /// The paper's evaluation CPU: Intel Core 2 Duo E7200 @ 2.53 GHz.
    pub const E7200: CpuFrequency = CpuFrequency { khz: 2_533_000 };

    /// Creates a frequency from megahertz.
    ///
    /// # Panics
    /// Panics if `mhz` is zero.
    pub fn from_mhz(mhz: u64) -> CpuFrequency {
        assert!(mhz > 0, "CPU frequency must be positive");
        CpuFrequency { khz: mhz * 1_000 }
    }

    /// Creates a frequency from gigahertz.
    ///
    /// # Panics
    /// Panics if `ghz` is not positive and finite.
    pub fn from_ghz(ghz: f64) -> CpuFrequency {
        assert!(
            ghz.is_finite() && ghz > 0.0,
            "CPU frequency must be positive"
        );
        CpuFrequency {
            khz: (ghz * 1e6).round() as u64,
        }
    }

    /// Frequency in kilohertz.
    #[inline]
    pub fn khz(self) -> u64 {
        self.khz
    }

    /// Frequency in hertz.
    #[inline]
    pub fn hz(self) -> u64 {
        self.khz * 1_000
    }

    /// Number of cycles elapsing in the given wall-clock duration.
    #[inline]
    pub fn cycles_for(self, d: Nanos) -> Cycles {
        // cycles = ns * hz / 1e9 = ns * khz / 1e6 — use u128 to avoid overflow.
        Cycles((d.0 as u128 * self.khz as u128 / 1_000_000) as u64)
    }

    /// Wall-clock duration of the given cycle count.
    #[inline]
    pub fn nanos_for(self, c: Cycles) -> Nanos {
        Nanos((c.0 as u128 * 1_000_000 / self.khz as u128) as u64)
    }

    /// Wall-clock duration of the cycle count, in fractional seconds.
    #[inline]
    pub fn secs_for(self, c: Cycles) -> f64 {
        c.0 as f64 / (self.khz as f64 * 1_000.0)
    }
}

impl Default for CpuFrequency {
    fn default() -> Self {
        CpuFrequency::E7200
    }
}

impl fmt::Display for CpuFrequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} GHz", self.khz as f64 / 1e6)
    }
}

/// The simulated time-stamp counter.
///
/// The TSC is the monotonically increasing cycle counter that fine-grained
/// metering schemes (paper §VI-B, "Fine-grained Metering") read via `rdtsc`.
/// In the simulator it simply tracks the global cycle clock; it exists as a
/// distinct type so metering code reads time the same way a real
/// implementation would.
///
/// # Example
///
/// ```
/// use trustmeter_sim::{Cycles, Tsc};
/// let mut tsc = Tsc::new();
/// tsc.advance(Cycles(100));
/// assert_eq!(tsc.read(), Cycles(100));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tsc {
    now: Cycles,
}

impl Tsc {
    /// Creates a TSC starting at zero.
    pub fn new() -> Tsc {
        Tsc { now: Cycles::ZERO }
    }

    /// Reads the counter (the `rdtsc` analogue).
    #[inline]
    pub fn read(&self) -> Cycles {
        self.now
    }

    /// Advances the counter by `delta` cycles.
    #[inline]
    pub fn advance(&mut self, delta: Cycles) {
        self.now += delta;
    }

    /// Sets the counter to an absolute instant.
    ///
    /// # Panics
    /// Panics if `to` is earlier than the current reading: the TSC is
    /// monotonic.
    #[inline]
    pub fn advance_to(&mut self, to: Cycles) {
        assert!(
            to >= self.now,
            "TSC cannot move backwards ({} -> {})",
            self.now,
            to
        );
        self.now = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        assert_eq!(Cycles(3) + Cycles(4), Cycles(7));
        assert_eq!(Cycles(10) - Cycles(4), Cycles(6));
        assert_eq!(Cycles(4).saturating_sub(Cycles(10)), Cycles::ZERO);
        assert_eq!(Cycles(3) * 4, Cycles(12));
        assert_eq!(Cycles(12) / 4, Cycles(3));
        assert_eq!(
            vec![Cycles(1), Cycles(2), Cycles(3)]
                .into_iter()
                .sum::<Cycles>(),
            Cycles(6)
        );
        assert!(Cycles(1) < Cycles(2));
        assert!(Cycles::ZERO.is_zero());
        assert_eq!(Cycles(5).min(Cycles(7)), Cycles(5));
        assert_eq!(Cycles(5).max(Cycles(7)), Cycles(7));
    }

    #[test]
    fn cycles_saturating_and_checked() {
        assert_eq!(Cycles::MAX.saturating_add(Cycles(1)), Cycles::MAX);
        assert_eq!(Cycles::MAX.checked_add(Cycles(1)), None);
        assert_eq!(Cycles(1).checked_add(Cycles(2)), Some(Cycles(3)));
    }

    #[test]
    fn nanos_constructors() {
        assert_eq!(Nanos::from_micros(5).as_u64(), 5_000);
        assert_eq!(Nanos::from_millis(5).as_u64(), 5_000_000);
        assert_eq!(Nanos::from_secs(2).as_u64(), 2_000_000_000);
        assert_eq!(Nanos::from_secs_f64(0.5).as_u64(), 500_000_000);
        assert!((Nanos::from_secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn nanos_rejects_negative_seconds() {
        let _ = Nanos::from_secs_f64(-1.0);
    }

    #[test]
    fn nanos_display_scales() {
        assert_eq!(format!("{}", Nanos(500)), "500 ns");
        assert_eq!(format!("{}", Nanos::from_millis(2)), "2.000 ms");
        assert_eq!(format!("{}", Nanos::from_secs(2)), "2.000 s");
    }

    #[test]
    fn frequency_round_trip() {
        let f = CpuFrequency::E7200;
        let ns = Nanos::from_millis(10);
        let cycles = f.cycles_for(ns);
        let back = f.nanos_for(cycles);
        // Round trip error bounded by one cycle's worth of nanoseconds.
        assert!(ns.as_u64().abs_diff(back.as_u64()) <= 1);
        assert_eq!(f.hz(), 2_533_000_000);
    }

    #[test]
    fn frequency_constructors() {
        assert_eq!(CpuFrequency::from_mhz(1000).hz(), 1_000_000_000);
        assert_eq!(CpuFrequency::from_ghz(2.533).khz(), 2_533_000);
        assert_eq!(CpuFrequency::default(), CpuFrequency::E7200);
        assert_eq!(format!("{}", CpuFrequency::E7200), "2.533 GHz");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn frequency_rejects_zero() {
        let _ = CpuFrequency::from_mhz(0);
    }

    #[test]
    fn secs_for_matches_nanos_for() {
        let f = CpuFrequency::from_mhz(2000);
        let c = Cycles(2_000_000_000);
        assert!((f.secs_for(c) - 1.0).abs() < 1e-9);
        assert_eq!(f.nanos_for(c), Nanos::from_secs(1));
    }

    #[test]
    fn tsc_is_monotonic() {
        let mut tsc = Tsc::new();
        tsc.advance(Cycles(10));
        tsc.advance_to(Cycles(20));
        assert_eq!(tsc.read(), Cycles(20));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn tsc_rejects_backwards() {
        let mut tsc = Tsc::new();
        tsc.advance(Cycles(10));
        tsc.advance_to(Cycles(5));
    }
}
