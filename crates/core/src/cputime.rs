//! CPU-time accounting value types.
//!
//! A process's CPU consumption in Linux is split into *user time* (`utime`,
//! cycles spent executing the process's own instructions in user mode) and
//! *system time* (`stime`, cycles the kernel spends on behalf of the
//! process). The paper's attacks target one or the other: launch-time code
//! injection inflates `utime`, event flooding inflates `stime`, and the
//! scheduling attack shifts whole jiffies between processes.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};
use trustmeter_sim::{CpuFrequency, Cycles};

/// Identifier of a schedulable task (a process or a thread).
///
/// Threads are scheduled exactly like processes in the simulated kernel,
/// mirroring Linux; a process's total usage is the sum over its thread
/// group.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The id reserved for the idle task / swapper (pid 0).
    pub const IDLE: TaskId = TaskId(0);

    /// Raw numeric value.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid {}", self.0)
    }
}

/// The privilege mode a task executes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Mode {
    /// Executing the program's own instructions.
    #[default]
    User,
    /// Executing kernel code on behalf of the task (syscall, fault handling,
    /// signal delivery, ...).
    Kernel,
}

impl Mode {
    /// Returns `true` for [`Mode::Kernel`].
    pub fn is_kernel(self) -> bool {
        matches!(self, Mode::Kernel)
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::User => f.write_str("user"),
            Mode::Kernel => f.write_str("kernel"),
        }
    }
}

/// A `(utime, stime)` pair, the unit of CPU-time accounting.
///
/// Both components are stored in CPU [`Cycles`]; conversion to seconds goes
/// through the platform's [`CpuFrequency`] so tick-based and TSC-based
/// schemes are directly comparable.
///
/// # Example
///
/// ```
/// use trustmeter_core::CpuTime;
/// use trustmeter_sim::{CpuFrequency, Cycles};
///
/// let t = CpuTime::new(Cycles(2_533_000_000), Cycles(0));
/// assert!((t.total_secs(CpuFrequency::E7200) - 1.0).abs() < 1e-9);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct CpuTime {
    /// Cycles accounted as user time.
    pub utime: Cycles,
    /// Cycles accounted as system time.
    pub stime: Cycles,
}

impl CpuTime {
    /// The zero usage.
    pub const ZERO: CpuTime = CpuTime {
        utime: Cycles(0),
        stime: Cycles(0),
    };

    /// Creates a usage record from user and system cycles.
    pub fn new(utime: Cycles, stime: Cycles) -> CpuTime {
        CpuTime { utime, stime }
    }

    /// Creates a usage record with only user time.
    pub fn user(utime: Cycles) -> CpuTime {
        CpuTime {
            utime,
            stime: Cycles::ZERO,
        }
    }

    /// Creates a usage record with only system time.
    pub fn system(stime: Cycles) -> CpuTime {
        CpuTime {
            utime: Cycles::ZERO,
            stime,
        }
    }

    /// Total cycles (user + system).
    pub fn total(self) -> Cycles {
        self.utime + self.stime
    }

    /// Adds cycles to the component selected by `mode`.
    pub fn charge(&mut self, mode: Mode, cycles: Cycles) {
        match mode {
            Mode::User => self.utime += cycles,
            Mode::Kernel => self.stime += cycles,
        }
    }

    /// User time in seconds at the given CPU frequency.
    pub fn utime_secs(self, freq: CpuFrequency) -> f64 {
        freq.secs_for(self.utime)
    }

    /// System time in seconds at the given CPU frequency.
    pub fn stime_secs(self, freq: CpuFrequency) -> f64 {
        freq.secs_for(self.stime)
    }

    /// Total CPU seconds at the given frequency.
    pub fn total_secs(self, freq: CpuFrequency) -> f64 {
        freq.secs_for(self.total())
    }

    /// Component-wise saturating difference (`self - other`), used to compute
    /// how much extra time an attacked run consumed relative to a clean run.
    pub fn saturating_sub(self, other: CpuTime) -> CpuTime {
        CpuTime {
            utime: self.utime.saturating_sub(other.utime),
            stime: self.stime.saturating_sub(other.stime),
        }
    }

    /// Ratio of this usage's total to `other`'s total; `1.0` when both are
    /// zero, `f64::INFINITY` when only `other` is zero.
    pub fn inflation_over(self, other: CpuTime) -> f64 {
        let a = self.total().as_f64();
        let b = other.total().as_f64();
        if b == 0.0 {
            if a == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            a / b
        }
    }

    /// Returns `true` if both components are zero.
    pub fn is_zero(self) -> bool {
        self.utime.is_zero() && self.stime.is_zero()
    }
}

impl Add for CpuTime {
    type Output = CpuTime;
    fn add(self, rhs: CpuTime) -> CpuTime {
        CpuTime {
            utime: self.utime + rhs.utime,
            stime: self.stime + rhs.stime,
        }
    }
}

impl AddAssign for CpuTime {
    fn add_assign(&mut self, rhs: CpuTime) {
        self.utime += rhs.utime;
        self.stime += rhs.stime;
    }
}

impl Sum for CpuTime {
    fn sum<I: Iterator<Item = CpuTime>>(iter: I) -> CpuTime {
        iter.fold(CpuTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for CpuTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "utime={} stime={}", self.utime, self.stime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taskid_display_and_idle() {
        assert_eq!(format!("{}", TaskId(3)), "pid 3");
        assert_eq!(TaskId::IDLE.as_u32(), 0);
    }

    #[test]
    fn mode_helpers() {
        assert!(Mode::Kernel.is_kernel());
        assert!(!Mode::User.is_kernel());
        assert_eq!(format!("{}", Mode::User), "user");
        assert_eq!(format!("{}", Mode::Kernel), "kernel");
        assert_eq!(Mode::default(), Mode::User);
    }

    #[test]
    fn charge_routes_by_mode() {
        let mut t = CpuTime::ZERO;
        t.charge(Mode::User, Cycles(10));
        t.charge(Mode::Kernel, Cycles(5));
        t.charge(Mode::User, Cycles(1));
        assert_eq!(t.utime, Cycles(11));
        assert_eq!(t.stime, Cycles(5));
        assert_eq!(t.total(), Cycles(16));
    }

    #[test]
    fn constructors() {
        assert_eq!(CpuTime::user(Cycles(7)).utime, Cycles(7));
        assert_eq!(CpuTime::user(Cycles(7)).stime, Cycles(0));
        assert_eq!(CpuTime::system(Cycles(9)).stime, Cycles(9));
        assert!(CpuTime::ZERO.is_zero());
        assert!(!CpuTime::user(Cycles(1)).is_zero());
    }

    #[test]
    fn seconds_conversion() {
        let freq = CpuFrequency::from_mhz(1000);
        let t = CpuTime::new(Cycles(500_000_000), Cycles(250_000_000));
        assert!((t.utime_secs(freq) - 0.5).abs() < 1e-9);
        assert!((t.stime_secs(freq) - 0.25).abs() < 1e-9);
        assert!((t.total_secs(freq) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn add_and_sum() {
        let a = CpuTime::new(Cycles(1), Cycles(2));
        let b = CpuTime::new(Cycles(3), Cycles(4));
        assert_eq!(a + b, CpuTime::new(Cycles(4), Cycles(6)));
        let mut c = a;
        c += b;
        assert_eq!(c, CpuTime::new(Cycles(4), Cycles(6)));
        let total: CpuTime = vec![a, b].into_iter().sum();
        assert_eq!(total, CpuTime::new(Cycles(4), Cycles(6)));
    }

    #[test]
    fn saturating_sub_and_inflation() {
        let clean = CpuTime::new(Cycles(100), Cycles(50));
        let attacked = CpuTime::new(Cycles(150), Cycles(60));
        let extra = attacked.saturating_sub(clean);
        assert_eq!(extra, CpuTime::new(Cycles(50), Cycles(10)));
        assert!((attacked.inflation_over(clean) - 1.4).abs() < 1e-12);
        assert_eq!(clean.saturating_sub(attacked), CpuTime::ZERO);
        assert_eq!(CpuTime::ZERO.inflation_over(CpuTime::ZERO), 1.0);
        assert_eq!(attacked.inflation_over(CpuTime::ZERO), f64::INFINITY);
    }

    #[test]
    fn display_contains_components() {
        let t = CpuTime::new(Cycles(3), Cycles(4));
        let s = format!("{t}");
        assert!(s.contains("utime"));
        assert!(s.contains("stime"));
    }
}
