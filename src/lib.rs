//! # trustmeter
//!
//! A library-scale reproduction of **"On Trustworthiness of CPU Usage
//! Metering and Accounting"** (Mei Liu and Xuhua Ding, ICDCS Workshops
//! 2010): the commodity tick-based CPU accounting scheme, the seven attacks
//! that let a dishonest utility-computing provider inflate a customer's CPU
//! bill without touching the kernel or the customer's binary, and the three
//! defensive properties the paper argues a trustworthy metering platform
//! needs — source integrity, execution integrity and fine-grained metering.
//!
//! The crate is a facade over the workspace:
//!
//! | Component | Crate | What it provides |
//! |-----------|-------|------------------|
//! | [`core`]  | `trustmeter-core` | metering schemes (tick, TSC, process-aware), measured launch, execution witnesses, attestation, billing, overcharge analysis |
//! | [`kernel`] | `trustmeter-kernel` | the simulated single-core Linux machine (scheduler, timer ticks, ptrace, paging, loader, devices) |
//! | [`workloads`] | `trustmeter-workloads` | the paper's four victim programs (O, Pi, Whetstone, Brute) plus native reference kernels |
//! | [`attacks`] | `trustmeter-attacks` | the seven attacks of §IV |
//! | [`experiments`] | `trustmeter-experiments` | figure-by-figure reproduction of the evaluation (§V) and the defense/ablation studies |
//! | [`fleet`] | `trustmeter-fleet` | the streaming multi-tenant metering service: worker-pool ingestion with backpressure and per-tenant fairness, per-tenant ledgers, overcharge auditing, a tamper-evident write-ahead evidence ledger (hash-chained journal, sealed blocks, inclusion proofs, dispute settlement) with crash recovery and compaction, metrics exporter |
//! | [`sim`] | `trustmeter-sim` | the discrete-event simulation substrate |
//!
//! ## Quick start
//!
//! ```
//! use trustmeter::prelude::*;
//!
//! // A customer submits the Whetstone benchmark to a (dishonest) provider.
//! let scenario = Scenario::new(Workload::Whetstone, 0.002);
//! let clean = scenario.run_clean();
//!
//! // Launch-time attack: the shell injects a CPU-bound loop before execve.
//! // The bill grows, and the measured launch (source integrity) flags the
//! // injected code — fine-grained metering alone would not help, because
//! // the injected loop really does run in the victim's context.
//! let shelled = scenario.run_attacked(&ShellAttack::paper_default(0.002));
//! assert!(shelled.billed_total_secs() > clean.billed_total_secs() * 1.1);
//! let injected = shelled.unexpected_images(&clean.measured_images);
//! assert_eq!(injected, vec!["shell-injected-loop"]);
//!
//! // Runtime attack: the fork/wait scheduling attacker inflates the bill
//! // without adding any code; fine-grained (TSC) metering is immune.
//! let sched = scenario.run_attacked(&SchedulingAttack::paper_default(0.002, -10));
//! assert!(sched.billed_total_secs() > clean.billed_total_secs() * 1.1);
//! assert!(sched.truth_total_secs() < clean.truth_total_secs() * 1.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use trustmeter_attacks as attacks;
pub use trustmeter_core as core;
pub use trustmeter_experiments as experiments;
pub use trustmeter_fleet as fleet;
pub use trustmeter_kernel as kernel;
pub use trustmeter_sim as sim;
pub use trustmeter_workloads as workloads;

/// The most commonly used types, re-exported for `use trustmeter::prelude::*`.
pub mod prelude {
    pub use trustmeter_attacks::{
        Attack, ExceptionFloodAttack, ForkAttacker, InterpositionAttack, InterruptFloodAttack,
        MemoryHog, PreloadConstructorAttack, Privilege, SchedulingAttack, ShellAttack, Thrasher,
        ThrashingAttack,
    };
    pub use trustmeter_core::{
        AttackClass, AttestationKey, CpuTime, Digest, ExecutionWitness, ImageKind, Invoice,
        MeasuredImage, MeasurementLog, MeterBank, MeterEvent, MeteringScheme, Mode,
        OverchargeReport, PcrBank, ProcessAwareAccounting, Quote, RateCard, SchemeKind, Sha256,
        SourceIntegrityReport, TaskId, TickAccounting, TrustAssessment, TrustProperty,
        TscAccounting, Verdict,
    };
    pub use trustmeter_experiments::{
        all_figures, comparison_table, defenses, ExperimentConfig, FigureData, Scenario,
        ScenarioOutcome,
    };
    pub use trustmeter_fleet::{
        compact, excluded_metric_families, metering_exposition, parse_journal, quote_nonce,
        recovery_window, span_id, strip_families, strip_self_accounting, Anomaly, AttackSpec,
        AuditVerdict, Auditor, AuditorState, BackpressurePolicy, BatchSubmitError, BlockHeader,
        BufferPool, Checkpoint, CheckpointCadence, CounterCell, DisputeError, DisputeResolution,
        FairQueue, FaultInjectingSink, FaultKind, FaultProbe, FaultSchedule, FaultStats, FileSink,
        Fleet, FleetConfig, FleetHealth, FleetIngest, FleetReport, FleetService, FleetStream,
        FsyncPolicy, InclusionProof, IngestConfig, IngestHandle, IngestOutcome, IngestStats,
        InvoicePosting, JobId, JobSpec, JobVerdict, Journal, JournalEntry, JournalError,
        JournalSink, JournalStats, Ledger, LedgerVerification, MemorySink, MetricsRegistry,
        PipelineTracer, PlannedFault, PlannedWorkerFault, PoisonNotice, PoolStats, ProofError,
        ProofStep, RecoveryError, RecoveryReport, ReferenceOutcome, RetryPolicy, RunRecord,
        SamplingPolicy, SealKey, SegmentConfig, SegmentedFileSink, SinkStats, Span, SpanWall,
        Stage, StageObservation, SubmitError, SupervisorPolicy, TailStatus, Tenant,
        TenantAuditSummary, TenantDirectory, TenantId, TenantLedger, TracerStats, WorkerFaultKind,
        WorkerFaultSchedule,
    };
    pub use trustmeter_kernel::{
        Kernel, KernelConfig, NicFlood, Op, OpOutcome, OpsProgram, Program, RunResult,
        SchedulerKind, SharedLibrary, SyscallOp,
    };
    pub use trustmeter_sim::{CpuFrequency, Cycles, Nanos, Series};
    pub use trustmeter_workloads::{native, VictimProgram, VictimSpec, Workload};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let _ = CpuFrequency::E7200;
        let _ = Workload::ALL;
        let card = RateCard::per_cpu_hour(0.10);
        assert!(card.price_per_unit > 0.0);
    }
}
