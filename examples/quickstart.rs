//! Quickstart: run one victim program on the simulated utility-computing
//! platform, once honestly and once under the shell attack, and compare what
//! the provider bills against the fine-grained ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use trustmeter::prelude::*;

fn main() {
    // Scale 0.02 ⇒ the Whetstone victim is about 3.8 CPU-seconds of
    // simulated work (2 % of the paper's full-size run); everything finishes
    // in a couple of host seconds.
    let scale = 0.02;
    let scenario = Scenario::new(Workload::Whetstone, scale);

    println!("== clean run (honest platform) ==");
    let clean = scenario.run_clean();
    print_outcome(&clean);

    println!("\n== attacked run (shell attack, §IV-A1) ==");
    let attack = ShellAttack::paper_default(scale);
    let attacked = scenario.run_attacked(&attack);
    print_outcome(&attacked);

    // The bill the provider would present, per CPU hour.
    let card = RateCard::per_cpu_hour(0.10);
    let freq = CpuFrequency::E7200;
    let clean_invoice = card.invoice(clean.victim_billed, freq);
    let attacked_invoice = card.invoice(attacked.victim_billed, freq);
    println!("\nclean bill:    {:.6} $", clean_invoice.total);
    println!("attacked bill: {:.6} $", attacked_invoice.total);
    println!(
        "overcharge:    {:.6} $",
        attacked_invoice.overcharge_vs(&clean_invoice)
    );

    // Source integrity: the measured launch flags exactly the injected code.
    let injected = attacked.unexpected_images(&clean.measured_images);
    println!("\nimages not in the expected closure: {injected:?}");

    // Quantified verdict.
    let report = OverchargeReport::compare(attacked.victim_billed, clean.victim_billed, freq);
    println!("verdict: {report}");
}

fn print_outcome(outcome: &ScenarioOutcome) {
    println!(
        "billed (tick):   {:.3} s user + {:.3} s system = {:.3} s",
        outcome.billed_utime_secs(),
        outcome.billed_stime_secs(),
        outcome.billed_total_secs()
    );
    println!(
        "ground truth:    {:.3} s total (TSC), elapsed {:.3} s, {} ticks",
        outcome.truth_total_secs(),
        outcome.elapsed_secs,
        outcome.stats.ticks
    );
}
