//! Local stub of `criterion` for an offline build environment.
//!
//! Provides the slice of the criterion API this workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`, `Bencher::iter`,
//! `Bencher::iter_batched`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock measurement loop instead of criterion's statistical engine.
//! Each benchmark is warmed up, run for a bounded number of samples, and
//! reported as mean time per iteration on stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much work `iter_batched` setup amortizes per batch. The stub runs
/// one routine call per setup call regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per batch in real criterion.
    SmallInput,
    /// Large inputs: one iteration per batch in real criterion.
    LargeInput,
    /// Per-iteration setup.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(name, samples, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs the measured routine.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Measures `routine` on fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Like [`Bencher::iter_batched`], passing the input by mutable
    /// reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // One unmeasured pass to warm caches and page in code.
    let mut warmup = Bencher {
        samples: 1,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut warmup);
    let mut bencher = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let mean = if bencher.iters == 0 {
        Duration::ZERO
    } else {
        bencher.total / bencher.iters as u32
    };
    println!(
        "  {name}: {:.3} ms/iter ({} iters)",
        mean.as_secs_f64() * 1e3,
        bencher.iters
    );
}

/// Bundles benchmark functions into a callable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.finish();
        // 1 warmup + 3 samples.
        assert_eq!(count, 4);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
