//! Results of a simulated run: per-process usage under every metering
//! scheme plus kernel statistics.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use trustmeter_core::{CpuTime, SchemeKind, TaskId};
use trustmeter_sim::{CpuFrequency, Cycles};

/// Usage of one process (thread group) under every registered metering
/// scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessUsage {
    /// Thread-group id.
    pub tgid: TaskId,
    /// Program name.
    pub name: String,
    /// Number of tasks (1 for single-threaded processes).
    pub threads: u32,
    /// Usage as reported by each scheme, summed over the thread group.
    pub by_scheme: BTreeMap<SchemeKind, CpuTime>,
    /// Exit code of the group leader, if it exited.
    pub exit_code: Option<i32>,
}

impl ProcessUsage {
    /// Usage under the given scheme (zero if that scheme was not
    /// registered).
    pub fn usage(&self, scheme: SchemeKind) -> CpuTime {
        self.by_scheme.get(&scheme).copied().unwrap_or_default()
    }

    /// Usage under the commodity tick scheme — what `getrusage`/`time`
    /// would report and what the provider bills.
    pub fn billed(&self) -> CpuTime {
        self.usage(SchemeKind::Tick)
    }

    /// Fine-grained ground-truth usage.
    pub fn ground_truth(&self) -> CpuTime {
        self.usage(SchemeKind::Tsc)
    }
}

/// Counters describing what the kernel did during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Timer interrupts handled.
    pub ticks: u64,
    /// Timer interrupts skipped in one step because the CPU was idle (no
    /// runnable task): the kernel advances the clock to the next non-tick
    /// event instead of paying the handler once per jiffy.
    pub ticks_coalesced: u64,
    /// Context switches performed.
    pub context_switches: u64,
    /// Device interrupts handled (NIC + disk).
    pub device_interrupts: u64,
    /// System calls serviced.
    pub syscalls: u64,
    /// Processes/threads created.
    pub tasks_created: u64,
    /// Tasks that exited.
    pub tasks_exited: u64,
    /// Minor page faults serviced.
    pub minor_faults: u64,
    /// Major page faults serviced.
    pub major_faults: u64,
    /// Debug-exception (breakpoint) traps serviced.
    pub debug_traps: u64,
    /// Signals delivered.
    pub signals_delivered: u64,
}

/// The complete result of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// CPU frequency of the simulated machine (for converting to seconds).
    pub frequency: CpuFrequency,
    /// Virtual time at which the run ended.
    pub finished_at: Cycles,
    /// Per-process usages, keyed by thread-group id.
    pub processes: Vec<ProcessUsage>,
    /// Kernel activity counters.
    pub stats: KernelStats,
    /// Whether the run ended because the horizon was reached rather than
    /// because every task exited.
    pub hit_horizon: bool,
}

impl RunResult {
    /// Looks up a process by its program name (first match).
    pub fn process_named(&self, name: &str) -> Option<&ProcessUsage> {
        self.processes.iter().find(|p| p.name == name)
    }

    /// Looks up a process by thread-group id.
    pub fn process(&self, tgid: TaskId) -> Option<&ProcessUsage> {
        self.processes.iter().find(|p| p.tgid == tgid)
    }

    /// Elapsed virtual wall-clock time in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.frequency.secs_for(self.finished_at)
    }

    /// Billed (tick-accounted) CPU seconds of the named process.
    pub fn billed_secs(&self, name: &str) -> f64 {
        self.process_named(name)
            .map(|p| p.billed().total_secs(self.frequency))
            .unwrap_or(0.0)
    }

    /// Ground-truth CPU seconds of the named process.
    pub fn ground_truth_secs(&self, name: &str) -> f64 {
        self.process_named(name)
            .map(|p| p.ground_truth().total_secs(self.frequency))
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunResult {
        let mut by_scheme = BTreeMap::new();
        by_scheme.insert(SchemeKind::Tick, CpuTime::new(Cycles(2_000), Cycles(500)));
        by_scheme.insert(SchemeKind::Tsc, CpuTime::new(Cycles(1_900), Cycles(450)));
        RunResult {
            frequency: CpuFrequency::from_mhz(1000),
            finished_at: Cycles(10_000),
            processes: vec![ProcessUsage {
                tgid: TaskId(2),
                name: "victim".to_string(),
                threads: 1,
                by_scheme,
                exit_code: Some(0),
            }],
            stats: KernelStats::default(),
            hit_horizon: false,
        }
    }

    #[test]
    fn lookups() {
        let r = sample();
        assert!(r.process_named("victim").is_some());
        assert!(r.process_named("nope").is_none());
        assert!(r.process(TaskId(2)).is_some());
        assert!(r.process(TaskId(9)).is_none());
    }

    #[test]
    fn usage_accessors() {
        let r = sample();
        let p = r.process_named("victim").unwrap();
        assert_eq!(p.billed(), CpuTime::new(Cycles(2_000), Cycles(500)));
        assert_eq!(p.ground_truth(), CpuTime::new(Cycles(1_900), Cycles(450)));
        assert_eq!(p.usage(SchemeKind::ProcessAware), CpuTime::ZERO);
    }

    #[test]
    fn second_conversions() {
        let r = sample();
        assert!((r.elapsed_secs() - 1e-5).abs() < 1e-12);
        assert!(r.billed_secs("victim") > r.ground_truth_secs("victim"));
        assert_eq!(r.billed_secs("missing"), 0.0);
    }
}
