//! Reproduces the paper's Figure 7/8 sweep at the command line: the
//! process-scheduling attack against Whetstone and Brute across the
//! attacker's nice values, printing the victim's and the attacker's measured
//! CPU time and the conservation of their sum.
//!
//! ```text
//! cargo run --release --example scheduling_attack_sweep [-- scale]
//! ```

use trustmeter::prelude::*;
use trustmeter_experiments::{fig7_sched_whetstone, fig8_sched_brute};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.005);
    let cfg = ExperimentConfig {
        scale,
        ..Default::default()
    };
    println!("process-scheduling attack sweep, workload scale {scale}\n");

    for fig in [fig7_sched_whetstone(&cfg), fig8_sched_brute(&cfg)] {
        println!("--- {} ---", fig.title);
        let victim = &fig.series[0];
        let attacker = &fig.series[1];
        println!(
            "{:<12} {:>14} {:>14} {:>14}",
            "attacker", victim.name, attacker.name, "sum"
        );
        for ((label, v), (_, a)) in victim.iter().zip(attacker.iter()) {
            println!("{:<12} {:>13.2}s {:>13.2}s {:>13.2}s", label, v, a, v + a);
        }
        println!();
    }

    println!(
        "Reading the table: under the commodity tick accounting the victim's measured time\n\
         rises with the attacker's priority while the attacker's falls, and the sum stays\n\
         roughly constant — whole jiffies consumed by the fork/wait attacker are charged to\n\
         whoever is current when the timer interrupt fires (paper §IV-B1, Figs. 7 and 8)."
    );
}
