//! Configuration, RNG, and error type backing the [`proptest!`] macro.
//!
//! [`proptest!`]: crate::proptest

use std::fmt;

/// Per-test configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A property-case failure raised by the `prop_assert*` macros.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic SplitMix64 stream feeding all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The fixed-seed generator used by [`proptest!`](crate::proptest):
    /// every run of a property sees the same input sequence.
    pub fn deterministic() -> TestRng {
        TestRng {
            state: 0x7e57_da7a_5eed_0001,
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns a uniform value in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }
}
