//! Task (process/thread) control blocks.
//!
//! A [`Task`] is the kernel's bookkeeping for one schedulable entity.
//! Threads are tasks that share a thread-group id with their spawner,
//! mirroring Linux where threads are scheduled exactly like processes — the
//! detail responsible for the Brute anomaly in the paper's Fig. 8.

use crate::program::{Op, OpOutcome, Program};
use crate::signals::Signal;
use std::collections::VecDeque;
use std::fmt;
use trustmeter_core::{ExceptionKind, ExecutionWitness, MeasurementLog, Mode, TaskId};
use trustmeter_sim::{Cycles, SimRng};

/// Why a task is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Blocked in `wait()` for a child to exit or stop.
    WaitChild,
    /// Blocked on a disk request.
    DiskIo,
    /// Sleeping in `nanosleep()`.
    Sleep,
}

/// The scheduling state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Runnable, waiting for the CPU.
    Ready,
    /// Currently executing on the CPU.
    Running,
    /// Blocked waiting for an event.
    Blocked(BlockReason),
    /// Stopped by `SIGSTOP`/ptrace; only `SIGCONT`/`PTRACE_CONT` resumes it.
    Stopped,
    /// Exited but not yet reaped by its parent.
    Zombie,
    /// Fully torn down.
    Dead,
}

impl TaskState {
    /// Whether the task can still consume CPU in the future.
    pub fn is_alive(self) -> bool {
        !matches!(self, TaskState::Zombie | TaskState::Dead)
    }

    /// Whether the task is on a run queue.
    pub fn is_runnable(self) -> bool {
        matches!(self, TaskState::Ready | TaskState::Running)
    }
}

impl fmt::Display for TaskState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskState::Ready => "ready",
            TaskState::Running => "running",
            TaskState::Blocked(BlockReason::WaitChild) => "blocked(wait)",
            TaskState::Blocked(BlockReason::DiskIo) => "blocked(io)",
            TaskState::Blocked(BlockReason::Sleep) => "blocked(sleep)",
            TaskState::Stopped => "stopped",
            TaskState::Zombie => "zombie",
            TaskState::Dead => "dead",
        };
        f.write_str(s)
    }
}

/// Memory bookkeeping for one task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskMem {
    /// Pages the task has allocated (its footprint).
    pub allocated_pages: u64,
    /// Pages currently resident in physical memory.
    pub resident_pages: u64,
}

/// A micro-operation: the kernel-internal lowering of an [`Op`].
///
/// Each op turns into a short queue of micro-ops; the run loop executes the
/// front micro-op of the current task, splitting time-consuming micro-ops at
/// event boundaries (timer ticks, interrupts).
pub(crate) enum Micro {
    /// User-mode execution.
    User { remaining: Cycles },
    /// Kernel-mode execution on behalf of the task (syscall service,
    /// signal delivery, context-switch cost).
    Kernel { remaining: Cycles },
    /// Kernel-mode execution wrapped in exception-enter/exit events.
    Exception {
        kind: ExceptionKind,
        remaining: Cycles,
        entered: bool,
    },
    /// Apply a syscall's side effect (fork, block, arm breakpoint, ...).
    /// Effects are instantaneous; their service time is modelled by the
    /// preceding `Kernel` micro-op.
    Effect(Effect),
    /// Check a watched-address access against the task's armed breakpoint;
    /// expands into a debug exception + trap stop when armed.
    WatchedAccess { addr: u64, count_left: u64 },
}

impl fmt::Debug for Micro {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Micro::User { remaining } => write!(f, "User({remaining})"),
            Micro::Kernel { remaining } => write!(f, "Kernel({remaining})"),
            Micro::Exception {
                kind, remaining, ..
            } => write!(f, "Exception({kind}, {remaining})"),
            Micro::Effect(e) => write!(f, "Effect({e:?})"),
            Micro::WatchedAccess { addr, count_left } => {
                write!(f, "WatchedAccess(0x{addr:x}, {count_left} left)")
            }
        }
    }
}

/// Instantaneous kernel side effects produced by syscalls and traps.
pub(crate) enum Effect {
    Fork {
        child: Box<dyn Program>,
        nice: i8,
    },
    SpawnThread {
        thread: Box<dyn Program>,
    },
    Wait,
    Exit {
        code: i32,
    },
    Sleep {
        duration: Cycles,
    },
    DiskRequest {
        bytes: u64,
    },
    Dlopen {
        library: String,
    },
    Dlclose {
        library: String,
    },
    SetNice {
        nice: i8,
    },
    Kill {
        target: TaskId,
        signal: Signal,
    },
    PtraceAttach {
        target: TaskId,
    },
    PtraceSetBreakpoint {
        target: TaskId,
        addr: u64,
    },
    PtraceCont {
        target: TaskId,
    },
    PtraceDetach {
        target: TaskId,
    },
    Getrusage,
    /// The current task hit an armed breakpoint: stop it and notify the
    /// tracer.
    TrapStop,
}

impl fmt::Debug for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Effect::Fork { .. } => "fork",
            Effect::SpawnThread { .. } => "spawn-thread",
            Effect::Wait => "wait",
            Effect::Exit { .. } => "exit",
            Effect::Sleep { .. } => "sleep",
            Effect::DiskRequest { .. } => "disk-request",
            Effect::Dlopen { .. } => "dlopen",
            Effect::Dlclose { .. } => "dlclose",
            Effect::SetNice { .. } => "set-nice",
            Effect::Kill { .. } => "kill",
            Effect::PtraceAttach { .. } => "ptrace-attach",
            Effect::PtraceSetBreakpoint { .. } => "ptrace-breakpoint",
            Effect::PtraceCont { .. } => "ptrace-cont",
            Effect::PtraceDetach { .. } => "ptrace-detach",
            Effect::Getrusage => "getrusage",
            Effect::TrapStop => "trap-stop",
        };
        f.write_str(s)
    }
}

/// The kernel's task table: a slab indexed by pid.
///
/// Pids are allocated densely from 1 and tasks are never removed (exited
/// tasks are retained for end-of-run accounting), so `TaskId(p)` lives at
/// slot `p - 1` and every lookup is a single bounds-checked array index.
/// This is the hottest structure in the simulator — the run loop touches
/// it several times per micro-op — which is why it is a slab and not a
/// `BTreeMap`.
#[derive(Default)]
pub(crate) struct TaskTable {
    slots: Vec<Task>,
}

impl TaskTable {
    /// An empty table.
    pub(crate) fn new() -> TaskTable {
        TaskTable { slots: Vec::new() }
    }

    /// The task with id `id`, if it has ever been admitted.
    #[inline]
    pub(crate) fn get(&self, id: TaskId) -> Option<&Task> {
        self.slots.get((id.0 as usize).wrapping_sub(1))
    }

    /// Mutable access to the task with id `id`.
    #[inline]
    pub(crate) fn get_mut(&mut self, id: TaskId) -> Option<&mut Task> {
        self.slots.get_mut((id.0 as usize).wrapping_sub(1))
    }

    /// Admits a task. Ids must arrive densely (the kernel's pid allocator
    /// guarantees this); the slab slot is the pid minus one.
    pub(crate) fn insert(&mut self, task: Task) {
        debug_assert_eq!(
            task.id.0 as usize,
            self.slots.len() + 1,
            "pids must be allocated densely from 1"
        );
        self.slots.push(task);
    }

    /// Number of tasks ever admitted.
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Iterates every task in pid order.
    pub(crate) fn iter(&self) -> std::slice::Iter<'_, Task> {
        self.slots.iter()
    }
}

/// The task control block.
pub struct Task {
    /// Task id (unique).
    pub id: TaskId,
    /// Thread-group id; equals `id` for a process leader, the spawner's
    /// `tgid` for threads.
    pub tgid: TaskId,
    /// Parent task id (`None` for the initial task).
    pub parent: Option<TaskId>,
    /// Program name (for reporting).
    pub name: String,
    /// Nice value (−20 … 19, lower = higher priority).
    pub nice: i8,
    /// Scheduling state.
    pub state: TaskState,
    /// Current privilege mode (what the task will resume in).
    pub mode: Mode,
    /// The program the task executes (`None` once exited).
    pub(crate) program: Option<Box<dyn Program>>,
    /// Pending micro-ops lowered from the current op.
    pub(crate) micros: VecDeque<Micro>,
    /// Outcome delivered to the program at the next `next_op` call.
    pub(crate) last_outcome: OpOutcome,
    /// Deterministic per-task RNG.
    pub(crate) rng: SimRng,
    /// Memory bookkeeping.
    pub mem: TaskMem,
    /// Ids of live children.
    pub children: Vec<TaskId>,
    /// Tracer attached via ptrace, if any.
    pub traced_by: Option<TaskId>,
    /// Armed hardware-breakpoint address (DR0), if any.
    pub breakpoint: Option<u64>,
    /// Exit status (valid once `Zombie`/`Dead`).
    pub exit_code: Option<i32>,
    /// Measurement log for source integrity (measured launch).
    pub measurements: MeasurementLog,
    /// Execution witness for execution integrity.
    pub witness: ExecutionWitness,
    /// Number of ops fetched from the program (op-level progress counter).
    pub ops_executed: u64,
    /// Number of voluntary context switches (blocks).
    pub voluntary_switches: u64,
    /// Number of times this task was preempted.
    pub involuntary_switches: u64,
    /// Environment: libraries to preload at execve (the `LD_PRELOAD`
    /// attack vector).
    pub ld_preload: Vec<String>,
}

impl fmt::Debug for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Task")
            .field("id", &self.id)
            .field("tgid", &self.tgid)
            .field("name", &self.name)
            .field("nice", &self.nice)
            .field("state", &self.state)
            .field("mode", &self.mode)
            .field("ops_executed", &self.ops_executed)
            .finish()
    }
}

impl Task {
    /// Creates a new task control block.
    pub(crate) fn new(
        id: TaskId,
        tgid: TaskId,
        parent: Option<TaskId>,
        nice: i8,
        program: Box<dyn Program>,
        rng: SimRng,
    ) -> Task {
        let name = program.name().to_string();
        Task {
            id,
            tgid,
            parent,
            name,
            nice,
            state: TaskState::Ready,
            mode: Mode::User,
            program: Some(program),
            micros: VecDeque::new(),
            last_outcome: OpOutcome::None,
            rng,
            mem: TaskMem::default(),
            children: Vec::new(),
            traced_by: None,
            breakpoint: None,
            exit_code: None,
            measurements: MeasurementLog::new(),
            witness: ExecutionWitness::new(),
            ops_executed: 0,
            voluntary_switches: 0,
            involuntary_switches: 0,
            ld_preload: Vec::new(),
        }
    }

    /// Whether this task is a thread (shares a thread group with another
    /// task) rather than a thread-group leader.
    pub fn is_thread(&self) -> bool {
        self.id != self.tgid
    }

    /// Whether the task still has micro-ops or program ops to run.
    pub fn has_pending_work(&self) -> bool {
        !self.micros.is_empty() || self.program.is_some()
    }

    /// Pushes a micro-op to the front of the queue (used for signal
    /// delivery costs that must run before whatever the task was doing).
    pub(crate) fn push_front_micro(&mut self, micro: Micro) {
        self.micros.push_front(micro);
    }

    /// Appends a user-mode computation to the micro queue (used by the
    /// loader to inject constructor/destructor work).
    pub(crate) fn push_user_work(&mut self, cycles: Cycles) {
        if !cycles.is_zero() {
            self.micros.push_back(Micro::User { remaining: cycles });
        }
    }

    /// Fetches the next op from the program, handing it the last outcome.
    pub(crate) fn fetch_op(&mut self) -> Option<Op> {
        let program = self.program.as_mut()?;
        let mut ctx = crate::program::ProgramCtx {
            pid: self.id,
            last: std::mem::take(&mut self.last_outcome),
            rng: &mut self.rng,
        };
        let op = program.next_op(&mut ctx);
        if op.is_some() {
            self.ops_executed += 1;
        }
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::OpsProgram;

    fn sample_task(id: u32, tgid: u32) -> Task {
        Task::new(
            TaskId(id),
            TaskId(tgid),
            None,
            0,
            Box::new(OpsProgram::compute_only("t", Cycles(10))),
            SimRng::seed_from(1),
        )
    }

    #[test]
    fn state_predicates() {
        assert!(TaskState::Ready.is_alive());
        assert!(TaskState::Running.is_runnable());
        assert!(TaskState::Blocked(BlockReason::Sleep).is_alive());
        assert!(!TaskState::Blocked(BlockReason::Sleep).is_runnable());
        assert!(!TaskState::Zombie.is_alive());
        assert!(!TaskState::Dead.is_alive());
        assert!(TaskState::Stopped.is_alive());
        assert_eq!(
            format!("{}", TaskState::Blocked(BlockReason::DiskIo)),
            "blocked(io)"
        );
    }

    #[test]
    fn new_task_defaults() {
        let t = sample_task(5, 5);
        assert_eq!(t.state, TaskState::Ready);
        assert_eq!(t.mode, Mode::User);
        assert!(!t.is_thread());
        assert!(t.has_pending_work());
        assert_eq!(t.ops_executed, 0);
        assert!(t.measurements.is_empty());
        assert!(format!("{t:?}").contains("Task"));
    }

    #[test]
    fn thread_detection() {
        let t = sample_task(6, 5);
        assert!(t.is_thread());
    }

    #[test]
    fn fetch_op_counts_and_delivers_outcome() {
        let mut t = sample_task(1, 1);
        t.last_outcome = OpOutcome::Completed;
        let op = t.fetch_op();
        assert!(op.is_some());
        assert_eq!(t.ops_executed, 1);
        // Outcome is consumed by the fetch.
        assert_eq!(t.last_outcome, OpOutcome::None);
        assert!(t.fetch_op().is_none());
    }

    #[test]
    fn task_table_is_a_dense_slab() {
        let mut table = TaskTable::new();
        table.insert(sample_task(1, 1));
        table.insert(sample_task(2, 1));
        assert_eq!(table.len(), 2);
        assert_eq!(table.get(TaskId(1)).unwrap().id, TaskId(1));
        assert_eq!(table.get(TaskId(2)).unwrap().id, TaskId(2));
        assert!(table.get(TaskId(0)).is_none(), "pid 0 is never allocated");
        assert!(table.get(TaskId(3)).is_none());
        table.get_mut(TaskId(2)).unwrap().nice = -5;
        assert_eq!(table.get(TaskId(2)).unwrap().nice, -5);
        let ids: Vec<TaskId> = table.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![TaskId(1), TaskId(2)]);
    }

    #[test]
    fn micro_queue_manipulation() {
        let mut t = sample_task(1, 1);
        t.push_user_work(Cycles(100));
        t.push_user_work(Cycles::ZERO); // ignored
        t.push_front_micro(Micro::Kernel {
            remaining: Cycles(5),
        });
        assert_eq!(t.micros.len(), 2);
        assert!(matches!(t.micros.front(), Some(Micro::Kernel { .. })));
        assert!(format!("{:?}", t.micros.front().unwrap()).contains("Kernel"));
    }
}
