//! Fault-injection tests: the journal pipeline under a hostile disk.
//!
//! Every failure mode is driven through [`FaultInjectingSink`] with a
//! deterministic schedule, so each scenario reproduces byte for byte:
//! transient `EIO`s absorbed by the retry policy, terminal faults
//! (permanent / disk-full / torn / crash) that quarantine the pipeline,
//! failover to a fresh sink with chain continuity, and submission-side
//! recovery — `Accepted`-but-unreleased jobs resubmitted deterministically
//! after a kill. The property tests drive seeded *random* schedules and
//! hold the core invariants: no panic, released ⇒ journaled, and
//! post-failover recovery bit-identical at 1/2/8 workers.

use proptest::prelude::*;
use trustmeter::prelude::*;

const SCALE: f64 = 0.001;

/// A mixed batch: four tenants, all four workloads, clean runs and a mix
/// of launch-time and runtime attacks (the `tests/fleet.rs` batch).
fn batch(n: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let tenant = TenantId((i % 4) as u32 + 1);
            let workload = Workload::ALL[(i % 4) as usize];
            match i % 5 {
                0 => JobSpec::attacked(i, tenant, workload, SCALE, AttackSpec::Shell),
                1 => JobSpec::attacked(
                    i,
                    tenant,
                    workload,
                    SCALE,
                    AttackSpec::Scheduling { nice: -10 },
                ),
                _ => JobSpec::clean(i, tenant, workload, SCALE),
            }
        })
        .collect()
}

/// A service on seed 77 with the four test tenants registered, optionally
/// journaled — recovery requires the restarted service to be configured
/// like the original.
fn service77(workers: usize, journal: Option<Journal>) -> FleetService {
    let mut service = FleetService::new(FleetConfig::new(workers, 77));
    for id in 1..=4u32 {
        service.register(Tenant::new(
            TenantId(id),
            format!("tenant-{id}"),
            RateCard::per_cpu_second(0.01),
        ));
    }
    match journal {
        Some(journal) => service.with_journal(journal),
        None => service,
    }
}

/// An in-memory journal behind a fault-injecting wrapper.
fn faulty_journal(schedule: FaultSchedule) -> (Journal, FaultProbe) {
    let (sink, probe) = FaultInjectingSink::wrap(Box::new(MemorySink::new()), schedule);
    let journal = Journal::with_sink(Box::new(sink)).expect("fresh sink opens");
    (journal, probe)
}

fn count_entries(entries: &[JournalEntry], label: &str) -> usize {
    entries.iter().filter(|e| e.label() == label).count()
}

fn run_ids(entries: &[JournalEntry]) -> Vec<JobId> {
    entries
        .iter()
        .filter_map(|e| match e {
            JournalEntry::Run(record) => Some(record.job.id),
            _ => None,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Quarantine: exhausted retries stop releases, observably
// ---------------------------------------------------------------------------

#[test]
fn quarantine_is_observable_and_releases_nothing_unjournaled() {
    let jobs = batch(6);
    // The 6 Accepted lines land at 0..=5; the first Run group commit
    // starts at line 6 and hits a full disk that never clears.
    let (journal, probe) = faulty_journal(FaultSchedule::none().disk_full_at(6));
    let mut service = service77(2, Some(journal.clone()));
    let retry = RetryPolicy::new(2).with_base_ticks(1);
    let mut stream = service.stream(IngestConfig::new(2).with_retry_policy(retry));
    for job in &jobs {
        stream
            .submit(job.clone())
            .expect("accepted lines precede the fault");
    }
    while !stream.health().quarantined {
        stream.pump();
        std::thread::yield_now();
    }

    let health = stream.health();
    assert_eq!(health.journal_failures, 1);
    assert_eq!(health.retries, 1, "2 attempts = 1 retry before exhaustion");
    assert!(health.stalled >= 1, "the failed batch is parked, not lost");
    assert_eq!(health.pending_accepted, 6);
    assert!(health
        .last_error
        .expect("quarantine records the error")
        .contains("disk-full"));

    // Submissions fail fast, and pumping releases nothing.
    assert_eq!(
        stream.submit(jobs[0].clone()),
        Err(SubmitError::Quarantined)
    );
    assert_eq!(stream.pump(), 0);

    // finish() still joins every worker, but the billing boundary stayed
    // closed: nothing was released, because nothing could be journaled.
    let report = stream.finish();
    assert!(report.records.is_empty(), "quarantine released nothing");
    assert!(report.ledger.iter().next().is_none(), "nothing was billed");

    // The quarantine is observable in the metrics exposition.
    let text = service.metrics_text();
    assert!(text.contains("fleet_quarantined 1"), "dump:\n{text}");
    assert!(
        text.contains("fleet_journal_failures_total 1"),
        "dump:\n{text}"
    );
    assert!(
        text.contains("fleet_journal_retries_total 1"),
        "dump:\n{text}"
    );

    // The dead sink still serves reads — recovery tooling must be able to
    // inspect what made it to disk: the accepted backlog, and no runs.
    assert!(probe.is_dead());
    let (entries, tail) = journal.entries().unwrap();
    assert_eq!(tail, TailStatus::Clean);
    assert_eq!(entries.len(), 6);
    assert!(entries.iter().all(|e| e.label() == "accepted"));
}

// ---------------------------------------------------------------------------
// Failover: drain the stalled prefix, recover bit-identically
// ---------------------------------------------------------------------------

#[test]
fn failover_recovery_is_bit_identical_across_1_2_8_workers() {
    let jobs = batch(12);
    let mut baseline = service77(4, None);
    let baseline_report = baseline.process(&jobs);
    let baseline_metering = metering_exposition(&baseline.metrics_text());

    let mut recovered_expositions = Vec::new();
    for workers in [1usize, 2, 8] {
        // The 12 Accepted lines land first; the first Run commit (line 12)
        // hits a permanent device failure with no retries to soften it.
        let (journal, probe) = faulty_journal(FaultSchedule::none().permanent_at(12));
        let mut service = service77(workers, Some(journal.clone()));
        let config = IngestConfig::new(workers).with_retry_policy(RetryPolicy::none());
        let mut stream = service.stream(config);
        for job in &jobs {
            stream
                .submit(job.clone())
                .expect("accepted lines precede the fault");
        }
        while !stream.health().quarantined {
            stream.pump();
            std::thread::yield_now();
        }
        assert!(probe.is_dead());
        assert!(stream.health().stalled >= 1);

        // Fail over to a fresh sink: the stalled prefix drains with chain
        // continuity, and the session returns to normal operation.
        stream
            .resume_with_sink(Box::new(MemorySink::new()))
            .expect("fresh sink accepts the failover");
        assert!(!stream.health().quarantined);
        let report = stream.finish();
        assert_eq!(
            report, baseline_report,
            "failover must not perturb results at {workers} workers"
        );
        let text = service.metrics_text();
        assert_eq!(metering_exposition(&text), baseline_metering);
        assert!(text.contains("fleet_quarantined 0"), "dump:\n{text}");
        assert!(
            text.contains("fleet_journal_failures_total 1"),
            "dump:\n{text}"
        );

        // The replacement sink replays *standalone*: it leads with a
        // checkpoint (the one entry allowed to adopt a foreign chain
        // anchor), then the re-journaled accepted backlog, then the
        // drained runs and their receipts.
        let (entries, tail) = journal.entries().unwrap();
        assert_eq!(tail, TailStatus::Clean);
        assert_eq!(entries[0].label(), "checkpoint");
        assert_eq!(count_entries(&entries, "accepted"), 12);
        assert_eq!(count_entries(&entries, "run"), 12);

        let mut recovered = service77(workers, None);
        let recovery = recovered
            .recover_latest(&entries)
            .expect("failover sink replays standalone");
        assert!(
            recovery.is_consistent(),
            "mismatches: {:?}",
            recovery.mismatches
        );
        assert_eq!(recovery.runs_replayed, 12);
        assert_eq!(recovery.accepted, 12);
        assert!(
            recovery.unreleased.is_empty(),
            "every accepted job released"
        );
        assert_eq!(recovered.ledger(), &baseline_report.ledger);
        let recovered_metering = metering_exposition(&recovered.metrics_text());
        assert_eq!(
            recovered_metering, baseline_metering,
            "recovered metering exposition must be byte-identical at {workers} workers"
        );
        recovered_expositions.push(recovered_metering);
    }
    assert_eq!(recovered_expositions[0], recovered_expositions[1]);
    assert_eq!(recovered_expositions[0], recovered_expositions[2]);
}

// ---------------------------------------------------------------------------
// Submission-side durability: Accepted entries survive the kill
// ---------------------------------------------------------------------------

#[test]
fn accepted_resubmission_reproduces_the_uninterrupted_run() {
    let jobs = batch(12);
    let mut baseline = service77(4, None);
    let baseline_report = baseline.process(&jobs);
    let baseline_metering = metering_exposition(&baseline.metrics_text());

    // Stream the first half to release, accept the second half, then kill
    // the process before anything more is released.
    let journal = Journal::in_memory();
    let mut service = service77(4, Some(journal.clone()));
    {
        let mut stream = service.stream(IngestConfig::new(4));
        for job in &jobs[..6] {
            stream.submit(job.clone()).expect("queue sized for batch");
        }
        while stream.verdicts().len() < 6 {
            stream.pump();
            std::thread::yield_now();
        }
        for job in &jobs[6..] {
            stream.submit(job.clone()).expect("queue sized for batch");
        }
        // Dropping the stream here is the kill: jobs 6..12 were accepted
        // (journaled write-ahead at submit) but never released.
    }
    drop(service);

    let (entries, tail) = journal.entries().unwrap();
    assert_eq!(tail, TailStatus::Clean);
    assert_eq!(count_entries(&entries, "accepted"), 12);
    assert_eq!(count_entries(&entries, "run"), 6);

    // A restarted service replays the journal; the recovery report hands
    // back exactly the accepted-but-unreleased specs, in submission order.
    let mut recovered = service77(4, None);
    let recovery = recovered.recover(&entries).expect("replay the journal");
    assert!(recovery.is_consistent());
    assert_eq!(recovery.runs_replayed, 6);
    assert_eq!(recovery.accepted, 12);
    assert_eq!(recovery.unreleased, &jobs[6..]);

    // Resubmitting them reproduces the uninterrupted run bit for bit:
    // same records, same ledger, same metering exposition.
    let resumed_report = recovered.process(&recovery.unreleased);
    assert_eq!(
        resumed_report.records.as_slice(),
        &baseline_report.records[6..],
        "re-executed records must be bit-identical"
    );
    assert_eq!(recovered.ledger(), &baseline_report.ledger);
    assert_eq!(
        metering_exposition(&recovered.metrics_text()),
        baseline_metering,
        "recovered-then-resubmitted metering exposition must be byte-identical"
    );
}

// ---------------------------------------------------------------------------
// Property: random fault schedules, pipeline level
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the seeded schedule injects — transient bursts, a mid-run
    /// disk-full, a torn batch, a crash point — the pipeline never panics,
    /// never releases a record whose Run entry was not journaled, and
    /// after failover(s) the finished report and the recovered state are
    /// bit-identical to the clean batch run at 1, 2 and 8 workers.
    #[test]
    fn random_fault_schedules_never_panic_or_release_unjournaled(
        seed in 0u64..1_000_000,
        workers_idx in 0usize..3,
        n in 4u64..10,
    ) {
        let workers = [1usize, 2, 8][workers_idx];
        let jobs = batch(n);
        let mut baseline = service77(4, None);
        let baseline_report = baseline.process(&jobs);

        let schedule = FaultSchedule::random(seed, n * 4);
        let (journal, _probe) = faulty_journal(schedule);
        let mut service = service77(workers, Some(journal.clone()));
        let retry = RetryPolicy::new(3).with_base_ticks(1).with_seed(seed);
        let mut stream = service.stream(IngestConfig::new(workers).with_retry_policy(retry));

        // Runs journaled before any failover discarded the sink they
        // landed on — collect them as each epoch ends.
        let mut journaled: std::collections::BTreeSet<JobId> =
            std::collections::BTreeSet::new();
        let harvest = |journal: &Journal, journaled: &mut std::collections::BTreeSet<JobId>| {
            let (entries, _tail) = journal.entries().expect("dead sinks still serve reads");
            journaled.extend(run_ids(&entries));
        };

        for job in &jobs {
            loop {
                match stream.submit(job.clone()) {
                    Ok(_) => break,
                    Err(SubmitError::Quarantined) => {
                        harvest(&journal, &mut journaled);
                        stream
                            .resume_with_sink(Box::new(MemorySink::new()))
                            .expect("fresh sink accepts the failover");
                    }
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
        }
        let mut spins = 0u32;
        while stream.verdicts().len() < n as usize {
            if stream.health().quarantined {
                harvest(&journal, &mut journaled);
                stream
                    .resume_with_sink(Box::new(MemorySink::new()))
                    .expect("fresh sink accepts the failover");
            }
            stream.pump();
            std::thread::yield_now();
            spins += 1;
            prop_assert!(spins < 1_000_000, "pipeline wedged under schedule {seed}");
        }
        let report = stream.finish();
        prop_assert_eq!(&report, &baseline_report);

        // Released ⇒ journaled: every released record has a Run entry on
        // some epoch's sink.
        let (entries, _tail) = journal.entries().unwrap();
        journaled.extend(run_ids(&entries));
        for record in &report.records {
            prop_assert!(
                journaled.contains(&record.job.id),
                "job {} released without a journaled Run entry",
                record.job.id
            );
        }

        // The final sink recovers standalone into the same state.
        let mut recovered = service77(workers, None);
        let recovery = recovered.recover_latest(&entries).expect("replay final sink");
        prop_assert!(recovery.unreleased.is_empty());
        prop_assert_eq!(recovered.ledger(), &baseline_report.ledger);
        prop_assert_eq!(
            metering_exposition(&recovered.metrics_text()),
            metering_exposition(&baseline.metrics_text())
        );
    }

    /// Random fault schedules interleaved with journal-level operations —
    /// appends, checkpoint rotations (which retire segments), seals — over
    /// a real segmented directory: nothing panics, every committed line
    /// parses back, and a torn tail is confined to the live head segment.
    #[test]
    fn random_faults_over_segmented_journal_ops_never_panic(
        seed in 0u64..1_000_000,
        ops in prop::collection::vec(0u8..4u8, 4..24),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "trustmeter-faults-props-{}-{seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let inner = SegmentedFileSink::open(
            &dir,
            SegmentConfig::default().with_segment_bytes(512),
        )
        .expect("open segment dir");
        let (sink, probe) = FaultInjectingSink::wrap(
            Box::new(inner),
            FaultSchedule::random(seed, 24),
        );
        let journal = Journal::with_sink(Box::new(sink)).expect("fresh sink opens");

        // A small pool of real run records to append.
        let records = Fleet::new(FleetConfig::new(1, 77)).run(&batch(3));

        // Expected parseable lines: appends since the last successful
        // checkpoint (checkpoints retire the segments before them), plus
        // that checkpoint itself.
        let mut expected_lines = 0usize;
        for (i, op) in ops.iter().enumerate() {
            match op % 4 {
                0 => {
                    let spec = JobSpec::clean(1000 + i as u64, TenantId(1), Workload::LoopO, SCALE);
                    if journal.append_accepted(&spec).is_ok() {
                        expected_lines += 1;
                    }
                }
                1 => {
                    if journal.append_run(&records[i % records.len()]).is_ok() {
                        expected_lines += 1;
                    }
                }
                2 => {
                    if journal
                        .append_checkpoint(&Checkpoint::default())
                        .is_ok()
                    {
                        expected_lines = 1;
                    }
                }
                _ => {
                    // Sealing may fail on a dead sink; either way, no
                    // chain line is written.
                    let _ = journal.seal();
                }
            }
        }

        // Reads pass through even when the sink is dead: the committed
        // prefix parses back, chain intact, with at most a torn tail.
        let (entries, tail) = journal.entries().expect("committed prefix parses");
        prop_assert_eq!(entries.len(), expected_lines);
        if tail.is_truncated() {
            prop_assert!(probe.is_dead(), "only a torn fault truncates the tail");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
