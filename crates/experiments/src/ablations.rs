//! Ablation studies extending the paper's evaluation.
//!
//! * [`hz_sweep`] — how the timer frequency changes the scheduling attack's
//!   effectiveness (the paper's fine-grained-metering argument in §VI-B is
//!   that tick granularity is the root cause).
//! * [`scheduler_ablation`] — the same attack under the default
//!   tick-quantised fair-share scheduler versus a CFS-like scheduler with
//!   immediate wakeup preemption.
//! * [`flood_rate_sweep`] — how the interrupt-flooding overcharge scales
//!   with the junk-packet rate.

use crate::figures::ExperimentConfig;
use crate::report::FigureData;
use crate::scenario::Scenario;
use trustmeter_attacks::{InterruptFloodAttack, SchedulingAttack};
use trustmeter_kernel::{KernelConfig, SchedulerKind};
use trustmeter_sim::Series;
use trustmeter_workloads::Workload;

fn overcharge_factor(config: KernelConfig, cfg: &ExperimentConfig, nice: i8) -> f64 {
    let scenario = Scenario::new(Workload::Whetstone, cfg.scale).with_config(config);
    let clean = scenario.run_clean();
    let attacked = scenario.run_attacked(&SchedulingAttack::paper_default(cfg.scale, nice));
    attacked.billed_total_secs() / clean.billed_total_secs().max(1e-9)
}

/// E11: the scheduling attack's overcharge factor at HZ ∈ {100, 250, 1000}.
pub fn hz_sweep(cfg: &ExperimentConfig) -> FigureData {
    let mut fig = FigureData::new(
        "ablation-hz",
        "Scheduling attack vs timer frequency",
        "tick-based accounting mis-charges whole jiffies regardless of HZ; finer ticks shrink \
         the per-switch error but not the systematic bias",
    );
    let mut series = Series::new("overcharge factor (nice -10)");
    for hz in [100u32, 250, 1000] {
        let config = KernelConfig::paper_machine()
            .with_seed(cfg.seed)
            .with_hz(hz);
        series.push(format!("HZ={hz}"), overcharge_factor(config, cfg, -10));
    }
    fig.push_series(series);
    fig
}

/// E12: the scheduling attack under the two scheduler implementations.
pub fn scheduler_ablation(cfg: &ExperimentConfig) -> FigureData {
    let mut fig = FigureData::new(
        "ablation-sched",
        "Scheduling attack vs scheduler",
        "the attack exploits tick-quantised scheduling decisions; a scheduler with immediate \
         wakeup preemption changes how much of the attacker's time is mis-sampled",
    );
    let mut series = Series::new("overcharge factor (nice -10)");
    for (label, kind) in [
        ("fair-share", SchedulerKind::FairShare),
        ("cfs", SchedulerKind::Cfs),
    ] {
        let config = KernelConfig::paper_machine()
            .with_seed(cfg.seed)
            .with_scheduler(kind);
        series.push(label, overcharge_factor(config, cfg, -10));
    }
    fig.push_series(series);
    fig
}

/// Extension: victim overcharge versus junk-packet rate.
pub fn flood_rate_sweep(cfg: &ExperimentConfig) -> FigureData {
    let mut fig = FigureData::new(
        "ablation-flood",
        "Interrupt flood rate sweep",
        "the victim's billed system time grows with the packet rate; the process-aware scheme \
         stays flat",
    );
    let mut billed = Series::new("billed stime (tick)");
    let mut aware = Series::new("stime (process-aware)");
    for pps in [5_000.0, 20_000.0, 60_000.0] {
        let scenario = Scenario::new(Workload::LoopO, cfg.scale)
            .with_config(KernelConfig::paper_machine().with_seed(cfg.seed));
        let outcome = scenario.run_attacked(&InterruptFloodAttack {
            packets_per_sec: pps,
        });
        let khz = outcome.frequency_khz as f64 * 1_000.0;
        billed.push(format!("{} pps", pps as u64), outcome.billed_stime_secs());
        aware.push(
            format!("{} pps", pps as u64),
            outcome.victim_process_aware.stime.as_f64() / khz,
        );
    }
    fig.push_series(billed);
    fig.push_series(aware);
    fig
}

/// Runs every ablation.
pub fn all_ablations(cfg: &ExperimentConfig) -> Vec<FigureData> {
    vec![
        hz_sweep(cfg),
        scheduler_ablation(cfg),
        flood_rate_sweep(cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            scale: 0.002,
            seed: 4,
        }
    }

    #[test]
    fn hz_sweep_produces_three_points_all_overcharging() {
        let fig = hz_sweep(&tiny());
        let s = &fig.series[0];
        assert_eq!(s.len(), 3);
        for (_, v) in s.iter() {
            assert!(v > 1.0, "every HZ shows an overcharge, got {v}");
        }
    }

    #[test]
    fn scheduler_ablation_produces_both_schedulers() {
        let fig = scheduler_ablation(&tiny());
        let s = &fig.series[0];
        assert_eq!(s.len(), 2);
        assert!(s.value_for("fair-share").unwrap() > 1.0);
        assert!(s.value_for("cfs").unwrap() > 0.5);
    }

    #[test]
    fn flood_rate_sweep_is_monotone_for_tick_but_flat_for_process_aware() {
        let fig = flood_rate_sweep(&tiny());
        let billed = fig.series_named("billed stime (tick)").unwrap();
        let aware = fig.series_named("stime (process-aware)").unwrap();
        let b: Vec<f64> = billed.iter().map(|(_, v)| v).collect();
        let a: Vec<f64> = aware.iter().map(|(_, v)| v).collect();
        assert!(
            b[2] >= b[0],
            "billed stime should grow with the flood rate: {b:?}"
        );
        // The process-aware reading does not grow with the flood: the junk
        // handlers are not attributed to the victim. (It is not zero — it
        // still contains the victim's own legitimate kernel work.)
        let spread =
            a.iter().cloned().fold(0.0, f64::max) - a.iter().cloned().fold(f64::INFINITY, f64::min);
        let billed_growth = b[2] - b[0];
        assert!(
            spread <= (billed_growth * 0.5).max(1e-4),
            "process-aware stime should stay flat: {a:?} vs billed {b:?}"
        );
    }
}
