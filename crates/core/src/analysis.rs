//! Overcharge analysis and trustworthiness assessment.
//!
//! The paper defines a metering scheme as trustworthy "if and only if the
//! measured time equals the outcome from the same job execution in the
//! user's own platform with the same hardware/software specification"
//! (§III-B). This module quantifies the deviation: given a *reference*
//! usage (clean run, or fine-grained ground truth) and a *measured* usage
//! (what the provider's accounting reports), it computes an
//! [`OverchargeReport`], classifies which component was inflated
//! ([`AttackClass`]), and assembles a [`TrustAssessment`] over the three
//! properties of §VI-B.

use crate::cputime::CpuTime;
use crate::integrity::SourceIntegrityReport;
use serde::{Deserialize, Serialize};
use std::fmt;
use trustmeter_sim::CpuFrequency;

/// The verifier's verdict on a usage report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Measured usage matches the reference within tolerance.
    Consistent,
    /// Measured usage exceeds the reference beyond tolerance — the customer
    /// is being overcharged.
    Overcharged,
    /// Measured usage is below the reference beyond tolerance (seen for the
    /// *attacker's* own process in the scheduling attack, whose time is
    /// mis-credited to the victim).
    Undercharged,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::Consistent => "consistent",
            Verdict::Overcharged => "OVERCHARGED",
            Verdict::Undercharged => "undercharged",
        };
        f.write_str(s)
    }
}

/// Which accounting component an attack inflates, following the paper's
/// §V-C comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackClass {
    /// Extra code executed in the victim's user context (shell and
    /// shared-library attacks).
    UserTimeInflation,
    /// Extra kernel work charged to the victim (thrashing, interrupt and
    /// exception flooding).
    SystemTimeInflation,
    /// Whole jiffies mis-attributed between processes (scheduling attack).
    Misattribution,
    /// No significant inflation detected.
    None,
}

impl fmt::Display for AttackClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttackClass::UserTimeInflation => "user-time inflation",
            AttackClass::SystemTimeInflation => "system-time inflation",
            AttackClass::Misattribution => "tick misattribution",
            AttackClass::None => "none",
        };
        f.write_str(s)
    }
}

/// Quantified comparison of a measured usage against a reference usage.
///
/// # Example
///
/// ```
/// use trustmeter_core::{CpuTime, OverchargeReport, Verdict};
/// use trustmeter_sim::{CpuFrequency, Cycles, Nanos};
///
/// let freq = CpuFrequency::E7200;
/// let secs = |s: u64| freq.cycles_for(Nanos::from_secs(s));
/// let reference = CpuTime::new(secs(150), secs(1));
/// let measured = CpuTime::new(secs(184), secs(1));
/// let report = OverchargeReport::compare(measured, reference, freq);
/// assert_eq!(report.verdict, Verdict::Overcharged);
/// assert!(report.overcharge_secs > 30.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverchargeReport {
    /// The usage the provider reported.
    pub measured: CpuTime,
    /// The reference usage (clean run or fine-grained ground truth).
    pub reference: CpuTime,
    /// Extra user seconds billed beyond the reference.
    pub extra_user_secs: f64,
    /// Extra system seconds billed beyond the reference.
    pub extra_system_secs: f64,
    /// Total extra seconds billed (never negative).
    pub overcharge_secs: f64,
    /// measured.total / reference.total.
    pub inflation_ratio: f64,
    /// The verdict at the default relative tolerance.
    pub verdict: Verdict,
    /// Which component dominates the inflation.
    pub class: AttackClass,
}

impl OverchargeReport {
    /// Relative tolerance below which measured and reference are considered
    /// consistent (2 %, roughly two jiffies per second at HZ=250 plus
    /// simulator noise).
    pub const DEFAULT_TOLERANCE: f64 = 0.02;

    /// Compares `measured` against `reference` with the default tolerance.
    pub fn compare(measured: CpuTime, reference: CpuTime, freq: CpuFrequency) -> OverchargeReport {
        OverchargeReport::compare_with_tolerance(measured, reference, freq, Self::DEFAULT_TOLERANCE)
    }

    /// Compares with an explicit relative tolerance.
    ///
    /// # Panics
    /// Panics if `tolerance` is negative or not finite.
    pub fn compare_with_tolerance(
        measured: CpuTime,
        reference: CpuTime,
        freq: CpuFrequency,
        tolerance: f64,
    ) -> OverchargeReport {
        assert!(
            tolerance.is_finite() && tolerance >= 0.0,
            "tolerance must be non-negative"
        );
        let extra_user_secs = measured.utime_secs(freq) - reference.utime_secs(freq);
        let extra_system_secs = measured.stime_secs(freq) - reference.stime_secs(freq);
        let measured_total = measured.total_secs(freq);
        let reference_total = reference.total_secs(freq);
        let diff = measured_total - reference_total;
        let inflation_ratio = if reference_total == 0.0 {
            if measured_total == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            measured_total / reference_total
        };
        let rel = if reference_total == 0.0 {
            if measured_total == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            diff.abs() / reference_total
        };
        let verdict = if rel <= tolerance {
            Verdict::Consistent
        } else if diff > 0.0 {
            Verdict::Overcharged
        } else {
            Verdict::Undercharged
        };
        let class = if verdict != Verdict::Overcharged {
            AttackClass::None
        } else if extra_user_secs >= extra_system_secs * 2.0 {
            AttackClass::UserTimeInflation
        } else if extra_system_secs >= extra_user_secs * 2.0 {
            AttackClass::SystemTimeInflation
        } else {
            AttackClass::Misattribution
        };
        OverchargeReport {
            measured,
            reference,
            extra_user_secs,
            extra_system_secs,
            overcharge_secs: diff.max(0.0),
            inflation_ratio,
            verdict,
            class,
        }
    }
}

impl fmt::Display for OverchargeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: +{:.2}s user, +{:.2}s system ({:.2}x, {})",
            self.verdict,
            self.extra_user_secs,
            self.extra_system_secs,
            self.inflation_ratio,
            self.class
        )
    }
}

/// The three properties the paper requires of a trustworthy scheme (§VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TrustProperty {
    /// Only expected code runs in the user's process context.
    SourceIntegrity,
    /// The program's control flow is not tampered with.
    ExecutionIntegrity,
    /// Accounting attributes exactly the cycles consumed on the process's
    /// behalf, at TSC granularity.
    FineGrainedMetering,
}

impl fmt::Display for TrustProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrustProperty::SourceIntegrity => "source integrity",
            TrustProperty::ExecutionIntegrity => "execution integrity",
            TrustProperty::FineGrainedMetering => "fine-grained metering",
        };
        f.write_str(s)
    }
}

/// A combined assessment of a platform run against the three properties.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrustAssessment {
    /// Whether the measured code closure matched the whitelist.
    pub source_integrity: bool,
    /// Whether the execution witness matched the reference.
    pub execution_integrity: bool,
    /// Whether the billed usage matched the fine-grained ground truth.
    pub fine_grained_metering: bool,
    /// The quantitative overcharge report backing the metering verdict.
    pub overcharge: OverchargeReport,
}

impl TrustAssessment {
    /// Builds an assessment from its three ingredients.
    pub fn new(
        source: &SourceIntegrityReport,
        execution_matches: bool,
        overcharge: OverchargeReport,
    ) -> TrustAssessment {
        TrustAssessment {
            source_integrity: source.is_trustworthy(),
            execution_integrity: execution_matches,
            fine_grained_metering: overcharge.verdict == Verdict::Consistent,
            overcharge,
        }
    }

    /// Whether all three properties hold.
    pub fn is_trustworthy(&self) -> bool {
        self.source_integrity && self.execution_integrity && self.fine_grained_metering
    }

    /// The properties that were violated.
    pub fn violations(&self) -> Vec<TrustProperty> {
        let mut v = Vec::new();
        if !self.source_integrity {
            v.push(TrustProperty::SourceIntegrity);
        }
        if !self.execution_integrity {
            v.push(TrustProperty::ExecutionIntegrity);
        }
        if !self.fine_grained_metering {
            v.push(TrustProperty::FineGrainedMetering);
        }
        v
    }
}

impl fmt::Display for TrustAssessment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_trustworthy() {
            write!(f, "trustworthy ({})", self.overcharge)
        } else {
            let names: Vec<String> = self.violations().iter().map(|p| p.to_string()).collect();
            write!(
                f,
                "NOT trustworthy — violated: {} ({})",
                names.join(", "),
                self.overcharge
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrity::{ImageKind, MeasuredImage, MeasurementLog};
    use trustmeter_sim::{Cycles, Nanos};

    fn freq() -> CpuFrequency {
        CpuFrequency::from_mhz(1000)
    }

    fn secs(s: f64) -> Cycles {
        freq().cycles_for(Nanos::from_secs_f64(s))
    }

    #[test]
    fn consistent_within_tolerance() {
        let reference = CpuTime::new(secs(100.0), secs(2.0));
        let measured = CpuTime::new(secs(100.5), secs(2.0));
        let r = OverchargeReport::compare(measured, reference, freq());
        assert_eq!(r.verdict, Verdict::Consistent);
        assert_eq!(r.class, AttackClass::None);
    }

    #[test]
    fn user_time_inflation_classified() {
        let reference = CpuTime::new(secs(150.0), secs(1.0));
        let measured = CpuTime::new(secs(184.0), secs(1.0));
        let r = OverchargeReport::compare(measured, reference, freq());
        assert_eq!(r.verdict, Verdict::Overcharged);
        assert_eq!(r.class, AttackClass::UserTimeInflation);
        assert!((r.extra_user_secs - 34.0).abs() < 1e-6);
        assert!(r.inflation_ratio > 1.2);
        assert!(format!("{r}").contains("OVERCHARGED"));
    }

    #[test]
    fn system_time_inflation_classified() {
        let reference = CpuTime::new(secs(150.0), secs(1.0));
        let measured = CpuTime::new(secs(151.0), secs(40.0));
        let r = OverchargeReport::compare(measured, reference, freq());
        assert_eq!(r.class, AttackClass::SystemTimeInflation);
    }

    #[test]
    fn mixed_inflation_is_misattribution() {
        let reference = CpuTime::new(secs(100.0), secs(100.0));
        let measured = CpuTime::new(secs(120.0), secs(120.0));
        let r = OverchargeReport::compare(measured, reference, freq());
        assert_eq!(r.class, AttackClass::Misattribution);
    }

    #[test]
    fn undercharge_detected() {
        let reference = CpuTime::new(secs(100.0), secs(0.0));
        let measured = CpuTime::new(secs(60.0), secs(0.0));
        let r = OverchargeReport::compare(measured, reference, freq());
        assert_eq!(r.verdict, Verdict::Undercharged);
        assert_eq!(r.overcharge_secs, 0.0);
    }

    #[test]
    fn zero_reference_edge_cases() {
        let r = OverchargeReport::compare(CpuTime::ZERO, CpuTime::ZERO, freq());
        assert_eq!(r.verdict, Verdict::Consistent);
        assert_eq!(r.inflation_ratio, 1.0);
        let r2 = OverchargeReport::compare(CpuTime::user(secs(1.0)), CpuTime::ZERO, freq());
        assert_eq!(r2.verdict, Verdict::Overcharged);
        assert_eq!(r2.inflation_ratio, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tolerance_rejected() {
        let _ =
            OverchargeReport::compare_with_tolerance(CpuTime::ZERO, CpuTime::ZERO, freq(), -0.1);
    }

    #[test]
    fn trust_assessment_combines_properties() {
        let mut log = MeasurementLog::new();
        log.measure(MeasuredImage::new("prog", ImageKind::Executable));
        let clean_source = log.verify(["prog"], log.pcr());

        let reference = CpuTime::new(secs(100.0), secs(1.0));
        let consistent =
            OverchargeReport::compare(CpuTime::new(secs(100.0), secs(1.0)), reference, freq());
        let a = TrustAssessment::new(&clean_source, true, consistent);
        assert!(a.is_trustworthy());
        assert!(a.violations().is_empty());
        assert!(format!("{a}").starts_with("trustworthy"));

        let inflated =
            OverchargeReport::compare(CpuTime::new(secs(140.0), secs(1.0)), reference, freq());
        let b = TrustAssessment::new(&clean_source, false, inflated);
        assert!(!b.is_trustworthy());
        assert_eq!(
            b.violations(),
            vec![
                TrustProperty::ExecutionIntegrity,
                TrustProperty::FineGrainedMetering
            ]
        );
        assert!(format!("{b}").contains("NOT trustworthy"));
    }

    #[test]
    fn displays() {
        assert_eq!(format!("{}", Verdict::Consistent), "consistent");
        assert_eq!(
            format!("{}", AttackClass::Misattribution),
            "tick misattribution"
        );
        assert_eq!(
            format!("{}", TrustProperty::SourceIntegrity),
            "source integrity"
        );
    }
}
