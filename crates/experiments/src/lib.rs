//! # trustmeter-experiments
//!
//! The experiment harness that regenerates every figure of the paper's
//! evaluation (§V) plus the defense and ablation studies:
//!
//! * [`figures`] — `fig4` … `fig11`, one function per paper figure.
//! * [`comparison`] — the §V-C attack comparison table and the §VI-B defense
//!   replay.
//! * [`ablations`] — HZ sweep, scheduler choice, flood-rate sweep.
//! * [`scenario`] — the underlying single-run machinery.
//!
//! The `repro` binary (`cargo run -p trustmeter-experiments --bin repro`)
//! runs everything, prints the series next to the paper's qualitative
//! expectations, and writes JSON under `results/`.
//!
//! ```
//! use trustmeter_experiments::{ExperimentConfig, fig4_shell};
//!
//! let cfg = ExperimentConfig { scale: 0.002, seed: 1 };
//! let fig = fig4_shell(&cfg);
//! assert_eq!(fig.series.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod comparison;
pub mod export;
pub mod figures;
pub mod report;
pub mod scenario;

pub use ablations::{all_ablations, flood_rate_sweep, hz_sweep, scheduler_ablation};
pub use comparison::{comparison_table, defenses, DefenseReport};
pub use figures::{
    all_figures, fig10_irqflood, fig11_pfflood, fig4_shell, fig5_ctor, fig6_interpose,
    fig7_sched_whetstone, fig8_sched_brute, fig9_thrash, ExperimentConfig, NICE_SWEEP,
};
pub use report::{ComparisonRow, ComparisonTable, FigureData};
pub use scenario::{Scenario, ScenarioOutcome};
