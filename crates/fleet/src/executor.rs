//! The sharded fleet executor: many metered scenarios, many worker
//! threads, bit-identical results.
//!
//! A [`JobSpec`] names one metered run — tenant, workload, optional
//! [`AttackSpec`], scale, nice value. The [`Fleet`] executes a batch of jobs
//! across `shards` worker threads. Determinism across shard counts comes
//! from two rules:
//!
//! 1. every job's kernel seed is derived from the fleet seed and the job id
//!    alone (never from which shard or thread runs it), and
//! 2. results are merged back in job-submission order.
//!
//! Shard assignment is round-robin over the submission order, so the same
//! batch splits the same way on every machine with the same shard count —
//! and produces the same records under any shard count.

use serde::{Deserialize, Serialize};
use std::fmt;
use trustmeter_attacks::{
    Attack, ExceptionFloodAttack, InterpositionAttack, InterruptFloodAttack,
    PreloadConstructorAttack, SchedulingAttack, ShellAttack, ThrashingAttack,
};
use trustmeter_core::{AttestationKey, CpuTime, Digest, Quote};
use trustmeter_experiments::{Scenario, ScenarioOutcome};
use trustmeter_kernel::KernelConfig;
use trustmeter_sim::SimRng;
use trustmeter_workloads::Workload;

use crate::auditor::SamplingPolicy;
use crate::tenant::TenantId;
use crate::trace::{PipelineTracer, Stage};

/// Identifies one submitted job.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// A serializable recipe for one of the paper's seven attacks, so fleet
/// jobs can name an attack without carrying a trait object.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackSpec {
    /// §IV-A1: the shell injects a CPU-bound loop before `execve`.
    Shell,
    /// §IV-A2: an `LD_PRELOAD` constructor burns CPU at load time.
    PreloadConstructor,
    /// §IV-A2: symbol interposition wraps hot library calls.
    Interposition,
    /// §IV-B1: a fork/wait attacker schedules itself between ticks at the
    /// given nice value.
    Scheduling {
        /// The attacker's nice value.
        nice: i8,
    },
    /// §IV-B2: a memory hog forces the victim to thrash.
    Thrashing,
    /// §IV-B3: NIC interrupt flooding charged to the interrupted victim.
    InterruptFlood,
    /// §IV-B4: exception (page-fault) flooding via watched pages.
    ExceptionFlood,
}

impl AttackSpec {
    /// Every attack at its paper-default configuration.
    pub const ALL: [AttackSpec; 7] = [
        AttackSpec::Shell,
        AttackSpec::PreloadConstructor,
        AttackSpec::Interposition,
        AttackSpec::Scheduling { nice: -10 },
        AttackSpec::Thrashing,
        AttackSpec::InterruptFlood,
        AttackSpec::ExceptionFlood,
    ];

    /// Short stable name (matches `Attack::name`).
    pub fn label(&self) -> &'static str {
        match self {
            AttackSpec::Shell => "shell",
            AttackSpec::PreloadConstructor => "preload-constructor",
            AttackSpec::Interposition => "interposition",
            AttackSpec::Scheduling { .. } => "scheduling",
            AttackSpec::Thrashing => "thrashing",
            AttackSpec::InterruptFlood => "interrupt-flood",
            AttackSpec::ExceptionFlood => "exception-flood",
        }
    }

    /// Builds the attack at its paper-default configuration for a victim of
    /// the given workload and scale.
    pub fn build(&self, workload: Workload, scale: f64) -> Box<dyn Attack> {
        match self {
            AttackSpec::Shell => Box::new(ShellAttack::paper_default(scale)),
            AttackSpec::PreloadConstructor => {
                Box::new(PreloadConstructorAttack::paper_default(scale))
            }
            AttackSpec::Interposition => Box::new(InterpositionAttack::paper_default(scale)),
            AttackSpec::Scheduling { nice } => {
                Box::new(SchedulingAttack::paper_default(scale, *nice))
            }
            AttackSpec::Thrashing => Box::new(ThrashingAttack::paper_default()),
            AttackSpec::InterruptFlood => Box::new(InterruptFloodAttack::paper_default()),
            AttackSpec::ExceptionFlood => Box::new(ExceptionFloodAttack::paper_default(
                workload.spec(scale).user_secs,
            )),
        }
    }
}

/// One metered run to execute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique id; also the merge key, so ids should be unique per batch.
    pub id: JobId,
    /// Which tenant submitted (and pays for) the run.
    pub tenant: TenantId,
    /// The victim workload.
    pub workload: Workload,
    /// Workload scale factor (1.0 = the paper's full-size runs).
    pub scale: f64,
    /// The attack the (dishonest) provider mounts, if any.
    pub attack: Option<AttackSpec>,
    /// The victim's nice value.
    pub nice: i8,
}

impl JobSpec {
    /// A clean (honest-platform) job.
    pub fn clean(id: u64, tenant: TenantId, workload: Workload, scale: f64) -> JobSpec {
        JobSpec {
            id: JobId(id),
            tenant,
            workload,
            scale,
            attack: None,
            nice: 0,
        }
    }

    /// A job run on a platform mounting `attack`.
    pub fn attacked(
        id: u64,
        tenant: TenantId,
        workload: Workload,
        scale: f64,
        attack: AttackSpec,
    ) -> JobSpec {
        JobSpec {
            id: JobId(id),
            tenant,
            workload,
            scale,
            attack: Some(attack),
            nice: 0,
        }
    }
}

/// The clean-reference facts the auditor compares a run against: what the
/// job *should* have cost and loaded on an honest platform with the same
/// seed.
///
/// Workers precompute this alongside the (possibly attacked) run — they
/// already hold the spec and the seed — so the auditor's §VI verification
/// does not have to replay the job serially on the consumer thread. A
/// precomputed reference is bit-identical to the inline replay the auditor
/// would otherwise perform: both are the same deterministic simulation of
/// the same seed on the same machine model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceOutcome {
    /// Fine-grained TSC ground truth of the clean run.
    pub victim_truth: CpuTime,
    /// Every image the clean run measured into the victim's context.
    pub measured_images: Vec<String>,
    /// PCR over the clean run's measurement log.
    pub measurement_pcr: Digest,
    /// Digest of the clean run's execution witness.
    pub witness_digest: Digest,
}

impl ReferenceOutcome {
    /// Extracts the audit-relevant facts of a clean scenario outcome.
    pub fn from_outcome(outcome: &ScenarioOutcome) -> ReferenceOutcome {
        ReferenceOutcome {
            victim_truth: outcome.victim_truth,
            measured_images: outcome.measured_images.clone(),
            measurement_pcr: outcome.measurement_pcr,
            witness_digest: outcome.witness_digest,
        }
    }

    /// A 64-bit commitment to this reference: the first eight bytes of
    /// the SHA-256 of its canonical JSON. Folded into the quote nonce
    /// ([`quote_nonce`]) so the attestation binds the worker-precomputed
    /// reference as well as the outcome — editing either after the fact
    /// breaks verification.
    pub fn commitment(&self) -> u64 {
        let json = serde_json::to_string(self).expect("reference serializes");
        let digest = trustmeter_core::Sha256::digest(json.as_bytes());
        u64::from_be_bytes(digest[..8].try_into().expect("digest is 32 bytes"))
    }
}

/// The freshness nonce a sampled run's quote is issued under: the job id
/// XOR a [`ReferenceOutcome::commitment`] to the precomputed reference.
/// The verifier recomputes it from the record it holds, so a record whose
/// reference was tampered with fails quote verification with a nonce
/// mismatch.
pub fn quote_nonce(job: JobId, reference: &ReferenceOutcome) -> u64 {
    job.0 ^ reference.commitment()
}

/// Everything one executed job produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// The job as submitted.
    pub job: JobSpec,
    /// The kernel seed the run used (derived, shard-independent).
    pub seed: u64,
    /// The full scenario outcome: billed/truth/process-aware usage,
    /// measured images, witness digest, kernel stats.
    pub outcome: ScenarioOutcome,
    /// The worker-precomputed clean reference, present exactly when the
    /// fleet's [`SamplingPolicy`] selects the job for auditing.
    pub reference: Option<ReferenceOutcome>,
    /// A signed attestation over the run's reported platform state and
    /// usage (§III-B: "the measurement result is signed by the TPM"),
    /// produced alongside the reference for sampled jobs. The quote binds
    /// the measurement PCR, the witness digest and the billed usage under
    /// the platform attestation key (derived from the fleet seed), with a
    /// nonce committing to the job id *and* the precomputed reference
    /// ([`quote_nonce`]) — so a record whose outcome **or** reference is
    /// tampered with after execution (e.g. in a persisted journal) no
    /// longer verifies.
    pub quote: Option<Quote>,
}

/// Fleet configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of worker shards (threads). Results are independent of this.
    pub shards: usize,
    /// Fleet-level seed mixed into every job's kernel seed.
    pub seed: u64,
    /// The machine every shard simulates.
    pub machine: KernelConfig,
    /// Which jobs the workers precompute audit references for (and the
    /// auditor verifies). Results are independent of worker count because
    /// every decision derives from the fleet seed and the job id alone.
    pub sampling: SamplingPolicy,
}

impl FleetConfig {
    /// `shards` workers on the paper's machine with the given fleet seed,
    /// auditing every run.
    pub fn new(shards: usize, seed: u64) -> FleetConfig {
        FleetConfig {
            shards,
            seed,
            machine: KernelConfig::paper_machine(),
            sampling: SamplingPolicy::Always,
        }
    }

    /// Replaces the simulated machine.
    pub fn with_machine(mut self, machine: KernelConfig) -> FleetConfig {
        self.machine = machine;
        self
    }

    /// Replaces the audit sampling policy.
    pub fn with_sampling(mut self, sampling: SamplingPolicy) -> FleetConfig {
        self.sampling = sampling;
        self
    }
}

/// The sharded executor.
#[derive(Debug, Clone)]
pub struct Fleet {
    config: FleetConfig,
    /// The platform attestation identity key (a simulated TPM AIK,
    /// derived from the fleet seed) that signs per-run usage quotes.
    attestation: AttestationKey,
    /// When attached, every [`Fleet::run_one`] records an execution span
    /// (and batch runs thread the tracer through their internal ingest
    /// pool for queue-wait spans). Pure observation: results are
    /// bit-identical with or without it.
    tracer: Option<PipelineTracer>,
}

impl Fleet {
    /// Creates a fleet.
    ///
    /// # Panics
    /// Panics if `config.shards` is zero.
    pub fn new(config: FleetConfig) -> Fleet {
        assert!(config.shards > 0, "a fleet needs at least one shard");
        let attestation = Fleet::attestation_key(config.seed);
        Fleet {
            config,
            attestation,
            tracer: None,
        }
    }

    /// Attaches a [`PipelineTracer`]: every executed job records an
    /// [`Stage::Execute`] span, and batch runs trace queue waits too.
    pub fn with_tracer(mut self, tracer: PipelineTracer) -> Fleet {
        self.tracer = Some(tracer);
        self
    }

    /// Attaches or detaches the tracer in place.
    pub fn set_tracer(&mut self, tracer: Option<PipelineTracer>) {
        self.tracer = tracer;
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&PipelineTracer> {
        self.tracer.as_ref()
    }

    /// The attestation key a fleet with the given seed signs quotes with —
    /// the verifier-side [`crate::auditor::Auditor`] derives the same key
    /// from the same seed (the HMAC stand-in for a TPM quote shares its
    /// key with the verifier by construction).
    pub fn attestation_key(fleet_seed: u64) -> AttestationKey {
        AttestationKey::from_seed(&fleet_seed.to_be_bytes())
    }

    /// The configuration the fleet runs with.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Derives the kernel seed for a job: a function of the fleet seed and
    /// the job id only, so results do not depend on shard assignment.
    pub fn job_seed(&self, job: JobId) -> u64 {
        SimRng::seed_from(self.config.seed ^ job.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
    }

    /// Executes a batch and returns the records in submission order,
    /// bit-identical for any shard count.
    ///
    /// This is a convenience wrapper over the streaming pipeline: the batch
    /// is submitted to a [`crate::ingest::FleetIngest`] worker pool of
    /// `shards` workers sized to never exert backpressure, then drained.
    /// Determinism holds because every job's seed is derived from the fleet
    /// seed and job id alone, and the completion log merges by submission
    /// sequence number.
    pub fn run(&self, jobs: &[JobSpec]) -> Vec<RunRecord> {
        let workers = self.config.shards.min(jobs.len()).max(1);
        if workers == 1 {
            // Fast path: no threads for a sequential run.
            return jobs.iter().map(|job| self.run_one(job)).collect();
        }
        let ingest = crate::ingest::FleetIngest::over_traced(
            self.clone(),
            crate::ingest::IngestConfig::new(workers).with_capacity(jobs.len()),
            None,
            self.tracer.clone(),
        );
        ingest
            .submit_all(jobs)
            .expect("batch queue sized for the whole batch");
        ingest.finish().records
    }

    /// Verifies a completed record's attestation quote against the
    /// outcome it claims to attest — the worker pool's completion-side
    /// defense against an executor returning a corrupted record (see
    /// [`crate::faults::WorkerFaultKind::WrongResult`]).
    ///
    /// The same machinery the auditor applies at post time, pulled
    /// forward to the completion boundary: the quote must verify under
    /// the fleet's attestation key with the nonce recomputed from the
    /// record in hand ([`quote_nonce`]), and its attested PCR, witness
    /// digest and usage must equal the outcome's. A record without a
    /// quote (unsampled under the fleet's [`SamplingPolicy`]) passes
    /// trivially — the sampling policy, not this check, decides which
    /// runs carry attestations.
    ///
    /// # Errors
    /// A human-readable description of the first mismatch.
    pub fn verify_record(&self, record: &RunRecord) -> Result<(), String> {
        let Some(quote) = &record.quote else {
            return Ok(());
        };
        let Some(reference) = &record.reference else {
            return Err("record carries a quote but no reference to recompute its nonce".into());
        };
        self.attestation
            .verify(quote, quote_nonce(record.job.id, reference))
            .map_err(|e| format!("quote verification failed: {e}"))?;
        if quote.measurement_pcr != record.outcome.measurement_pcr {
            return Err("quoted measurement PCR disagrees with the outcome".into());
        }
        if quote.witness_digest != record.outcome.witness_digest {
            return Err("quoted witness digest disagrees with the outcome".into());
        }
        if quote.usage != record.outcome.victim_billed {
            return Err("quoted usage disagrees with the billed outcome".into());
        }
        Ok(())
    }

    /// Executes one job in the calling thread, precomputing the clean
    /// audit reference when the sampling policy selects the job.
    ///
    /// For a clean job the run *is* the clean reference (same seed, same
    /// machine, no attack), so the reference costs nothing extra; for an
    /// attacked job the worker pays one additional clean replay — work the
    /// auditor would otherwise perform serially on the consumer thread.
    pub fn run_one(&self, job: &JobSpec) -> RunRecord {
        let started = self.tracer.as_ref().map(|_| std::time::Instant::now());
        let seed = self.job_seed(job.id);
        let mut scenario = Scenario::new(job.workload, job.scale)
            .with_config(self.config.machine.clone().with_seed(seed));
        scenario.victim_nice = job.nice;
        let outcome = match &job.attack {
            None => scenario.run_clean(),
            Some(spec) => scenario.run_attacked(spec.build(job.workload, job.scale).as_ref()),
        };
        let reference = self
            .config
            .sampling
            .should_audit(self.config.seed, job.id)
            .then(|| match &job.attack {
                None => ReferenceOutcome::from_outcome(&outcome),
                Some(_) => ReferenceOutcome::from_outcome(&scenario.run_clean()),
            });
        // Sampled runs carry a signed quote over the reported platform
        // state; the nonce commits to both the job id and the precomputed
        // reference (see [`quote_nonce`]).
        let quote = reference.as_ref().map(|reference| {
            self.attestation.quote(
                quote_nonce(job.id, reference),
                outcome.measurement_pcr,
                outcome.witness_digest,
                outcome.victim_billed,
            )
        });
        if let (Some(tracer), Some(started)) = (&self.tracer, started) {
            tracer.record(Stage::Execute, job.id, job.tenant, started.elapsed());
        }
        RunRecord {
            job: job.clone(),
            seed,
            outcome,
            reference,
            quote,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_batch(n: u64) -> Vec<JobSpec> {
        (0..n)
            .map(|i| {
                let workload = Workload::ALL[(i % 4) as usize];
                let tenant = TenantId((i % 3) as u32);
                if i % 5 == 0 {
                    JobSpec::attacked(i, tenant, workload, 0.001, AttackSpec::Shell)
                } else {
                    JobSpec::clean(i, tenant, workload, 0.001)
                }
            })
            .collect()
    }

    #[test]
    fn results_arrive_in_submission_order() {
        let fleet = Fleet::new(FleetConfig::new(3, 42));
        let jobs = small_batch(7);
        let records = fleet.run(&jobs);
        let ids: Vec<u64> = records.iter().map(|r| r.job.id.0).collect();
        assert_eq!(ids, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn job_seed_ignores_shard_count() {
        let a = Fleet::new(FleetConfig::new(1, 99));
        let b = Fleet::new(FleetConfig::new(8, 99));
        assert_eq!(a.job_seed(JobId(5)), b.job_seed(JobId(5)));
        assert_ne!(a.job_seed(JobId(5)), a.job_seed(JobId(6)));
    }

    #[test]
    fn shard_counts_agree_bit_for_bit() {
        let jobs = small_batch(10);
        let single = Fleet::new(FleetConfig::new(1, 7)).run(&jobs);
        let quad = Fleet::new(FleetConfig::new(4, 7)).run(&jobs);
        assert_eq!(single, quad);
    }

    #[test]
    fn attack_spec_builds_every_attack() {
        for spec in AttackSpec::ALL {
            let attack = spec.build(Workload::LoopO, 0.001);
            assert_eq!(attack.name(), spec.label());
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        Fleet::new(FleetConfig::new(0, 1));
    }

    #[test]
    fn verify_record_accepts_honest_and_catches_corrupted_records() {
        use trustmeter_sim::Cycles;
        let fleet = Fleet::new(FleetConfig::new(1, 42));
        let job = JobSpec::clean(1, TenantId(1), Workload::LoopO, 0.001);
        let honest = fleet.run_one(&job);
        assert_eq!(fleet.verify_record(&honest), Ok(()));

        // A worker inflating the billed usage after the quote was issued
        // is caught by the usage cross-check.
        let mut corrupted = honest.clone();
        corrupted.outcome.victim_billed.utime = Cycles(999_999_999);
        let err = fleet.verify_record(&corrupted).unwrap_err();
        assert!(err.contains("usage"), "{err}");

        // Re-quoting the corrupted usage under the wrong nonce story is
        // caught too: tampering with the reference breaks the nonce.
        let mut respun = honest.clone();
        respun.reference.as_mut().unwrap().measured_images.clear();
        let err = fleet.verify_record(&respun).unwrap_err();
        assert!(err.contains("quote verification failed"), "{err}");

        // Unsampled records (no quote) pass trivially.
        let mut unsampled = honest;
        unsampled.quote = None;
        unsampled.reference = None;
        assert_eq!(fleet.verify_record(&unsampled), Ok(()));
    }
}
