//! Virtual-memory subsystem: resident sets, global reclaim, swap pressure.
//!
//! The model is intentionally coarse — just rich enough to reproduce the
//! exception-flooding attack (§IV-B4): a memory-hog process allocates more
//! memory than the machine has, the global reclaimer evicts other tasks'
//! resident pages, and the victim's subsequent memory touches turn into
//! major page faults whose kernel service time (plus synchronous swap-in
//! cost) is billed to the victim's system time.

use crate::task::TaskMem;
use std::collections::BTreeMap;
use trustmeter_core::TaskId;

/// The outcome of a batch of page touches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultBatch {
    /// Touches satisfied from the resident set.
    pub hits: u64,
    /// Minor faults (page present in page cache / needs mapping only).
    pub minor_faults: u64,
    /// Major faults (page must be read back from swap).
    pub major_faults: u64,
}

impl FaultBatch {
    /// Total faults of either kind.
    pub fn total_faults(&self) -> u64 {
        self.minor_faults + self.major_faults
    }
}

/// Global physical-memory manager.
///
/// # Example
///
/// ```
/// use trustmeter_kernel::mm::MemoryManager;
/// use trustmeter_core::TaskId;
///
/// let mut mm = MemoryManager::new(1_000);
/// mm.register(TaskId(1));
/// mm.allocate(TaskId(1), 500);
/// let batch = mm.touch(TaskId(1), 100);
/// assert_eq!(batch.total_faults(), 0); // plenty of memory: everything resident
/// ```
#[derive(Debug)]
pub struct MemoryManager {
    physical_pages: u64,
    tasks: BTreeMap<TaskId, TaskMem>,
    /// Total major faults serviced (statistics).
    pub major_faults: u64,
    /// Total minor faults serviced (statistics).
    pub minor_faults: u64,
}

impl MemoryManager {
    /// Creates a manager for a machine with `physical_pages` pages of RAM.
    ///
    /// # Panics
    /// Panics if `physical_pages` is zero.
    pub fn new(physical_pages: u64) -> MemoryManager {
        assert!(physical_pages > 0, "physical memory must be non-empty");
        MemoryManager {
            physical_pages,
            tasks: BTreeMap::new(),
            major_faults: 0,
            minor_faults: 0,
        }
    }

    /// Registers a task with an empty address space.
    pub fn register(&mut self, task: TaskId) {
        self.tasks.entry(task).or_default();
    }

    /// Releases a task's memory (exit).
    pub fn release(&mut self, task: TaskId) {
        self.tasks.remove(&task);
    }

    /// Total pages currently resident across all tasks.
    pub fn resident_total(&self) -> u64 {
        self.tasks.values().map(|m| m.resident_pages).sum()
    }

    /// Free physical pages.
    pub fn free_pages(&self) -> u64 {
        self.physical_pages.saturating_sub(self.resident_total())
    }

    /// Memory pressure in `[0, 1]`: the fraction of physical memory in use.
    pub fn pressure(&self) -> f64 {
        self.resident_total() as f64 / self.physical_pages as f64
    }

    /// A task's memory bookkeeping.
    pub fn task_mem(&self, task: TaskId) -> TaskMem {
        self.tasks.get(&task).copied().unwrap_or_default()
    }

    /// Grows a task's footprint by `pages` and makes the new pages resident,
    /// reclaiming from the largest other resident sets when RAM runs out.
    /// Returns the number of pages that had to be reclaimed (stolen) from
    /// other tasks.
    pub fn allocate(&mut self, task: TaskId, pages: u64) -> u64 {
        self.register(task);
        {
            let m = self.tasks.get_mut(&task).expect("registered above");
            m.allocated_pages += pages;
        }
        self.make_resident(task, pages)
    }

    /// Makes `pages` pages of `task` resident, reclaiming from others if
    /// needed. Returns pages reclaimed from other tasks.
    fn make_resident(&mut self, task: TaskId, pages: u64) -> u64 {
        let mut reclaimed_total = 0;
        let free = self.free_pages();
        let shortfall = pages.saturating_sub(free);
        if shortfall > 0 {
            reclaimed_total = self.reclaim(shortfall, task);
        }
        let available = self.free_pages().min(pages);
        let m = self.tasks.get_mut(&task).expect("task registered");
        m.resident_pages += available;
        m.resident_pages = m.resident_pages.min(m.allocated_pages);
        reclaimed_total
    }

    /// Evicts up to `pages` resident pages from tasks other than `exempt`,
    /// preferring the largest resident sets (a global LRU approximation).
    fn reclaim(&mut self, pages: u64, exempt: TaskId) -> u64 {
        let mut remaining = pages;
        let mut reclaimed = 0;
        // Collect victims ordered by resident size, largest first.
        let mut victims: Vec<(TaskId, u64)> = self
            .tasks
            .iter()
            .filter(|(id, m)| **id != exempt && m.resident_pages > 0)
            .map(|(id, m)| (*id, m.resident_pages))
            .collect();
        victims.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (victim, resident) in victims {
            if remaining == 0 {
                break;
            }
            let take = resident.min(remaining);
            if let Some(m) = self.tasks.get_mut(&victim) {
                m.resident_pages -= take;
            }
            remaining -= take;
            reclaimed += take;
        }
        reclaimed
    }

    /// Touches `pages` pages of `task`'s working set and classifies the
    /// touches into hits, minor faults and major faults based on how much of
    /// the task's footprint is resident and on global memory pressure.
    pub fn touch(&mut self, task: TaskId, pages: u64) -> FaultBatch {
        self.register(task);
        let pressure = self.pressure();
        let mem = self.task_mem(task);
        // Fraction of this task's footprint that is resident. An un-sized
        // task (no explicit allocation) is treated as fully resident unless
        // pressure is high.
        let resident_fraction = if mem.allocated_pages == 0 {
            1.0
        } else {
            mem.resident_pages as f64 / mem.allocated_pages as f64
        };
        let miss_fraction = (1.0 - resident_fraction).clamp(0.0, 1.0);
        // Under pressure, even previously-resident pages get evicted between
        // touches; model that as an extra miss probability that ramps up
        // once memory is more than 90 % full.
        let pressure_miss = ((pressure - 0.9) / 0.1).clamp(0.0, 1.0) * 0.5;
        let effective_miss = (miss_fraction + pressure_miss).clamp(0.0, 1.0);
        let faults = (pages as f64 * effective_miss).round() as u64;
        // Under real memory pressure a miss needs a swap-in (major); without
        // pressure a miss is a first-touch minor fault.
        let major = if pressure >= 0.99 {
            faults
        } else {
            (faults as f64 * pressure_miss.min(1.0)).round() as u64
        };
        let minor = faults - major.min(faults);
        let batch = FaultBatch {
            hits: pages - faults.min(pages),
            minor_faults: minor,
            major_faults: major.min(faults),
        };
        self.minor_faults += batch.minor_faults;
        self.major_faults += batch.major_faults;
        // Touched pages become resident again (stealing from others if the
        // machine is overcommitted), which is what keeps the thrashing going.
        if batch.total_faults() > 0 {
            self.make_resident(task, batch.total_faults().min(mem.allocated_pages.max(1)));
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_ram_rejected() {
        let _ = MemoryManager::new(0);
    }

    #[test]
    fn allocation_within_ram_is_fault_free() {
        let mut mm = MemoryManager::new(1_000);
        mm.register(TaskId(1));
        assert_eq!(mm.allocate(TaskId(1), 400), 0);
        assert_eq!(mm.task_mem(TaskId(1)).resident_pages, 400);
        let b = mm.touch(TaskId(1), 200);
        assert_eq!(b.total_faults(), 0);
        assert_eq!(b.hits, 200);
        assert!(mm.pressure() < 0.5);
    }

    #[test]
    fn overcommit_reclaims_from_other_tasks() {
        let mut mm = MemoryManager::new(1_000);
        mm.register(TaskId(1));
        mm.register(TaskId(2));
        mm.allocate(TaskId(1), 800);
        // The hog wants more than what is free: pages are stolen from task 1.
        let reclaimed = mm.allocate(TaskId(2), 600);
        assert!(reclaimed > 0);
        assert!(mm.task_mem(TaskId(1)).resident_pages < 800);
        assert!(mm.free_pages() <= 1_000);
    }

    #[test]
    fn victim_faults_under_pressure() {
        let mut mm = MemoryManager::new(1_000);
        mm.register(TaskId(1));
        mm.register(TaskId(2));
        mm.allocate(TaskId(1), 500);
        // Hog allocates more than RAM; victim loses residency.
        mm.allocate(TaskId(2), 2_000);
        let batch = mm.touch(TaskId(1), 300);
        assert!(
            batch.total_faults() > 0,
            "victim should fault under pressure: {batch:?}"
        );
        assert!(mm.major_faults + mm.minor_faults > 0);
    }

    #[test]
    fn no_pressure_first_touch_is_minor() {
        let mut mm = MemoryManager::new(10_000);
        mm.register(TaskId(1));
        // Allocate but artificially mark nothing resident by allocating into
        // a fresh task and touching more than resident.
        mm.allocate(TaskId(1), 100);
        // Resident == allocated, so no faults.
        let b = mm.touch(TaskId(1), 50);
        assert_eq!(b.major_faults, 0);
    }

    #[test]
    fn release_frees_memory() {
        let mut mm = MemoryManager::new(100);
        mm.allocate(TaskId(1), 100);
        assert_eq!(mm.free_pages(), 0);
        mm.release(TaskId(1));
        assert_eq!(mm.free_pages(), 100);
        assert_eq!(mm.resident_total(), 0);
    }

    #[test]
    fn touch_unregistered_task_is_safe() {
        let mut mm = MemoryManager::new(100);
        let b = mm.touch(TaskId(9), 10);
        assert_eq!(b.hits, 10);
    }
}
