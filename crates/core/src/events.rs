//! The metering event stream.
//!
//! An execution substrate (the simulated kernel, a trace replayer, or an
//! instrumented real kernel) reports every accounting-relevant transition as
//! a [`MeterEvent`]. Metering schemes consume the stream and produce per-task
//! [`crate::CpuTime`] totals. Keeping the interface event-based means the
//! commodity tick scheme, the fine-grained TSC scheme, and the process-aware
//! scheme all observe *exactly the same execution* and can be compared
//! point-for-point — the comparison at the heart of the paper.

use crate::cputime::{Mode, TaskId};
use serde::{Deserialize, Serialize};
use std::fmt;
use trustmeter_sim::Cycles;

/// A hardware interrupt line.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct IrqLine(pub u32);

impl IrqLine {
    /// The timer interrupt line.
    pub const TIMER: IrqLine = IrqLine(0);
    /// The network adapter interrupt line.
    pub const NIC: IrqLine = IrqLine(11);
    /// The disk controller interrupt line.
    pub const DISK: IrqLine = IrqLine(14);
}

impl fmt::Display for IrqLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "irq{}", self.0)
    }
}

/// The kind of CPU exception being serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExceptionKind {
    /// Page fault (the exception-flooding attack's vehicle).
    PageFault,
    /// Debug exception from a hardware breakpoint (the thrashing attack's
    /// vehicle).
    Debug,
    /// Division by zero or similar arithmetic fault.
    Arithmetic,
    /// General protection fault.
    Protection,
}

impl fmt::Display for ExceptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExceptionKind::PageFault => "page-fault",
            ExceptionKind::Debug => "debug",
            ExceptionKind::Arithmetic => "arithmetic",
            ExceptionKind::Protection => "protection",
        };
        f.write_str(s)
    }
}

/// An accounting-relevant transition reported by the execution substrate.
///
/// Events must be reported in non-decreasing `at` order; schemes are free to
/// panic or saturate otherwise. Every variant carries the virtual timestamp
/// of the transition so fine-grained schemes can integrate exact durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MeterEvent {
    /// `task` becomes the running task, starting in `mode`.
    SwitchIn {
        /// Timestamp of the transition.
        at: Cycles,
        /// The task being scheduled onto the CPU.
        task: TaskId,
        /// The mode it resumes in.
        mode: Mode,
    },
    /// The running `task` is descheduled.
    SwitchOut {
        /// Timestamp of the transition.
        at: Cycles,
        /// The task leaving the CPU.
        task: TaskId,
    },
    /// The running `task` switches privilege mode (syscall entry/exit,
    /// exception return, ...).
    ModeChange {
        /// Timestamp of the transition.
        at: Cycles,
        /// The task whose mode changed.
        task: TaskId,
        /// The new mode.
        mode: Mode,
    },
    /// The periodic timer interrupt fired. This is the *only* event the
    /// commodity tick scheme acts on: it charges one whole jiffy to `task`
    /// (when `Some`) in the component selected by `mode`, regardless of how
    /// long that task has actually been running — the imprecision exploited
    /// by the process-scheduling attack (paper §IV-B1).
    TimerTick {
        /// Timestamp of the tick.
        at: Cycles,
        /// The task that was current when the tick fired (`None` = idle).
        task: Option<TaskId>,
        /// The mode the interrupted context was executing in (`Kernel` when
        /// the tick lands inside an interrupt handler or kernel path).
        mode: Mode,
    },
    /// A device interrupt handler starts executing, interrupting `current`.
    IrqEnter {
        /// Timestamp of handler entry.
        at: Cycles,
        /// The interrupt line.
        irq: IrqLine,
        /// The task that was running when the interrupt arrived (`None` =
        /// idle CPU).
        current: Option<TaskId>,
        /// The task on whose behalf the device raised the interrupt, when
        /// the substrate knows it (e.g. the process that issued the I/O).
        /// The process-aware scheme bills this task; the commodity schemes
        /// ignore it.
        owner: Option<TaskId>,
    },
    /// The device interrupt handler finished.
    IrqExit {
        /// Timestamp of handler exit.
        at: Cycles,
        /// The interrupt line.
        irq: IrqLine,
    },
    /// The kernel starts servicing an exception raised by `task`.
    ExceptionEnter {
        /// Timestamp of handler entry.
        at: Cycles,
        /// The faulting task.
        task: TaskId,
        /// What kind of exception.
        kind: ExceptionKind,
    },
    /// Exception service for `task` finished.
    ExceptionExit {
        /// Timestamp of handler exit.
        at: Cycles,
        /// The faulting task.
        task: TaskId,
    },
    /// `task` exited; schemes may finalize its accounting.
    TaskExit {
        /// Timestamp of exit.
        at: Cycles,
        /// The exiting task.
        task: TaskId,
    },
}

impl MeterEvent {
    /// The timestamp carried by the event.
    pub fn at(&self) -> Cycles {
        match *self {
            MeterEvent::SwitchIn { at, .. }
            | MeterEvent::SwitchOut { at, .. }
            | MeterEvent::ModeChange { at, .. }
            | MeterEvent::TimerTick { at, .. }
            | MeterEvent::IrqEnter { at, .. }
            | MeterEvent::IrqExit { at, .. }
            | MeterEvent::ExceptionEnter { at, .. }
            | MeterEvent::ExceptionExit { at, .. }
            | MeterEvent::TaskExit { at, .. } => at,
        }
    }

    /// A short, stable name for the event kind (used in traces and tests).
    pub fn kind_name(&self) -> &'static str {
        match self {
            MeterEvent::SwitchIn { .. } => "switch-in",
            MeterEvent::SwitchOut { .. } => "switch-out",
            MeterEvent::ModeChange { .. } => "mode-change",
            MeterEvent::TimerTick { .. } => "timer-tick",
            MeterEvent::IrqEnter { .. } => "irq-enter",
            MeterEvent::IrqExit { .. } => "irq-exit",
            MeterEvent::ExceptionEnter { .. } => "exception-enter",
            MeterEvent::ExceptionExit { .. } => "exception-exit",
            MeterEvent::TaskExit { .. } => "task-exit",
        }
    }
}

impl fmt::Display for MeterEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.kind_name(), self.at())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irq_constants() {
        assert_eq!(IrqLine::TIMER, IrqLine(0));
        assert_ne!(IrqLine::NIC, IrqLine::DISK);
        assert_eq!(format!("{}", IrqLine::NIC), "irq11");
    }

    #[test]
    fn exception_display() {
        assert_eq!(format!("{}", ExceptionKind::PageFault), "page-fault");
        assert_eq!(format!("{}", ExceptionKind::Debug), "debug");
    }

    #[test]
    fn event_timestamp_extraction() {
        let events = [
            MeterEvent::SwitchIn {
                at: Cycles(1),
                task: TaskId(1),
                mode: Mode::User,
            },
            MeterEvent::SwitchOut {
                at: Cycles(2),
                task: TaskId(1),
            },
            MeterEvent::ModeChange {
                at: Cycles(3),
                task: TaskId(1),
                mode: Mode::Kernel,
            },
            MeterEvent::TimerTick {
                at: Cycles(4),
                task: None,
                mode: Mode::User,
            },
            MeterEvent::IrqEnter {
                at: Cycles(5),
                irq: IrqLine::NIC,
                current: None,
                owner: None,
            },
            MeterEvent::IrqExit {
                at: Cycles(6),
                irq: IrqLine::NIC,
            },
            MeterEvent::ExceptionEnter {
                at: Cycles(7),
                task: TaskId(1),
                kind: ExceptionKind::Debug,
            },
            MeterEvent::ExceptionExit {
                at: Cycles(8),
                task: TaskId(1),
            },
            MeterEvent::TaskExit {
                at: Cycles(9),
                task: TaskId(1),
            },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.at(), Cycles(i as u64 + 1));
        }
    }

    #[test]
    fn kind_names_are_unique() {
        let names = [
            MeterEvent::SwitchIn {
                at: Cycles(0),
                task: TaskId(1),
                mode: Mode::User,
            }
            .kind_name(),
            MeterEvent::SwitchOut {
                at: Cycles(0),
                task: TaskId(1),
            }
            .kind_name(),
            MeterEvent::ModeChange {
                at: Cycles(0),
                task: TaskId(1),
                mode: Mode::User,
            }
            .kind_name(),
            MeterEvent::TimerTick {
                at: Cycles(0),
                task: None,
                mode: Mode::User,
            }
            .kind_name(),
            MeterEvent::IrqEnter {
                at: Cycles(0),
                irq: IrqLine(1),
                current: None,
                owner: None,
            }
            .kind_name(),
            MeterEvent::IrqExit {
                at: Cycles(0),
                irq: IrqLine(1),
            }
            .kind_name(),
            MeterEvent::ExceptionEnter {
                at: Cycles(0),
                task: TaskId(1),
                kind: ExceptionKind::Debug,
            }
            .kind_name(),
            MeterEvent::ExceptionExit {
                at: Cycles(0),
                task: TaskId(1),
            }
            .kind_name(),
            MeterEvent::TaskExit {
                at: Cycles(0),
                task: TaskId(1),
            }
            .kind_name(),
        ];
        let mut dedup = names.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn display_mentions_kind() {
        let e = MeterEvent::TimerTick {
            at: Cycles(42),
            task: None,
            mode: Mode::User,
        };
        assert!(format!("{e}").contains("timer-tick"));
    }
}
