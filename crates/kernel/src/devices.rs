//! Simulated devices: the network adapter and the disk.
//!
//! * The **NIC** raises a receive interrupt per arriving packet. The
//!   interrupt-flooding attack (§IV-B3) points a packet generator at the
//!   machine; none of the victim programs use the network, so every one of
//!   those interrupts is pure overhead — yet its handler time is charged to
//!   whichever task happens to be running.
//! * The **disk** completes read/write requests after a fixed latency and
//!   raises a completion interrupt *owned* by the requesting task, which is
//!   how the process-aware accounting scheme knows whom to bill.

use serde::{Deserialize, Serialize};
use trustmeter_core::TaskId;
use trustmeter_sim::{CpuFrequency, Cycles, Nanos, SimRng};

/// Configuration of the junk-packet flood used by the interrupt-flooding
/// attack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NicFlood {
    /// Packet arrival rate, packets per second.
    pub packets_per_sec: f64,
    /// When the flood starts, in virtual seconds.
    pub start_secs: f64,
    /// How long the flood lasts, in virtual seconds (`f64::INFINITY` for
    /// the whole run).
    pub duration_secs: f64,
    /// Whether arrivals are Poisson (exponential gaps) or perfectly
    /// periodic.
    pub poisson: bool,
}

impl NicFlood {
    /// A steady flood at `pps` packets per second for the whole run.
    pub fn steady(pps: f64) -> NicFlood {
        NicFlood {
            packets_per_sec: pps,
            start_secs: 0.0,
            duration_secs: f64::INFINITY,
            poisson: true,
        }
    }

    /// First packet arrival time in cycles.
    pub fn first_arrival(&self, freq: CpuFrequency) -> Cycles {
        freq.cycles_for(Nanos::from_secs_f64(self.start_secs.max(0.0)))
    }

    /// Computes the next arrival after `now`, or `None` when the flood has
    /// ended.
    pub fn next_arrival(
        &self,
        now: Cycles,
        freq: CpuFrequency,
        rng: &mut SimRng,
    ) -> Option<Cycles> {
        if self.packets_per_sec <= 0.0 {
            return None;
        }
        let end = if self.duration_secs.is_finite() {
            Some(freq.cycles_for(Nanos::from_secs_f64(self.start_secs + self.duration_secs)))
        } else {
            None
        };
        let mean_gap_secs = 1.0 / self.packets_per_sec;
        let gap_secs = if self.poisson {
            rng.gen_exp(mean_gap_secs)
        } else {
            mean_gap_secs
        };
        let gap = freq.cycles_for(Nanos::from_secs_f64(gap_secs.max(1e-9)));
        let next = now.saturating_add(gap);
        match end {
            Some(e) if next > e => None,
            _ => Some(next),
        }
    }
}

/// The disk device: fixed-latency request completion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Disk {
    /// Request service latency.
    pub latency: Cycles,
    /// Additional per-byte transfer cost in cycles (sequential bandwidth).
    pub per_byte_cycles: f64,
}

impl Disk {
    /// Creates a disk with the given request latency and a throughput of
    /// roughly 80 MB/s at the paper machine's clock.
    pub fn new(latency: Cycles) -> Disk {
        Disk {
            latency,
            per_byte_cycles: 30.0,
        }
    }

    /// Completion time for a request of `bytes` bytes issued at `now` by
    /// `_owner`.
    pub fn completion_time(&self, now: Cycles, bytes: u64) -> Cycles {
        now.saturating_add(self.latency)
            .saturating_add(Cycles((bytes as f64 * self.per_byte_cycles) as u64))
    }
}

/// A pending disk request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRequest {
    /// The task that issued the request (the interrupt's owner).
    pub owner: TaskId,
    /// Bytes transferred.
    pub bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_flood_arrivals_are_plausible() {
        let flood = NicFlood::steady(10_000.0);
        let freq = CpuFrequency::from_mhz(1000);
        let mut rng = SimRng::seed_from(1);
        assert_eq!(flood.first_arrival(freq), Cycles::ZERO);
        let mut now = Cycles::ZERO;
        let mut gaps = Vec::new();
        for _ in 0..1_000 {
            let next = flood.next_arrival(now, freq, &mut rng).unwrap();
            gaps.push((next - now).as_u64());
            now = next;
        }
        let mean_gap = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        // Expected gap: 100 µs = 100_000 cycles at 1 GHz; allow 15 % tolerance.
        assert!(
            (mean_gap - 100_000.0).abs() < 15_000.0,
            "mean gap {mean_gap}"
        );
    }

    #[test]
    fn periodic_flood_is_exact() {
        let flood = NicFlood {
            packets_per_sec: 1_000.0,
            start_secs: 0.0,
            duration_secs: f64::INFINITY,
            poisson: false,
        };
        let freq = CpuFrequency::from_mhz(1000);
        let mut rng = SimRng::seed_from(1);
        let next = flood.next_arrival(Cycles(0), freq, &mut rng).unwrap();
        assert_eq!(next, Cycles(1_000_000));
    }

    #[test]
    fn flood_respects_duration_and_start() {
        let flood = NicFlood {
            packets_per_sec: 1_000.0,
            start_secs: 2.0,
            duration_secs: 1.0,
            poisson: false,
        };
        let freq = CpuFrequency::from_mhz(1000);
        let mut rng = SimRng::seed_from(1);
        assert_eq!(flood.first_arrival(freq), Cycles(2_000_000_000));
        // An arrival that would land after start+duration is suppressed.
        let beyond = flood.next_arrival(Cycles(2_999_999_999), freq, &mut rng);
        assert_eq!(beyond, None);
        // Zero-rate flood never fires.
        let silent = NicFlood::steady(0.0);
        assert_eq!(silent.next_arrival(Cycles(0), freq, &mut rng), None);
    }

    #[test]
    fn disk_completion_accounts_for_size() {
        let disk = Disk::new(Cycles(1_000_000));
        let small = disk.completion_time(Cycles(0), 512);
        let large = disk.completion_time(Cycles(0), 1 << 20);
        assert!(large > small);
        assert!(small >= Cycles(1_000_000));
    }
}
