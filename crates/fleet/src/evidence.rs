//! Evidence-ledger primitives: the hash chain, sealed block headers and
//! Merkle inclusion proofs that make the journal *tamper-evident*, not
//! merely crash-safe.
//!
//! The paper's settlement story needs more than replayability: a tenant
//! disputing an invoice should be handed a piece of evidence they can
//! check **without** trusting the provider to replay the whole journal
//! honestly. This module supplies the three layers that story stands on:
//!
//! 1. **The hash chain.** Every journal line embeds the digest of the
//!    chain up to its predecessor (`{"prev":"<hex>","entry":…}`), and the
//!    chain folds over the *canonical line bytes* — the exact bytes the
//!    PR-5 streaming serializer committed. Duplicating, reordering or
//!    deleting a line anywhere before the torn tail breaks the fold at
//!    the first bad entry, and [`crate::journal::parse_journal`] says so.
//!    The chain is entry-type-agnostic: the submission-side
//!    `Accepted` lines are chained exactly like runs and receipts, so
//!    the accepted-but-unreleased backlog is as tamper-evident as the
//!    billing record. And because the chain head advances only after
//!    the sink accepts a commit, a *failed* write never burns a link —
//!    the retry/failover path (see [`crate::faults`]) re-frames from
//!    the same `prev` with no chain gap.
//! 2. **Sealed block headers.** When a segment rotates (including the
//!    forced rotation before a checkpoint), the sink writes a
//!    [`BlockHeader`] beside it: a Merkle root over the segment's lines,
//!    the chain values at the segment's boundaries, the checkpoint
//!    metric-family exclusion list, all signed with an HMAC under a
//!    [`SealKey`] derived from the fleet seed. A flipped byte, a spliced
//!    segment from another fleet, or a rewritten history now has to forge
//!    the seal, not just rewrite JSON.
//! 3. **Inclusion proofs.** An [`InclusionProof`] carries one line, its
//!    Merkle path and the sealed header; [`InclusionProof::verify`]
//!    checks it against the seal key alone — no journal, no replay — so a
//!    [`crate::FleetService::dispute`] verdict is pinned to exactly the
//!    chained bytes that justify it.
//!
//! Everything here is deterministic: the same entries produce the same
//! chain, roots and seals whatever the worker count, which is what lets
//! the recovery contract stay bit-identical with sealing on.

use serde::{Deserialize, Serialize};

use crate::journal::JournalEntry;
use trustmeter_core::Sha256;

/// A 32-byte SHA-256 digest, the unit of the chain and the Merkle tree.
pub type ChainDigest = [u8; 32];

// Domain separators: every digest in the ledger states what it is, so a
// leaf can never be replayed as a link, a node as a leaf, or a seal as
// either.
const GENESIS_DOMAIN: &[u8] = b"trustmeter-evidence/genesis/v1";
const LINK_DOMAIN: &[u8] = b"trustmeter-evidence/link/v1";
const LEAF_DOMAIN: &[u8] = b"trustmeter-evidence/leaf/v1";
const NODE_DOMAIN: &[u8] = b"trustmeter-evidence/node/v1";
const SEAL_KEY_DOMAIN: &[u8] = b"trustmeter-evidence/seal-key/v1";
const SEAL_DOMAIN: &[u8] = b"trustmeter-evidence/seal/v1";

/// The chain value before the first entry of a journal born empty.
///
/// Deliberately fleet-independent: what binds a journal to *its* fleet is
/// the [`SealKey`] signature over the block headers, not the starting
/// constant — a journal whose live head starts at a retired checkpoint
/// has no genesis on disk at all.
pub fn genesis() -> ChainDigest {
    Sha256::digest(GENESIS_DOMAIN)
}

/// Folds one committed line into the chain: `SHA-256(domain ‖ prev ‖
/// leaf)` where `leaf` is [`leaf_digest`] of the canonical line bytes
/// (no trailing newline). Folding over the leaf rather than the raw
/// bytes means a sealing sink hashes each line **once** — the same leaf
/// feeds both the chain and the segment's Merkle tree — which is what
/// keeps the sealed mode's overhead within a few percent of plain group
/// commit.
pub fn chain_link(prev: &ChainDigest, line: &[u8]) -> ChainDigest {
    link_leaf(prev, &leaf_digest(line))
}

/// [`chain_link`] with the line's leaf digest already in hand.
pub fn link_leaf(prev: &ChainDigest, leaf: &ChainDigest) -> ChainDigest {
    let mut h = Sha256::new();
    h.update(LINK_DOMAIN);
    h.update(prev);
    h.update(leaf);
    h.finalize()
}

/// The Merkle leaf digest of one committed line.
pub fn leaf_digest(line: &[u8]) -> ChainDigest {
    let mut h = Sha256::new();
    h.update(LEAF_DOMAIN);
    h.update(line);
    h.finalize()
}

fn node_digest(left: &ChainDigest, right: &ChainDigest) -> ChainDigest {
    let mut h = Sha256::new();
    h.update(NODE_DOMAIN);
    h.update(left);
    h.update(right);
    h.finalize()
}

/// The Merkle root over a segment's leaf digests. Levels pair
/// left-to-right; an odd node is promoted unchanged. An empty segment
/// roots at the bare leaf domain (sealed segments are never empty, but
/// the function is total).
pub fn merkle_root(leaves: &[ChainDigest]) -> ChainDigest {
    if leaves.is_empty() {
        return Sha256::digest(LEAF_DOMAIN);
    }
    let mut level: Vec<ChainDigest> = leaves.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            match pair {
                [left, right] => next.push(node_digest(left, right)),
                [odd] => next.push(*odd),
                _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
            }
        }
        level = next;
    }
    level[0]
}

/// One step of a Merkle path: the sibling digest and which side it sits
/// on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProofStep {
    /// The sibling digest, hex-encoded.
    pub sibling: String,
    /// Whether the sibling is the *left* input of the parent node.
    pub sibling_left: bool,
}

/// The Merkle path authenticating `leaves[index]` against
/// [`merkle_root`]. Promoted odd nodes contribute no step.
///
/// # Panics
/// Panics if `index` is out of bounds.
pub fn merkle_path(leaves: &[ChainDigest], index: usize) -> Vec<ProofStep> {
    assert!(index < leaves.len(), "proof index out of bounds");
    let mut path = Vec::new();
    let mut level: Vec<ChainDigest> = leaves.to_vec();
    let mut at = index;
    while level.len() > 1 {
        let sibling = if at.is_multiple_of(2) { at + 1 } else { at - 1 };
        if sibling < level.len() {
            path.push(ProofStep {
                sibling: encode_hex(&level[sibling]),
                sibling_left: sibling < at,
            });
        }
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            match pair {
                [left, right] => next.push(node_digest(left, right)),
                [odd] => next.push(*odd),
                _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
            }
        }
        level = next;
        at /= 2;
    }
    path
}

/// Folds a leaf up a Merkle path; equals the root iff the leaf really
/// sits where the path claims.
pub fn fold_path(leaf: &ChainDigest, path: &[ProofStep]) -> Option<ChainDigest> {
    let mut acc = *leaf;
    for step in path {
        let sibling = decode_hex(&step.sibling)?;
        acc = if step.sibling_left {
            node_digest(&sibling, &acc)
        } else {
            node_digest(&acc, &sibling)
        };
    }
    Some(acc)
}

/// Hex-encodes a digest (lowercase, 64 chars).
pub fn encode_hex(digest: &ChainDigest) -> String {
    Sha256::to_hex(digest)
}

/// Decodes a 64-char lowercase hex digest; `None` if malformed.
pub fn decode_hex(text: &str) -> Option<ChainDigest> {
    if text.len() != 64 || !text.is_ascii() {
        return None;
    }
    let bytes = text.as_bytes();
    let mut out = [0u8; 32];
    for (i, slot) in out.iter_mut().enumerate() {
        let hi = (bytes[2 * i] as char).to_digit(16)?;
        let lo = (bytes[2 * i + 1] as char).to_digit(16)?;
        *slot = ((hi << 4) | lo) as u8;
    }
    Some(out)
}

/// The ledger sealing key: derived from the fleet seed exactly like the
/// fleet's attestation key, so the party that can sign quotes is the
/// party that can seal blocks — and nobody else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealKey {
    secret: ChainDigest,
}

impl SealKey {
    /// Derives the sealing key for a fleet seed.
    pub fn from_seed(seed: u64) -> SealKey {
        let mut h = Sha256::new();
        h.update(SEAL_KEY_DOMAIN);
        h.update(&seed.to_be_bytes());
        SealKey {
            secret: h.finalize(),
        }
    }

    /// HMAC-SHA-256 over `message` under this key, domain-separated so a
    /// seal can never double as an attestation MAC.
    fn mac(&self, message: &[u8]) -> ChainDigest {
        let mut framed = Vec::with_capacity(SEAL_DOMAIN.len() + message.len());
        framed.extend_from_slice(SEAL_DOMAIN);
        framed.extend_from_slice(message);
        Sha256::hmac(&self.secret, &framed)
    }
}

/// The sealed header of one finished journal segment: what the segment
/// contained (Merkle root over its lines), where it sat in the chain
/// (boundary links), what the checkpoint policy was when it was written
/// (the metric-family exclusion list), all signed under the fleet's
/// [`SealKey`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockHeader {
    /// Header format version.
    pub version: u32,
    /// The segment index this header seals.
    pub segment: u64,
    /// Committed entry lines in the segment.
    pub entries: u64,
    /// Chain value before the segment's first line (hex).
    pub chain_prev: String,
    /// Chain value after the segment's last line (hex).
    pub chain_head: String,
    /// Merkle root over the segment's line leaves (hex).
    pub merkle_root: String,
    /// The metric families checkpoints exclude from their snapshot,
    /// committed into the sealed evidence so the exclusion policy itself
    /// cannot be rewritten after settlement.
    pub excluded_families: Vec<String>,
    /// HMAC-SHA-256 over the canonical header bytes (with this field
    /// empty), under the fleet's [`SealKey`] (hex).
    pub seal: String,
}

impl BlockHeader {
    /// The current header format version.
    pub const VERSION: u32 = 1;

    /// The canonical bytes the seal signs: this header serialized with an
    /// empty `seal` field.
    fn signing_bytes(&self) -> String {
        let mut unsigned = self.clone();
        unsigned.seal = String::new();
        serde_json::to_string(&unsigned).expect("block header serializes")
    }

    /// Signs this header in place under `key`.
    pub fn sign(&mut self, key: &SealKey) {
        self.seal = String::new();
        let mac = key.mac(self.signing_bytes().as_bytes());
        self.seal = encode_hex(&mac);
    }

    /// Whether `seal` is a valid signature over this header under `key`.
    pub fn verify_seal(&self, key: &SealKey) -> bool {
        match decode_hex(&self.seal) {
            Some(mac) => mac == key.mac(self.signing_bytes().as_bytes()),
            None => false,
        }
    }
}

/// Why an [`InclusionProof`] failed to verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofError {
    /// The block header's seal does not verify under the given key: the
    /// header was forged, altered, or sealed by a different fleet.
    SealForged {
        /// The segment whose header failed.
        segment: u64,
    },
    /// The Merkle path does not fold from the line to the header's root:
    /// the line is not the committed member the proof claims.
    RootMismatch {
        /// The segment whose root was not reached.
        segment: u64,
        /// The leaf index the proof claimed.
        index: u64,
    },
    /// The proof's line is not a parseable chained journal line.
    MalformedEvidence {
        /// The parser's message.
        message: String,
    },
}

impl std::fmt::Display for ProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofError::SealForged { segment } => {
                write!(f, "segment {segment} header seal does not verify")
            }
            ProofError::RootMismatch { segment, index } => write!(
                f,
                "merkle path for leaf {index} does not reach segment {segment}'s sealed root"
            ),
            ProofError::MalformedEvidence { message } => {
                write!(f, "proof line is not a chained journal line: {message}")
            }
        }
    }
}

impl std::error::Error for ProofError {}

/// A self-contained membership proof: one journal line, its Merkle path,
/// and the sealed header of the segment that committed it.
/// [`InclusionProof::verify`] needs only the fleet's [`SealKey`] — no
/// journal access, no replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InclusionProof {
    /// The committed line, exactly as journaled (no trailing newline).
    pub line: String,
    /// The line's leaf index within its segment.
    pub index: u64,
    /// Sibling digests from the leaf up to the root.
    pub path: Vec<ProofStep>,
    /// The sealed header of the segment.
    pub header: BlockHeader,
}

impl InclusionProof {
    /// Verifies the proof against `key` and returns the proven entry:
    /// the header's seal must verify, and the line's leaf must fold up
    /// the path to the sealed Merkle root.
    ///
    /// # Errors
    /// [`ProofError`] describing the first check that failed.
    pub fn verify(&self, key: &SealKey) -> Result<JournalEntry, ProofError> {
        if !self.header.verify_seal(key) {
            return Err(ProofError::SealForged {
                segment: self.header.segment,
            });
        }
        self.verify_against(&self.header)
    }

    /// Verifies only the Merkle membership against an already-trusted
    /// `header` (e.g. one re-checked out of band). This is the half the
    /// property tests exercise: a proof folds to *its* header's root and
    /// to no other's.
    ///
    /// # Errors
    /// [`ProofError::RootMismatch`] if the path does not reach the
    /// header's root; [`ProofError::MalformedEvidence`] if the line does
    /// not parse.
    pub fn verify_against(&self, header: &BlockHeader) -> Result<JournalEntry, ProofError> {
        let leaf = leaf_digest(self.line.as_bytes());
        let mismatch = ProofError::RootMismatch {
            segment: header.segment,
            index: self.index,
        };
        let folded = fold_path(&leaf, &self.path).ok_or_else(|| mismatch.clone())?;
        if self.index >= header.entries || Some(folded) != decode_hex(&header.merkle_root) {
            return Err(mismatch);
        }
        let chained: ChainedLine =
            serde_json::from_str(&self.line).map_err(|e| ProofError::MalformedEvidence {
                message: e.to_string(),
            })?;
        Ok(chained.entry)
    }

    /// The proven entry without verifying anything — for display only.
    ///
    /// # Errors
    /// [`ProofError::MalformedEvidence`] if the line does not parse.
    pub fn entry(&self) -> Result<JournalEntry, ProofError> {
        let chained: ChainedLine =
            serde_json::from_str(&self.line).map_err(|e| ProofError::MalformedEvidence {
                message: e.to_string(),
            })?;
        Ok(chained.entry)
    }
}

/// The parsed form of one chained journal line:
/// `{"prev":"<hex>","entry":{…}}`.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct ChainedLine {
    /// The chain value before this entry, hex-encoded.
    pub prev: String,
    /// The journal entry itself.
    pub entry: JournalEntry,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<ChainDigest> {
        (0..n)
            .map(|i| leaf_digest(format!("line-{i}").as_bytes()))
            .collect()
    }

    #[test]
    fn merkle_paths_fold_to_the_root_for_every_width() {
        for n in 1..=9 {
            let leaves = leaves(n);
            let root = merkle_root(&leaves);
            for (i, leaf) in leaves.iter().enumerate() {
                let path = merkle_path(&leaves, i);
                assert_eq!(fold_path(leaf, &path), Some(root), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn a_path_does_not_fold_to_a_different_tree() {
        let a = leaves(5);
        let b = leaves(6);
        let path = merkle_path(&a, 2);
        assert_ne!(fold_path(&a[2], &path), Some(merkle_root(&b)));
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let digest = Sha256::digest(b"x");
        assert_eq!(decode_hex(&encode_hex(&digest)), Some(digest));
        assert_eq!(decode_hex("xyz"), None);
        assert_eq!(decode_hex(&"g".repeat(64)), None);
    }

    #[test]
    fn seals_verify_under_the_signing_key_only() {
        let key = SealKey::from_seed(7);
        let other = SealKey::from_seed(8);
        let mut header = BlockHeader {
            version: BlockHeader::VERSION,
            segment: 1,
            entries: 2,
            chain_prev: encode_hex(&genesis()),
            chain_head: encode_hex(&Sha256::digest(b"head")),
            merkle_root: encode_hex(&merkle_root(&leaves(2))),
            excluded_families: vec!["fleet_recoveries_total".into()],
            seal: String::new(),
        };
        header.sign(&key);
        assert!(header.verify_seal(&key));
        assert!(!header.verify_seal(&other));
        // Any mutation of the sealed fields invalidates the seal.
        let mut doctored = header.clone();
        doctored.entries = 3;
        assert!(!doctored.verify_seal(&key));
        let mut stripped = header.clone();
        stripped.excluded_families.clear();
        assert!(!stripped.verify_seal(&key));
    }

    #[test]
    fn chain_links_are_order_sensitive() {
        let g = genesis();
        let ab = chain_link(&chain_link(&g, b"a"), b"b");
        let ba = chain_link(&chain_link(&g, b"b"), b"a");
        assert_ne!(ab, ba);
        assert_ne!(chain_link(&g, b"a"), leaf_digest(b"a"), "domains differ");
    }
}
