//! Pipeline span tracing: who waited where, and what observing cost.
//!
//! The paper asks whether a meter's reports can be trusted; this module
//! turns that question on the fleet itself. A [`PipelineTracer`] rides
//! along the pipeline and records one [`Span`] per stage boundary a job
//! crosses — queue wait, worker execution, audit verdict, journal group
//! commit, release→post — into a bounded ring buffer, while aggregating
//! every observation into log-bucketed histogram cells the service drains
//! into its `fleet_stage_seconds*` metrics.
//!
//! ## Determinism contract
//!
//! Tracing is *observation*, never *input*: no traced quantity may flow
//! back into billing, audit or metering state. Two rules enforce this:
//!
//! 1. **Span identity is deterministic, wall time is segregated.** A
//!    span's `id` derives from the fleet seed, the job id and the stage
//!    alone (the same mixing discipline as
//!    [`crate::Fleet::job_seed`]) — bit-identical for any worker count,
//!    with tracing on or off. Everything the wall clock touched lives in
//!    the nested [`SpanWall`] object, so a consumer diffing two trace
//!    exports can strip the `wall` field and compare the rest exactly.
//! 2. **Traced time never enters checked artifacts.** Ledgers, verdicts
//!    and the metering exposition contain no tracer output: the
//!    `fleet_stage_seconds*` histograms are in
//!    [`crate::journal::LIVE_PIPELINE_FAMILIES`] and the
//!    `fleet_observer_*` counters in
//!    [`crate::journal::SELF_ACCOUNTING_FAMILIES`], both stripped from
//!    [`crate::journal::metering_exposition`] and excluded from
//!    checkpoints.
//!
//! ## Self-accounting
//!
//! Observation has a cost, and an honest meter accounts for its own: the
//! tracer stamps an [`std::time::Instant`] at every entry point and
//! accumulates the time it spent recording into
//! [`TracerStats::overhead_nanos`], which the service exports as
//! `fleet_observer_overhead_seconds_total`. `trustmeter-bench` measures
//! the end-to-end delta with interleaved tracing-on/off rounds.
//!
//! ```
//! use trustmeter_fleet::{FleetConfig, FleetService, JobSpec, PipelineTracer, TenantId};
//! use trustmeter_workloads::Workload;
//!
//! let tracer = PipelineTracer::new(1024, 42);
//! let mut service = FleetService::new(FleetConfig::new(2, 42)).with_tracer(tracer.clone());
//! service.process(&[JobSpec::clean(0, TenantId(1), Workload::LoopO, 0.001)]);
//!
//! let spans = tracer.spans();
//! assert!(!spans.is_empty());
//! let mut jsonl = Vec::new();
//! tracer.export_jsonl(&mut jsonl).unwrap();
//! assert_eq!(jsonl.iter().filter(|b| **b == b'\n').count(), spans.len());
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Error, Serialize, Value};
use trustmeter_sim::SimRng;

use crate::executor::JobId;
use crate::metrics::LATENCY_BUCKETS;
use crate::tenant::TenantId;

/// A pipeline stage boundary a job crosses, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Submit → dispatch: time spent queued before a worker popped the job.
    QueueWait,
    /// Worker execution: the metered run itself (plus reference/quote
    /// precompute for sampled jobs).
    Execute,
    /// The auditor's §VI verdict over the completed record.
    Audit,
    /// A journal group commit (runs at release, receipts at post) —
    /// attributed to the first record of the group.
    JournalCommit,
    /// Release → post: billing, audit and metering of one released record
    /// (the audit span nests inside this one).
    Post,
    /// One failed journal commit attempt that the retry policy will retry
    /// (see [`crate::faults::RetryPolicy`]) — attributed to the first
    /// record (or the submitted spec) of the failed batch. Absent from
    /// healthy runs.
    JournalRetry,
    /// A dispatched job reclaimed from a dead, hung or expired worker and
    /// re-enqueued for re-execution (see
    /// [`crate::faults::WorkerFaultSchedule`]) — attributed to the
    /// reassigned job. Absent from healthy runs.
    Reassign,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::QueueWait,
        Stage::Execute,
        Stage::Audit,
        Stage::JournalCommit,
        Stage::Post,
        Stage::JournalRetry,
        Stage::Reassign,
    ];

    /// Short stable snake_case name, used as the `stage` label of the
    /// `fleet_stage_seconds*` histograms and the span schema.
    pub fn label(&self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Execute => "execute",
            Stage::Audit => "audit",
            Stage::JournalCommit => "journal_commit",
            Stage::Post => "post",
            Stage::JournalRetry => "journal_retry",
            Stage::Reassign => "reassign",
        }
    }

    fn index(self) -> u8 {
        match self {
            Stage::QueueWait => 0,
            Stage::Execute => 1,
            Stage::Audit => 2,
            Stage::JournalCommit => 3,
            Stage::Post => 4,
            Stage::JournalRetry => 5,
            Stage::Reassign => 6,
        }
    }
}

impl Serialize for Stage {
    fn to_value(&self) -> Value {
        Value::Str(self.label().to_string())
    }
    fn write_json(&self, out: &mut String) {
        serde::write_escaped_str(out, self.label());
    }
}

impl Deserialize for Stage {
    fn from_value(v: &Value) -> Result<Stage, Error> {
        let Value::Str(label) = v else {
            return Err(Error::custom(format!("expected a stage label, got {v:?}")));
        };
        Stage::ALL
            .into_iter()
            .find(|stage| stage.label() == label.as_str())
            .ok_or_else(|| Error::custom(format!("unknown stage `{label}`")))
    }
}

/// The wall-clock half of a span, segregated from the deterministic
/// identity fields so trace consumers can strip it and diff the rest
/// bit-for-bit across runs (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanWall {
    /// Span start as nanoseconds since the Unix epoch (wall clock; not
    /// deterministic).
    pub start_unix_nanos: u64,
    /// Measured stage duration in nanoseconds (wall clock; not
    /// deterministic).
    pub duration_nanos: u64,
}

/// One recorded stage crossing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Deterministic span id: a function of the fleet seed, the job id
    /// and the stage alone — the same for any worker count, with tracing
    /// on or off.
    pub id: u64,
    /// The job that crossed the stage.
    pub job: JobId,
    /// The tenant that submitted the job.
    pub tenant: TenantId,
    /// Which stage boundary this span measures.
    pub stage: Stage,
    /// The wall-clock fields, segregated (see [`SpanWall`]).
    pub wall: SpanWall,
}

/// Derives the deterministic span id for a (fleet seed, job, stage)
/// triple — the tracing analogue of [`crate::Fleet::job_seed`].
pub fn span_id(fleet_seed: u64, job: JobId, stage: Stage) -> u64 {
    SimRng::seed_from(
        fleet_seed
            ^ job.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (stage.index() as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03),
    )
    .next_u64()
}

/// One drained histogram cell: every observation the tracer aggregated
/// for a (stage, tenant) pair since the last drain, bucketed to
/// [`LATENCY_BUCKETS`] (one trailing `+Inf` slot).
#[derive(Debug, Clone, PartialEq)]
pub struct StageObservation {
    /// The observed stage.
    pub stage: Stage,
    /// `None` for the per-stage aggregate cell, `Some` for a per-tenant
    /// variant.
    pub tenant: Option<TenantId>,
    /// Non-cumulative bucket counts, `LATENCY_BUCKETS.len() + 1` slots.
    pub counts: Vec<u64>,
    /// Sum of observed durations, in seconds.
    pub sum_secs: f64,
    /// Number of observations.
    pub count: u64,
}

/// The tracer's own cost and volume counters (monotonic since creation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TracerStats {
    /// Spans recorded (whether or not still in the ring).
    pub spans_recorded: u64,
    /// Spans evicted from the full ring.
    pub spans_dropped: u64,
    /// Nanoseconds spent inside the observability layer itself.
    pub overhead_nanos: u64,
}

#[derive(Debug)]
struct Cell {
    counts: Vec<u64>,
    sum_secs: f64,
    count: u64,
}

impl Cell {
    fn new() -> Cell {
        Cell {
            counts: vec![0; LATENCY_BUCKETS.len() + 1],
            sum_secs: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, secs: f64) {
        let slot = LATENCY_BUCKETS
            .iter()
            .position(|bound| secs <= *bound)
            .unwrap_or(LATENCY_BUCKETS.len());
        self.counts[slot] += 1;
        self.sum_secs += secs;
        self.count += 1;
    }
}

#[derive(Debug)]
struct Inner {
    /// Bounded span ring: a full ring evicts the oldest span.
    ring: VecDeque<Span>,
    /// Histogram cells keyed by (stage index, tenant): `None` is the
    /// per-stage aggregate, `Some` the per-tenant variant. Bounded by
    /// stages × (tenants + 1), independent of job count.
    cells: BTreeMap<(u8, Option<TenantId>), Cell>,
    recorded: u64,
    dropped: u64,
    overhead_nanos: u64,
}

/// A bounded, thread-shared span recorder for the fleet pipeline. See the
/// [module docs](self) for the determinism and self-accounting contracts.
///
/// Cloning is cheap and shares the buffer: the service, the executor and
/// every ingest worker record into the same tracer.
#[derive(Debug, Clone)]
pub struct PipelineTracer {
    inner: Arc<Mutex<Inner>>,
    fleet_seed: u64,
    capacity: usize,
}

impl PipelineTracer {
    /// A tracer holding at most `capacity` spans (older spans are evicted
    /// and counted in [`TracerStats::spans_dropped`]); `fleet_seed` must
    /// match the fleet's so span ids line up with job seeds.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — an unbounded ring is exactly what
    /// this type exists to prevent, and a zero-capacity one records
    /// nothing.
    pub fn new(capacity: usize, fleet_seed: u64) -> PipelineTracer {
        assert!(capacity > 0, "a span ring needs capacity");
        PipelineTracer {
            inner: Arc::new(Mutex::new(Inner {
                ring: VecDeque::with_capacity(capacity),
                cells: BTreeMap::new(),
                recorded: 0,
                dropped: 0,
                overhead_nanos: 0,
            })),
            fleet_seed,
            capacity,
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The fleet seed span ids derive from.
    pub fn fleet_seed(&self) -> u64 {
        self.fleet_seed
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn record_inner(
        &self,
        stage: Stage,
        job: JobId,
        tenant: TenantId,
        duration: Duration,
        per_tenant: bool,
    ) {
        // The overhead clock starts before the lock: contention on the
        // tracer is part of what observing costs.
        let entered = Instant::now();
        let start = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or(Duration::ZERO)
            .saturating_sub(duration);
        let span = Span {
            id: span_id(self.fleet_seed, job, stage),
            job,
            tenant,
            stage,
            wall: SpanWall {
                start_unix_nanos: start.as_nanos() as u64,
                duration_nanos: duration.as_nanos() as u64,
            },
        };
        let secs = duration.as_secs_f64();
        let mut inner = self.lock();
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(span);
        inner.recorded += 1;
        inner
            .cells
            .entry((stage.index(), None))
            .or_insert_with(Cell::new)
            .observe(secs);
        if per_tenant {
            inner
                .cells
                .entry((stage.index(), Some(tenant)))
                .or_insert_with(Cell::new)
                .observe(secs);
        }
        inner.overhead_nanos += entered.elapsed().as_nanos() as u64;
    }

    /// Records one stage crossing for a job: a span in the ring plus the
    /// per-stage and per-tenant histogram cells.
    pub fn record(&self, stage: Stage, job: JobId, tenant: TenantId, duration: Duration) {
        self.record_inner(stage, job, tenant, duration, true);
    }

    /// Records a stage crossing that spans multiple tenants' work (e.g. a
    /// journal group commit, attributed to the group's first record):
    /// a span in the ring plus the per-stage aggregate cell only — a
    /// shared commit is nobody's per-tenant latency.
    pub fn record_aggregate(&self, stage: Stage, job: JobId, tenant: TenantId, duration: Duration) {
        self.record_inner(stage, job, tenant, duration, false);
    }

    /// The tracer's cost and volume counters.
    pub fn stats(&self) -> TracerStats {
        let inner = self.lock();
        TracerStats {
            spans_recorded: inner.recorded,
            spans_dropped: inner.dropped,
            overhead_nanos: inner.overhead_nanos,
        }
    }

    /// A snapshot of the spans currently in the ring, oldest first.
    pub fn spans(&self) -> Vec<Span> {
        self.lock().ring.iter().cloned().collect()
    }

    /// Drains the aggregated histogram cells (stage-sorted, per-stage
    /// aggregate before per-tenant variants) — the service folds these
    /// into its `fleet_stage_seconds*` metrics and the cells restart
    /// empty.
    pub fn take_observations(&self) -> Vec<StageObservation> {
        let entered = Instant::now();
        let mut inner = self.lock();
        let cells = std::mem::take(&mut inner.cells);
        let observations = cells
            .into_iter()
            .map(|((stage, tenant), cell)| StageObservation {
                stage: Stage::ALL[stage as usize],
                tenant,
                counts: cell.counts,
                sum_secs: cell.sum_secs,
                count: cell.count,
            })
            .collect();
        inner.overhead_nanos += entered.elapsed().as_nanos() as u64;
        observations
    }

    /// Streams the ring's spans as JSON-lines (one span per line, oldest
    /// first) through the vendored streaming `write_json` path — no
    /// intermediate `Value` tree, one reused line buffer.
    ///
    /// # Errors
    /// An [`io::Error`] from the writer.
    pub fn export_jsonl<W: io::Write>(&self, mut out: W) -> io::Result<()> {
        let spans = self.spans();
        let mut line = String::new();
        for span in &spans {
            line.clear();
            span.write_json(&mut line);
            line.push('\n');
            out.write_all(line.as_bytes())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn span_ids_are_deterministic_and_distinct() {
        let a = span_id(42, JobId(7), Stage::Execute);
        assert_eq!(a, span_id(42, JobId(7), Stage::Execute));
        assert_ne!(a, span_id(42, JobId(8), Stage::Execute));
        assert_ne!(a, span_id(42, JobId(7), Stage::Audit));
        assert_ne!(a, span_id(43, JobId(7), Stage::Execute));
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let tracer = PipelineTracer::new(2, 1);
        for id in 0..5 {
            tracer.record(Stage::Execute, JobId(id), TenantId(1), ms(1));
        }
        let spans = tracer.spans();
        assert_eq!(spans.len(), 2);
        let ids: Vec<u64> = spans.iter().map(|s| s.job.0).collect();
        assert_eq!(ids, vec![3, 4], "oldest spans evicted first");
        let stats = tracer.stats();
        assert_eq!(stats.spans_recorded, 5);
        assert_eq!(stats.spans_dropped, 3);
    }

    #[test]
    fn observations_aggregate_per_stage_and_per_tenant() {
        let tracer = PipelineTracer::new(16, 1);
        tracer.record(Stage::QueueWait, JobId(0), TenantId(1), ms(1));
        tracer.record(Stage::QueueWait, JobId(1), TenantId(2), ms(2));
        tracer.record_aggregate(Stage::JournalCommit, JobId(0), TenantId(1), ms(3));
        let observations = tracer.take_observations();
        // queue_wait aggregate + two tenants, journal_commit aggregate only.
        assert_eq!(observations.len(), 4);
        let aggregate = observations
            .iter()
            .find(|o| o.stage == Stage::QueueWait && o.tenant.is_none())
            .unwrap();
        assert_eq!(aggregate.count, 2);
        assert!(observations
            .iter()
            .any(|o| o.stage == Stage::QueueWait && o.tenant == Some(TenantId(2))));
        assert!(!observations
            .iter()
            .any(|o| o.stage == Stage::JournalCommit && o.tenant.is_some()));
        // Draining resets the cells.
        assert!(tracer.take_observations().is_empty());
    }

    #[test]
    fn overhead_accumulates() {
        let tracer = PipelineTracer::new(4, 1);
        tracer.record(Stage::Execute, JobId(0), TenantId(1), ms(1));
        tracer.take_observations();
        // The clock has nanosecond resolution and both entry points add to
        // it; all we can assert portably is monotonic accumulation.
        let first = tracer.stats().overhead_nanos;
        tracer.record(Stage::Execute, JobId(1), TenantId(1), ms(1));
        assert!(tracer.stats().overhead_nanos >= first);
    }

    #[test]
    fn spans_roundtrip_through_json_with_wall_segregated() {
        let tracer = PipelineTracer::new(4, 9);
        tracer.record(Stage::Audit, JobId(3), TenantId(7), ms(5));
        let mut jsonl = Vec::new();
        tracer.export_jsonl(&mut jsonl).unwrap();
        let line = String::from_utf8(jsonl).unwrap();
        let span: Span = serde_json::from_str(line.trim_end()).unwrap();
        assert_eq!(span, tracer.spans()[0]);
        assert_eq!(span.stage, Stage::Audit);
        assert_eq!(span.id, span_id(9, JobId(3), Stage::Audit));
        // The wall fields live under one strippable key.
        assert!(line.contains("\"wall\":{"), "got: {line}");
        assert!(line.contains("\"duration_nanos\":5000000"));
    }

    #[test]
    fn stage_labels_roundtrip() {
        for stage in Stage::ALL {
            let back = Stage::from_value(&stage.to_value()).unwrap();
            assert_eq!(back, stage);
        }
        assert!(Stage::from_value(&Value::Str("warp".into())).is_err());
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_rejected() {
        PipelineTracer::new(0, 1);
    }
}
