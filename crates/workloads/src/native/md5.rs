//! A from-scratch MD5 implementation (RFC 1321) and a small brute-force
//! preimage searcher.
//!
//! The paper's fourth victim program, *Brute*, "cracks MD5, SHA256 and
//! SHA512 by brute force" and "spawns many threads to search for a hash
//! collision". The simulated [`crate::VictimProgram`] derives its per-attempt
//! cost from this reference implementation; the brute-force searcher here is
//! also used directly by tests and examples so the workload is a real
//! computation, not a stub.
//!
//! This code exists to reproduce a published benchmark workload; MD5 is, of
//! course, not a secure hash and must not be used for anything
//! security-relevant.

/// Computes the MD5 digest of `data`.
///
/// # Example
///
/// ```
/// use trustmeter_workloads::native::md5;
/// assert_eq!(md5::hex(&md5::digest(b"abc")), "900150983cd24fb0d6963f7d28e17f72");
/// ```
pub fn digest(data: &[u8]) -> [u8; 16] {
    const S: [u32; 64] = [
        7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 5, 9, 14, 20, 5, 9, 14, 20, 5,
        9, 14, 20, 5, 9, 14, 20, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 6, 10,
        15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
    ];
    const K: [u32; 64] = [
        0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
        0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
        0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
        0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
        0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
        0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
        0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
        0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
        0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
        0xeb86d391,
    ];

    let mut a0: u32 = 0x67452301;
    let mut b0: u32 = 0xefcdab89;
    let mut c0: u32 = 0x98badcfe;
    let mut d0: u32 = 0x10325476;

    // Padding.
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_le_bytes());

    for chunk in msg.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes([
                chunk[i * 4],
                chunk[i * 4 + 1],
                chunk[i * 4 + 2],
                chunk[i * 4 + 3],
            ]);
        }
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (mut f, g) = match i {
                0..=15 => ((b & c) | ((!b) & d), i),
                16..=31 => ((d & b) | ((!d) & c), (5 * i + 1) % 16),
                32..=47 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            f = f.wrapping_add(a).wrapping_add(K[i]).wrapping_add(m[g]);
            a = d;
            d = c;
            c = b;
            b = b.wrapping_add(f.rotate_left(S[i]));
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }

    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&a0.to_le_bytes());
    out[4..8].copy_from_slice(&b0.to_le_bytes());
    out[8..12].copy_from_slice(&c0.to_le_bytes());
    out[12..16].copy_from_slice(&d0.to_le_bytes());
    out
}

/// Lowercase-hex rendering of a digest.
pub fn hex(digest: &[u8; 16]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

/// Brute-forces the lowercase-alphabetic preimage (up to `max_len`
/// characters) of `target`, returning the preimage and the number of
/// attempts made. Returns `None` (with the attempt count) if no preimage of
/// that length exists.
///
/// # Example
///
/// ```
/// use trustmeter_workloads::native::md5;
/// let target = md5::digest(b"hi");
/// let (found, attempts) = md5::brute_force(&target, 2);
/// assert_eq!(found.as_deref(), Some("hi"));
/// assert!(attempts > 0);
/// ```
pub fn brute_force(target: &[u8; 16], max_len: usize) -> (Option<String>, u64) {
    let alphabet: Vec<u8> = (b'a'..=b'z').collect();
    let mut attempts = 0u64;
    for len in 1..=max_len {
        let mut indices = vec![0usize; len];
        loop {
            let candidate: Vec<u8> = indices.iter().map(|&i| alphabet[i]).collect();
            attempts += 1;
            if &digest(&candidate) == target {
                return (Some(String::from_utf8(candidate).expect("ascii")), attempts);
            }
            // Increment the odometer.
            let mut pos = len;
            loop {
                if pos == 0 {
                    break;
                }
                pos -= 1;
                indices[pos] += 1;
                if indices[pos] < alphabet.len() {
                    break;
                }
                indices[pos] = 0;
                if pos == 0 {
                    // Wrapped completely: done with this length.
                    break;
                }
            }
            if indices.iter().all(|&i| i == 0) {
                break;
            }
        }
    }
    (None, attempts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1321_vectors() {
        assert_eq!(hex(&digest(b"")), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(hex(&digest(b"a")), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(hex(&digest(b"abc")), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(
            hex(&digest(b"message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0"
        );
        assert_eq!(
            hex(&digest(b"abcdefghijklmnopqrstuvwxyz")),
            "c3fcd3d76192e4007dfb496cca67e13b"
        );
        assert_eq!(
            hex(&digest(
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
            )),
            "d174ab98d277d9f5a5611c2c9f419d9f"
        );
        assert_eq!(
            hex(&digest(
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890"
            )),
            "57edf4a22be3c955ac49da2e2107b67a"
        );
    }

    #[test]
    fn long_input_crosses_block_boundaries() {
        let data = vec![b'x'; 1000];
        // Self-consistency: digest of the same data is stable and differs
        // from a one-byte change.
        let d1 = digest(&data);
        let mut data2 = data.clone();
        data2[999] = b'y';
        assert_ne!(d1, digest(&data2));
    }

    #[test]
    fn brute_force_finds_short_preimages() {
        let target = digest(b"cab");
        let (found, attempts) = brute_force(&target, 3);
        assert_eq!(found.as_deref(), Some("cab"));
        assert!(attempts >= 26 + 26 * 26, "attempts {attempts}");
    }

    #[test]
    fn brute_force_gives_up_when_too_short() {
        let target = digest(b"watermelon");
        let (found, attempts) = brute_force(&target, 1);
        assert_eq!(found, None);
        assert_eq!(attempts, 26);
    }
}
