//! `trustmeter-bench` — the fleet perf harness.
//!
//! Streams a fixed audited batch through a [`FleetService`] worker pool
//! and writes a JSON report (`BENCH_fleet.json` by default) with wall
//! clock, jobs/sec, and the auditor's replay counters, so the performance
//! trajectory of the audited streaming path is tracked from run to run.
//!
//! ```text
//! trustmeter-bench [--smoke] [--jobs N] [--workers N] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the batch to a few jobs for CI: it proves the harness
//! runs end to end without spending CI minutes on a real measurement.

use std::time::Instant;

use serde::Serialize;
use trustmeter_fleet::{
    AttackSpec, FleetConfig, FleetService, IngestConfig, JobSpec, RateCard, SamplingPolicy, Tenant,
    TenantId,
};
use trustmeter_workloads::Workload;

/// Workload scale for harness jobs (matches the criterion fleet bench).
const SCALE: f64 = 0.001;
/// Fleet seed (matches the criterion fleet bench).
const SEED: u64 = 0xf1ee7;

/// What one harness run measured.
#[derive(Debug, Serialize)]
struct BenchReport {
    /// Harness identifier (one report file can hold only this bench today).
    bench: &'static str,
    /// Jobs streamed through the service.
    jobs: u64,
    /// Worker threads in the ingest pool.
    workers: usize,
    /// Workload scale factor per job.
    scale: f64,
    /// Audit sampling policy the run used.
    sampling: SamplingPolicy,
    /// End-to-end wall clock of submit → pump → finish, in seconds.
    wall_secs: f64,
    /// Jobs per wall-clock second.
    jobs_per_sec: f64,
    /// Inline reference replays the auditor performed (serial cost).
    audit_replays: u64,
    /// Runs audited with a worker-precomputed reference (parallel cost).
    audit_reference_hits: u64,
    /// Runs the audit flagged with at least one anomaly.
    flagged_runs: u64,
}

fn batch(n: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let tenant = TenantId((i % 4) as u32 + 1);
            let workload = Workload::ALL[(i % 4) as usize];
            if i % 4 == 0 {
                JobSpec::attacked(i, tenant, workload, SCALE, AttackSpec::Shell)
            } else {
                JobSpec::clean(i, tenant, workload, SCALE)
            }
        })
        .collect()
}

fn run(jobs: u64, workers: usize) -> BenchReport {
    let config = FleetConfig::new(workers, SEED);
    let sampling = config.sampling;
    let mut service = FleetService::new(config);
    for id in 1..=4u32 {
        service.register(Tenant::new(
            TenantId(id),
            format!("t{id}"),
            RateCard::per_cpu_hour(0.10),
        ));
    }
    let specs = batch(jobs);
    let start = Instant::now();
    let mut stream = service.stream(IngestConfig::new(workers).with_capacity(specs.len()));
    for spec in &specs {
        stream.submit(spec.clone()).expect("queue sized for batch");
        stream.pump();
    }
    let report = stream.finish();
    let wall_secs = start.elapsed().as_secs_f64();
    assert_eq!(report.records.len() as u64, jobs, "every job completed");
    let flagged_runs = report.flagged().count() as u64;
    BenchReport {
        bench: "fleet_stream_audited",
        jobs,
        workers,
        scale: SCALE,
        sampling,
        wall_secs,
        jobs_per_sec: jobs as f64 / wall_secs.max(f64::EPSILON),
        audit_replays: service.auditor().replay_count(),
        audit_reference_hits: service.auditor().reference_hit_count(),
        flagged_runs,
    }
}

fn main() {
    let mut jobs: u64 = 128;
    let mut workers: usize = 4;
    let mut out = String::from("BENCH_fleet.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                jobs = 8;
                workers = 2;
            }
            "--jobs" => {
                let value = args.next().expect("--jobs requires a value");
                jobs = value.parse().expect("--jobs takes an integer");
            }
            "--workers" => {
                let value = args.next().expect("--workers requires a value");
                workers = value.parse().expect("--workers takes an integer");
                assert!(workers > 0, "--workers must be positive");
            }
            "--out" => {
                out = args.next().expect("--out requires a path");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: trustmeter-bench [--smoke] [--jobs N] [--workers N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(jobs > 0, "--jobs must be positive");
    let report = run(jobs, workers);
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, format!("{json}\n")).expect("write report file");
    println!(
        "{} jobs / {} workers: {:.3} s wall, {:.1} jobs/s, {} replays, {} reference hits → {}",
        report.jobs,
        report.workers,
        report.wall_secs,
        report.jobs_per_sec,
        report.audit_replays,
        report.audit_reference_hits,
        out
    );
}
