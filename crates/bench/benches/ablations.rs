//! Criterion benches for the ablation studies (extensions beyond the
//! paper's own figures) and for the §V-C comparison / §VI-B defense
//! replays.

use criterion::{criterion_group, criterion_main, Criterion};
use trustmeter_bench::bench_config;
use trustmeter_experiments::{
    comparison_table, defenses, flood_rate_sweep, hz_sweep, scheduler_ablation,
};

fn bench_ablations(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    group.bench_function("hz_sweep", |b| b.iter(|| hz_sweep(&cfg)));
    group.bench_function("scheduler_choice", |b| b.iter(|| scheduler_ablation(&cfg)));
    group.bench_function("flood_rate_sweep", |b| b.iter(|| flood_rate_sweep(&cfg)));
    group.bench_function("comparison_table_vc", |b| b.iter(|| comparison_table(&cfg)));
    group.bench_function("defenses_vib", |b| b.iter(|| defenses(&cfg)));

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
