//! A utility-computing billing audit, end to end.
//!
//! The provider runs the customer's job, meters it with the commodity tick
//! scheme, and returns a TPM-style quote binding the usage report to the
//! measured code closure and the execution witness. The customer verifies
//! the quote, checks the measurement log against her whitelist, and compares
//! the bill against a reference execution — the full trust-establishment
//! workflow the paper's §VI sketches.
//!
//! ```text
//! cargo run --release --example cloud_billing_audit
//! ```

use trustmeter::prelude::*;

fn main() {
    let scale = 0.01;
    let freq = CpuFrequency::E7200;
    let card = RateCard::per_cpu_hour(0.10);

    // ---------------------------------------------------------------
    // The customer first runs the job on her own (small) reference machine
    // to learn the expected closure and the expected CPU time.
    // ---------------------------------------------------------------
    let reference = Scenario::new(Workload::Pi, scale).run_clean();
    let whitelist = reference.measured_images.clone();
    println!(
        "reference run: {:.3} CPU s, {} measured images",
        reference.billed_total_secs(),
        whitelist.len()
    );

    // ---------------------------------------------------------------
    // The dishonest provider executes the same job with a preloaded
    // malicious constructor and bills the inflated reading.
    // ---------------------------------------------------------------
    let attack = PreloadConstructorAttack::paper_default(scale);
    let provider_run = Scenario::new(Workload::Pi, scale).run_attacked(&attack);
    let invoice = card.invoice(provider_run.victim_billed, freq);
    println!(
        "provider reports {:.3} CPU s and bills {:.6} $",
        provider_run.billed_total_secs(),
        invoice.total
    );

    // The platform's attestation key signs a quote over the usage, the
    // measurement PCR and the witness digest (the kernel is trusted, so the
    // numbers themselves are not forged — they are just produced by an
    // untrustworthy accounting scheme).
    let aik = AttestationKey::from_seed(b"platform-aik");
    let nonce = 0xc0ffee;
    let quote = aik.quote(
        nonce,
        provider_run.measurement_pcr,
        provider_run.witness_digest,
        provider_run.victim_billed,
    );

    // ---------------------------------------------------------------
    // The customer audits.
    // ---------------------------------------------------------------
    assert!(
        aik.verify(&quote, nonce).is_ok(),
        "quote signature must verify"
    );

    // 1. Source integrity: is anything in the closure that should not be?
    let unexpected = provider_run.unexpected_images(&whitelist);
    println!("unexpected images in the provider's closure: {unexpected:?}");

    // 2. Fine-grained metering: how does the bill compare with the reference?
    let overcharge = OverchargeReport::compare(quote.usage, reference.victim_billed, freq);
    println!("overcharge analysis: {overcharge}");

    // 3. Combined verdict over the paper's three properties.
    let mut log = MeasurementLog::new();
    for name in &provider_run.measured_images {
        log.measure(MeasuredImage::new(name.clone(), ImageKind::SharedLibrary));
    }
    let source_report = log.verify(whitelist.iter().map(|s| s.as_str()), log.pcr());
    let execution_ok = provider_run.witness_digest == reference.witness_digest;
    let assessment = TrustAssessment::new(&source_report, execution_ok, overcharge);
    println!("final assessment: {assessment}");
    assert!(
        !assessment.is_trustworthy(),
        "the attacked platform must be flagged"
    );
    println!("\nviolated properties: {:?}", assessment.violations());
}
