//! Property-based tests (proptest) over the core invariants:
//! accounting conservation, monotonicity, hash-chain integrity, and
//! billing arithmetic.

use proptest::prelude::*;
use trustmeter::prelude::*;

// ---------------------------------------------------------------------------
// Metering-scheme invariants over arbitrary event streams
// ---------------------------------------------------------------------------

/// A simplified random execution: a sequence of slices, each with a task id,
/// a mode, and a duration; ticks arrive every `jiffy` cycles.
#[derive(Debug, Clone)]
struct RandomExecution {
    jiffy: u64,
    slices: Vec<(u32, bool, u64)>, // (task, kernel?, cycles)
}

fn random_execution() -> impl Strategy<Value = RandomExecution> {
    (
        1_000u64..50_000,
        prop::collection::vec((1u32..6, any::<bool>(), 1u64..30_000), 1..60),
    )
        .prop_map(|(jiffy, slices)| RandomExecution { jiffy, slices })
}

/// Replays a random execution into a set of schemes, emitting switch,
/// mode-change and timer-tick events the way the kernel would.
fn replay(exec: &RandomExecution, bank: &mut MeterBank) -> (u64, u64) {
    let mut now = 0u64;
    let mut next_tick = exec.jiffy;
    let mut busy = 0u64;
    let mut ticks = 0u64;
    for (task, kernel, cycles) in &exec.slices {
        let task = TaskId(*task);
        let mode = if *kernel { Mode::Kernel } else { Mode::User };
        bank.on_event(&MeterEvent::SwitchIn {
            at: Cycles(now),
            task,
            mode,
        });
        let mut remaining = *cycles;
        while remaining > 0 {
            let run = remaining.min(next_tick - now);
            now += run;
            remaining -= run;
            busy += run;
            if now == next_tick {
                bank.on_event(&MeterEvent::TimerTick {
                    at: Cycles(now),
                    task: Some(task),
                    mode,
                });
                ticks += 1;
                next_tick += exec.jiffy;
            }
        }
        bank.on_event(&MeterEvent::SwitchOut {
            at: Cycles(now),
            task,
        });
    }
    (busy, ticks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The TSC scheme accounts exactly the busy cycles, never more or less.
    #[test]
    fn tsc_accounting_conserves_busy_time(exec in random_execution()) {
        let mut bank = MeterBank::standard(Cycles(exec.jiffy));
        let (busy, _) = replay(&exec, &mut bank);
        let total: u64 = bank
            .usages(SchemeKind::Tsc)
            .values()
            .map(|u| u.total().as_u64())
            .sum();
        prop_assert_eq!(total, busy);
    }

    /// The tick scheme accounts exactly one jiffy per non-idle tick.
    #[test]
    fn tick_accounting_totals_jiffies(exec in random_execution()) {
        let mut bank = MeterBank::standard(Cycles(exec.jiffy));
        let (_, ticks) = replay(&exec, &mut bank);
        let total: u64 = bank
            .usages(SchemeKind::Tick)
            .values()
            .map(|u| u.total().as_u64())
            .sum();
        prop_assert_eq!(total, ticks * exec.jiffy);
    }

    /// The tick scheme's error for any single task is bounded by one jiffy
    /// per context switch of that task (the imprecision the scheduling
    /// attack exploits is bounded, not unbounded).
    #[test]
    fn tick_error_bounded_by_switch_count(exec in random_execution()) {
        let mut bank = MeterBank::standard(Cycles(exec.jiffy));
        replay(&exec, &mut bank);
        let tick = bank.usages(SchemeKind::Tick);
        let tsc = bank.usages(SchemeKind::Tsc);
        for (task, truth) in &tsc {
            let billed = tick.get(task).copied().unwrap_or(CpuTime::ZERO);
            let switches = exec.slices.iter().filter(|(t, _, _)| TaskId(*t) == *task).count() as u64;
            let bound = (switches + 1) * exec.jiffy;
            let err = billed.total().as_u64().abs_diff(truth.total().as_u64());
            prop_assert!(err <= bound, "task {task}: err {err} > bound {bound}");
        }
    }

    /// Process-aware and TSC accounting agree exactly when there are no
    /// interrupts in the stream.
    #[test]
    fn process_aware_equals_tsc_without_interrupts(exec in random_execution()) {
        let mut bank = MeterBank::standard(Cycles(exec.jiffy));
        replay(&exec, &mut bank);
        prop_assert_eq!(bank.usages(SchemeKind::Tsc), bank.usages(SchemeKind::ProcessAware));
    }
}

// ---------------------------------------------------------------------------
// CpuTime / billing arithmetic
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cputime_addition_is_commutative_and_monotone(
        a_u in 0u64..1_000_000_000, a_s in 0u64..1_000_000_000,
        b_u in 0u64..1_000_000_000, b_s in 0u64..1_000_000_000,
    ) {
        let a = CpuTime::new(Cycles(a_u), Cycles(a_s));
        let b = CpuTime::new(Cycles(b_u), Cycles(b_s));
        prop_assert_eq!(a + b, b + a);
        prop_assert!((a + b).total() >= a.total());
        prop_assert_eq!((a + b).saturating_sub(b), a);
    }

    #[test]
    fn invoice_total_scales_linearly_with_usage(
        secs in 1u64..100_000,
        price in 0.01f64..10.0,
    ) {
        let freq = CpuFrequency::from_mhz(1000);
        let card = RateCard::per_cpu_second(price);
        let usage = CpuTime::user(freq.cycles_for(Nanos::from_secs(secs)));
        let double = CpuTime::user(freq.cycles_for(Nanos::from_secs(secs * 2)));
        let single = card.invoice(usage, freq).total;
        let doubled = card.invoice(double, freq).total;
        prop_assert!((doubled - 2.0 * single).abs() < 1e-6 * doubled.max(1.0));
    }

    #[test]
    fn overcharge_report_is_consistent(
        ref_u in 1u64..1_000_000_000, meas_u in 1u64..2_000_000_000,
    ) {
        let freq = CpuFrequency::from_mhz(1000);
        let reference = CpuTime::user(Cycles(ref_u));
        let measured = CpuTime::user(Cycles(meas_u));
        let report = OverchargeReport::compare(measured, reference, freq);
        prop_assert!(report.overcharge_secs >= 0.0);
        if report.verdict == Verdict::Overcharged {
            prop_assert!(meas_u > ref_u);
            prop_assert!(report.inflation_ratio > 1.0);
        }
        if meas_u == ref_u {
            prop_assert_eq!(report.verdict, Verdict::Consistent);
        }
    }
}

// ---------------------------------------------------------------------------
// Integrity structures
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SHA-256 streaming equals one-shot hashing for arbitrary chunkings.
    #[test]
    fn sha256_streaming_matches_oneshot(data in prop::collection::vec(any::<u8>(), 0..2048), split in 1usize..64) {
        let oneshot = Sha256::digest(&data);
        let mut h = Sha256::new();
        for chunk in data.chunks(split) {
            h.update(chunk);
        }
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// PCR replay commits to the exact measurement order.
    #[test]
    fn pcr_replay_detects_any_reordering(names in prop::collection::vec("[a-z]{1,8}", 2..10)) {
        let digests: Vec<Digest> = names.iter().map(|n| Digest::of(n.as_bytes())).collect();
        let original = PcrBank::replay(digests.clone());
        let mut swapped = digests.clone();
        swapped.swap(0, 1);
        if digests[0] != digests[1] {
            prop_assert_ne!(PcrBank::replay(swapped), original);
        }
    }

    /// A measurement log verifies against its own contents and flags any
    /// extra image.
    #[test]
    fn measurement_log_flags_extras(names in prop::collection::vec("[a-z]{1,8}", 1..8), extra in "[a-z]{9,12}") {
        let mut log = MeasurementLog::new();
        for n in &names {
            log.measure(MeasuredImage::new(n.clone(), ImageKind::SharedLibrary));
        }
        let ok = log.verify(names.iter().map(|s| s.as_str()), log.pcr());
        prop_assert!(ok.is_trustworthy());
        log.measure(MeasuredImage::new(extra.clone(), ImageKind::ShellInjected));
        let bad = log.verify(names.iter().map(|s| s.as_str()), log.pcr());
        prop_assert!(!bad.is_trustworthy());
        prop_assert_eq!(bad.unexpected.len(), 1);
    }

    /// Execution witnesses match exactly when and only when the recorded
    /// sequences match.
    #[test]
    fn witness_equality_matches_sequence_equality(
        a in prop::collection::vec("[a-z]{1,6}", 0..20),
        b in prop::collection::vec("[a-z]{1,6}", 0..20),
    ) {
        let mut wa = ExecutionWitness::new();
        let mut wb = ExecutionWitness::new();
        for s in &a { wa.record(s); }
        for s in &b { wb.record(s); }
        prop_assert_eq!(wa.matches(&wb), a == b);
    }

    /// Quotes verify if and only if nothing was tampered with.
    #[test]
    fn quote_tampering_is_detected(nonce in any::<u64>(), u in any::<u64>(), s in any::<u64>(), bump in 1u64..1_000) {
        let key = AttestationKey::from_seed(b"test-aik");
        let usage = CpuTime::new(Cycles(u), Cycles(s));
        let quote = key.quote(nonce, Digest::of(b"pcr"), Digest::of(b"wit"), usage);
        prop_assert!(key.verify(&quote, nonce).is_ok());
        let mut forged = quote.clone();
        forged.usage.utime = Cycles(u.wrapping_add(bump));
        prop_assert!(key.verify(&forged, nonce).is_err());
    }
}

// ---------------------------------------------------------------------------
// Event queue ordering
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn event_queue_pops_in_nondecreasing_time_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = trustmeter_sim::EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(Cycles(*t), i);
        }
        let mut last = Cycles::ZERO;
        let mut popped = 0;
        while let Some(ev) = q.pop() {
            prop_assert!(ev.at >= last);
            last = ev.at;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }
}

// ---------------------------------------------------------------------------
// Evidence-ledger invariants over random journal lifecycles
// ---------------------------------------------------------------------------

/// One step of a random journal lifecycle.
#[derive(Debug, Clone)]
enum LedgerOp {
    /// Process a few more jobs through the service (appends chained
    /// Run/Invoice/Verdict triples, rotating — and sealing — segments as
    /// the byte threshold passes).
    Run(u8),
    /// Fold everything so far into a checkpoint (retires sealed history).
    Checkpoint,
    /// Seal the in-progress head segment.
    Seal,
    /// Drop every handle and reopen the directory cold.
    Reopen,
}

fn ledger_ops() -> impl Strategy<Value = Vec<LedgerOp>> {
    // Weighted pick: half the steps append runs, the rest split across
    // checkpoint, seal and reopen.
    prop::collection::vec((0u8..6, 1u8..4), 1..10).prop_map(|picks| {
        picks
            .into_iter()
            .map(|(pick, n)| match pick {
                0..=2 => LedgerOp::Run(n),
                3 => LedgerOp::Checkpoint,
                4 => LedgerOp::Seal,
                _ => LedgerOp::Reopen,
            })
            .collect()
    })
}

/// A directory unique to one proptest case.
fn case_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "trustmeter-prop-ledger-{}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn prop_service(journal: Journal) -> FleetService {
    let mut service = FleetService::new(FleetConfig::new(2, 77));
    for id in 1..=2u32 {
        service.register(Tenant::new(
            TenantId(id),
            format!("tenant-{id}"),
            RateCard::per_cpu_second(0.01),
        ));
    }
    service.with_journal(journal)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of append / rotate / checkpoint / retire / reopen
    /// leaves the ledger chain-verifiable, and every inclusion proof
    /// verifies against its own sealed block header — and against no
    /// other.
    #[test]
    fn ledger_lifecycles_preserve_chain_and_proof_verification(ops in ledger_ops()) {
        const SEED: u64 = 77;
        let dir = case_dir();
        // Segments small enough that a couple of jobs cross the rotation
        // threshold, so sealing happens mid-lifecycle, not just on demand.
        let config = SegmentConfig::default()
            .with_segment_bytes(2 * 1024)
            .with_seal(SEED);
        let mut journal = Journal::segmented(&dir, config).unwrap();
        let mut service = prop_service(journal.clone());
        let mut next_id = 0u64;
        let mut live_jobs: Vec<JobId> = Vec::new();
        for op in &ops {
            match op {
                LedgerOp::Run(n) => {
                    let jobs: Vec<JobSpec> = (0..u64::from(*n))
                        .map(|_| {
                            let id = next_id;
                            next_id += 1;
                            live_jobs.push(JobId(id));
                            JobSpec::clean(
                                id,
                                TenantId((id % 2) as u32 + 1),
                                Workload::ALL[(id % 4) as usize],
                                0.001,
                            )
                        })
                        .collect();
                    service.process(&jobs);
                }
                LedgerOp::Checkpoint => {
                    let checkpoint = service.checkpoint();
                    journal.append_checkpoint(&checkpoint).unwrap();
                    live_jobs.clear();
                }
                LedgerOp::Seal => journal.seal().unwrap(),
                LedgerOp::Reopen => {
                    drop(service);
                    journal = Journal::segmented(&dir, config).unwrap();
                    // The chain must pick up exactly where the old handle
                    // left it: recover the service and keep appending.
                    let (entries, _) = journal.entries().unwrap();
                    service = prop_service(journal.clone());
                    service.recover_latest(&entries).unwrap();
                }
            }
            // The chain walk accepts the journal after every step.
            let (_, tail) = journal.entries().unwrap();
            prop_assert_eq!(tail, TailStatus::Clean);
        }

        // Seal the head so every entry is covered, then verify the whole
        // ledger: chain walk plus every sealed block header.
        journal.seal().unwrap();
        let verification = journal.verify(SEED).unwrap();
        let (entries, _) = journal.entries().unwrap();
        prop_assert_eq!(verification.entries, entries.len() as u64);

        // Every live job's proofs verify against their own headers and
        // fail against every other sealed header.
        let key = SealKey::from_seed(SEED);
        let headers = journal.sealed_headers().unwrap();
        for job in live_jobs.iter().take(4) {
            let proofs = journal.prove(*job).unwrap();
            prop_assert!(!proofs.is_empty(), "sealed evidence names job {job}");
            for proof in &proofs {
                prop_assert!(proof.verify(&key).is_ok());
                for header in headers.iter().filter(|h| h.segment != proof.header.segment) {
                    prop_assert!(
                        proof.verify_against(header).is_err(),
                        "proof for segment {} folded into segment {}",
                        proof.header.segment,
                        header.segment
                    );
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
