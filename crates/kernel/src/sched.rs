//! CPU schedulers.
//!
//! Two schedulers are provided:
//!
//! * [`FairShareScheduler`] (the default) — a per-jiffy proportional-share
//!   scheduler with *tick-quantised preemption*: scheduling decisions are
//!   taken when the running task blocks or exits and at every timer tick,
//!   never in the middle of a jiffy because of a wakeup. Each task's share
//!   of a jiffy is proportional to its nice-derived weight, and tasks that
//!   recently blocked voluntarily (interactive/sleeper credit) are preferred
//!   at equal remaining entitlement. These two properties — whole-jiffy
//!   charging by the tick accountant plus attackers that run right after
//!   the tick and relinquish before the next one — are what the paper's
//!   process-scheduling attack exploits (§IV-B1).
//! * [`CfsScheduler`] — a vruntime-based scheduler with immediate wakeup
//!   preemption, used by the scheduler ablation (E12) to show how the choice
//!   of scheduler changes the attack's effectiveness.
//!
//! The scheduler only manages *ready* tasks; the kernel tells it when tasks
//! are created, become runnable, block, or exit, and asks it to pick the
//! next task to run.

use crate::config::SchedulerKind;
use std::collections::BTreeMap;
use trustmeter_core::TaskId;
use trustmeter_sim::Cycles;

/// Weight derived from a nice value, O(1)-scheduler style: the default
/// timeslice in milliseconds, `(20 − nice) × 5`, clamped to ≥ 5.
///
/// nice 0 → 100, nice −20 → 200, nice 19 → 5.
pub fn nice_to_weight(nice: i8) -> u64 {
    let ts = (20 - nice as i64) * 5;
    ts.max(5) as u64
}

/// CFS-style weight, approximately `1024 × 1.25^(−nice)`.
pub fn nice_to_cfs_weight(nice: i8) -> u64 {
    let w = 1024.0 * 1.25f64.powi(-(nice as i32));
    w.round().max(15.0) as u64
}

/// The interface the kernel uses to drive a scheduler.
pub trait Scheduler: Send {
    /// Which scheduler this is.
    fn kind(&self) -> SchedulerKind;

    /// Registers a new task.
    fn task_created(&mut self, id: TaskId, nice: i8, now: Cycles);

    /// Forgets a task entirely (exit).
    fn task_removed(&mut self, id: TaskId);

    /// Updates a task's nice value.
    fn set_nice(&mut self, id: TaskId, nice: i8);

    /// Marks a task runnable. Returns `true` if the scheduler wants the
    /// currently running task preempted right now (only the CFS scheduler
    /// ever asks for that).
    fn enqueue(&mut self, id: TaskId, now: Cycles, current: Option<TaskId>) -> bool;

    /// Removes a task from the ready set (it blocked or stopped before
    /// being picked).
    fn dequeue(&mut self, id: TaskId);

    /// Charges `ran` cycles of CPU consumption to a task.
    fn charge(&mut self, id: TaskId, ran: Cycles);

    /// Notes that a task blocked voluntarily (sleeper credit).
    fn note_voluntary_block(&mut self, id: TaskId, now: Cycles);

    /// Timer tick: returns `true` if the current task should be preempted.
    fn on_tick(&mut self, now: Cycles, current: Option<TaskId>) -> bool;

    /// Picks (and removes from the ready set) the next task to run.
    fn pick_next(&mut self, now: Cycles) -> Option<TaskId>;

    /// Number of ready tasks.
    fn ready_count(&self) -> usize;
}

/// Constructs the scheduler selected by `kind`.
pub fn build_scheduler(kind: SchedulerKind, jiffy: Cycles) -> Box<dyn Scheduler> {
    match kind {
        SchedulerKind::FairShare => Box::new(FairShareScheduler::new(jiffy)),
        SchedulerKind::Cfs => Box::new(CfsScheduler::new(jiffy)),
    }
}

// ---------------------------------------------------------------------------
// Fair-share scheduler
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct FairTask {
    weight: u64,
    used_this_jiffy: Cycles,
    sleeper_seq: u64,
    last_picked_seq: u64,
    ready: bool,
}

/// Per-jiffy proportional-share scheduler with tick-quantised preemption.
///
/// # Example
///
/// ```
/// use trustmeter_kernel::sched::{FairShareScheduler, Scheduler};
/// use trustmeter_core::TaskId;
/// use trustmeter_sim::Cycles;
///
/// let mut s = FairShareScheduler::new(Cycles(1_000));
/// s.task_created(TaskId(1), 0, Cycles(0));
/// s.task_created(TaskId(2), -10, Cycles(0));
/// s.enqueue(TaskId(1), Cycles(0), None);
/// s.enqueue(TaskId(2), Cycles(0), None);
/// // The higher-priority task (larger weight) is picked first.
/// assert_eq!(s.pick_next(Cycles(0)), Some(TaskId(2)));
/// ```
#[derive(Debug)]
pub struct FairShareScheduler {
    jiffy: Cycles,
    tasks: BTreeMap<TaskId, FairTask>,
    sleep_counter: u64,
    pick_counter: u64,
}

impl FairShareScheduler {
    /// Creates a fair-share scheduler for the given jiffy length.
    pub fn new(jiffy: Cycles) -> FairShareScheduler {
        FairShareScheduler {
            jiffy,
            tasks: BTreeMap::new(),
            sleep_counter: 0,
            pick_counter: 0,
        }
    }

    /// Remaining per-jiffy entitlement of a task, in cycles, given the total
    /// weight of all ready tasks (plus the current one).
    fn remaining_entitlement(&self, t: &FairTask, total_weight: u64) -> i128 {
        let entitled = self.jiffy.as_u64() as i128 * t.weight as i128 / total_weight.max(1) as i128;
        entitled - t.used_this_jiffy.as_u64() as i128
    }

    fn total_ready_weight(&self, extra: Option<TaskId>) -> u64 {
        self.tasks
            .iter()
            .filter(|(id, t)| t.ready || Some(**id) == extra)
            .map(|(_, t)| t.weight)
            .sum()
    }
}

impl Scheduler for FairShareScheduler {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::FairShare
    }

    fn task_created(&mut self, id: TaskId, nice: i8, _now: Cycles) {
        self.tasks.insert(
            id,
            FairTask {
                weight: nice_to_weight(nice),
                used_this_jiffy: Cycles::ZERO,
                sleeper_seq: 0,
                last_picked_seq: 0,
                ready: false,
            },
        );
    }

    fn task_removed(&mut self, id: TaskId) {
        self.tasks.remove(&id);
    }

    fn set_nice(&mut self, id: TaskId, nice: i8) {
        if let Some(t) = self.tasks.get_mut(&id) {
            t.weight = nice_to_weight(nice);
        }
    }

    fn enqueue(&mut self, id: TaskId, _now: Cycles, _current: Option<TaskId>) -> bool {
        if let Some(t) = self.tasks.get_mut(&id) {
            t.ready = true;
        }
        // Tick-quantised preemption: wakeups never preempt the running task.
        false
    }

    fn dequeue(&mut self, id: TaskId) {
        if let Some(t) = self.tasks.get_mut(&id) {
            t.ready = false;
        }
    }

    fn charge(&mut self, id: TaskId, ran: Cycles) {
        if let Some(t) = self.tasks.get_mut(&id) {
            t.used_this_jiffy += ran;
        }
    }

    fn note_voluntary_block(&mut self, id: TaskId, _now: Cycles) {
        self.sleep_counter += 1;
        let seq = self.sleep_counter;
        if let Some(t) = self.tasks.get_mut(&id) {
            t.sleeper_seq = seq;
        }
    }

    fn on_tick(&mut self, _now: Cycles, current: Option<TaskId>) -> bool {
        // New jiffy: everyone's entitlement is replenished.
        for t in self.tasks.values_mut() {
            t.used_this_jiffy = Cycles::ZERO;
        }
        // Preempt the current task if any ready task is at least as entitled
        // (higher weight, or equal weight with sleeper credit) — this is
        // where round-robin among equals and priority preemption happen.
        let Some(cur) = current else {
            return self.ready_count() > 0;
        };
        let Some(cur_t) = self.tasks.get(&cur) else {
            return self.ready_count() > 0;
        };
        self.tasks
            .iter()
            .filter(|(id, t)| t.ready && **id != cur)
            .any(|(_, t)| t.weight >= cur_t.weight)
    }

    fn pick_next(&mut self, _now: Cycles) -> Option<TaskId> {
        let total_weight = self.total_ready_weight(None);
        let best = self
            .tasks
            .iter()
            .filter(|(_, t)| t.ready)
            .max_by(|(aid, a), (bid, b)| {
                let ra = self.remaining_entitlement(a, total_weight);
                let rb = self.remaining_entitlement(b, total_weight);
                ra.cmp(&rb)
                    .then(a.sleeper_seq.cmp(&b.sleeper_seq))
                    // Round-robin among otherwise-equal tasks: prefer the one
                    // picked least recently.
                    .then(b.last_picked_seq.cmp(&a.last_picked_seq))
                    .then(a.weight.cmp(&b.weight))
                    .then(bid.cmp(aid)) // lower id wins the final tie
            })
            .map(|(id, _)| *id)?;
        self.pick_counter += 1;
        let seq = self.pick_counter;
        if let Some(t) = self.tasks.get_mut(&best) {
            t.ready = false;
            t.last_picked_seq = seq;
        }
        Some(best)
    }

    fn ready_count(&self) -> usize {
        self.tasks.values().filter(|t| t.ready).count()
    }
}

// ---------------------------------------------------------------------------
// CFS-like scheduler
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct CfsTask {
    weight: u64,
    vruntime: u128,
    ready: bool,
}

/// vruntime-based scheduler with immediate wakeup preemption (ablation).
#[derive(Debug)]
pub struct CfsScheduler {
    tasks: BTreeMap<TaskId, CfsTask>,
    /// Wakeup/tick preemption granularity in weighted nanoseconds-equivalent
    /// cycles (vruntime units).
    granularity: u128,
    /// Sleeper placement bonus subtracted from `min_vruntime` on wakeup.
    sleeper_bonus: u128,
}

impl CfsScheduler {
    /// Creates a CFS-like scheduler; `jiffy` calibrates the preemption
    /// granularity (half a jiffy) and sleeper bonus (one jiffy).
    pub fn new(jiffy: Cycles) -> CfsScheduler {
        CfsScheduler {
            tasks: BTreeMap::new(),
            granularity: jiffy.as_u64() as u128 / 2,
            sleeper_bonus: jiffy.as_u64() as u128,
        }
    }

    fn min_ready_vruntime(&self) -> Option<u128> {
        self.tasks
            .values()
            .filter(|t| t.ready)
            .map(|t| t.vruntime)
            .min()
    }

    fn min_vruntime_all(&self) -> u128 {
        self.tasks.values().map(|t| t.vruntime).min().unwrap_or(0)
    }
}

impl Scheduler for CfsScheduler {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Cfs
    }

    fn task_created(&mut self, id: TaskId, nice: i8, _now: Cycles) {
        let min = self.min_vruntime_all();
        self.tasks.insert(
            id,
            CfsTask {
                weight: nice_to_cfs_weight(nice),
                vruntime: min,
                ready: false,
            },
        );
    }

    fn task_removed(&mut self, id: TaskId) {
        self.tasks.remove(&id);
    }

    fn set_nice(&mut self, id: TaskId, nice: i8) {
        if let Some(t) = self.tasks.get_mut(&id) {
            t.weight = nice_to_cfs_weight(nice);
        }
    }

    fn enqueue(&mut self, id: TaskId, _now: Cycles, current: Option<TaskId>) -> bool {
        let min = self.min_vruntime_all();
        let bonus = self.sleeper_bonus;
        let Some(t) = self.tasks.get_mut(&id) else {
            return false;
        };
        t.vruntime = t.vruntime.max(min.saturating_sub(bonus));
        t.ready = true;
        let woken_vruntime = t.vruntime;
        // Immediate wakeup preemption when the woken task is sufficiently
        // behind the current task.
        match current.and_then(|c| self.tasks.get(&c)) {
            Some(cur) => woken_vruntime + self.granularity < cur.vruntime,
            None => false,
        }
    }

    fn dequeue(&mut self, id: TaskId) {
        if let Some(t) = self.tasks.get_mut(&id) {
            t.ready = false;
        }
    }

    fn charge(&mut self, id: TaskId, ran: Cycles) {
        if let Some(t) = self.tasks.get_mut(&id) {
            t.vruntime += ran.as_u64() as u128 * 1024 / t.weight as u128;
        }
    }

    fn note_voluntary_block(&mut self, _id: TaskId, _now: Cycles) {}

    fn on_tick(&mut self, _now: Cycles, current: Option<TaskId>) -> bool {
        let Some(cur) = current.and_then(|c| self.tasks.get(&c)) else {
            return self.ready_count() > 0;
        };
        match self.min_ready_vruntime() {
            Some(min) => min + self.granularity < cur.vruntime,
            None => false,
        }
    }

    fn pick_next(&mut self, _now: Cycles) -> Option<TaskId> {
        let best = self
            .tasks
            .iter()
            .filter(|(_, t)| t.ready)
            .min_by(|(aid, a), (bid, b)| a.vruntime.cmp(&b.vruntime).then(aid.cmp(bid)))
            .map(|(id, _)| *id)?;
        if let Some(t) = self.tasks.get_mut(&best) {
            t.ready = false;
        }
        Some(best)
    }

    fn ready_count(&self) -> usize {
        self.tasks.values().filter(|t| t.ready).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_tables() {
        assert_eq!(nice_to_weight(0), 100);
        assert_eq!(nice_to_weight(-20), 200);
        assert_eq!(nice_to_weight(19), 5);
        assert!(nice_to_weight(-10) > nice_to_weight(0));
        assert_eq!(nice_to_cfs_weight(0), 1024);
        assert!(nice_to_cfs_weight(-5) > 3 * nice_to_cfs_weight(0) - 200);
        assert!(nice_to_cfs_weight(19) >= 15);
    }

    #[test]
    fn fair_share_prefers_higher_weight_then_sleepers() {
        let mut s = FairShareScheduler::new(Cycles(1_000));
        s.task_created(TaskId(1), 0, Cycles(0));
        s.task_created(TaskId(2), 0, Cycles(0));
        s.task_created(TaskId(3), -10, Cycles(0));
        for id in [1, 2, 3] {
            s.enqueue(TaskId(id), Cycles(0), None);
        }
        // Higher weight first.
        assert_eq!(s.pick_next(Cycles(0)), Some(TaskId(3)));
        // Among equals, a recent sleeper wins.
        s.note_voluntary_block(TaskId(2), Cycles(0));
        assert_eq!(s.pick_next(Cycles(0)), Some(TaskId(2)));
        assert_eq!(s.pick_next(Cycles(0)), Some(TaskId(1)));
        assert_eq!(s.pick_next(Cycles(0)), None);
        assert_eq!(s.ready_count(), 0);
    }

    #[test]
    fn fair_share_entitlement_depletes_within_jiffy() {
        let jiffy = Cycles(1_000);
        let mut s = FairShareScheduler::new(jiffy);
        s.task_created(TaskId(1), 0, Cycles(0)); // victim
        s.task_created(TaskId(2), 0, Cycles(0)); // attacker
        s.enqueue(TaskId(1), Cycles(0), None);
        s.enqueue(TaskId(2), Cycles(0), None);
        s.note_voluntary_block(TaskId(2), Cycles(0)); // attacker has sleeper credit
                                                      // Attacker picked first, consumes more than its 50% entitlement.
        assert_eq!(s.pick_next(Cycles(0)), Some(TaskId(2)));
        s.charge(TaskId(2), Cycles(600));
        s.enqueue(TaskId(2), Cycles(600), None);
        // Now the victim has more remaining entitlement.
        assert_eq!(s.pick_next(Cycles(600)), Some(TaskId(1)));
        // After the tick, entitlements reset and the sleeper is preferred again.
        s.enqueue(TaskId(1), Cycles(1_000), None);
        let resched = s.on_tick(Cycles(1_000), None);
        assert!(resched);
        assert_eq!(s.pick_next(Cycles(1_000)), Some(TaskId(2)));
    }

    #[test]
    fn fair_share_wakeup_never_preempts() {
        let mut s = FairShareScheduler::new(Cycles(1_000));
        s.task_created(TaskId(1), 0, Cycles(0));
        s.task_created(TaskId(2), -20, Cycles(0));
        let preempt = s.enqueue(TaskId(2), Cycles(10), Some(TaskId(1)));
        assert!(!preempt);
    }

    #[test]
    fn fair_share_tick_preempts_for_equal_or_higher_weight() {
        let mut s = FairShareScheduler::new(Cycles(1_000));
        s.task_created(TaskId(1), 0, Cycles(0));
        s.task_created(TaskId(2), 0, Cycles(0));
        s.enqueue(TaskId(2), Cycles(0), Some(TaskId(1)));
        assert!(s.on_tick(Cycles(1_000), Some(TaskId(1))));
        // A strictly lower-weight waiter does not preempt.
        let mut s2 = FairShareScheduler::new(Cycles(1_000));
        s2.task_created(TaskId(1), -10, Cycles(0));
        s2.task_created(TaskId(2), 5, Cycles(0));
        s2.enqueue(TaskId(2), Cycles(0), Some(TaskId(1)));
        assert!(!s2.on_tick(Cycles(1_000), Some(TaskId(1))));
    }

    #[test]
    fn fair_share_idle_tick_reschedules_when_work_exists() {
        let mut s = FairShareScheduler::new(Cycles(1_000));
        s.task_created(TaskId(1), 0, Cycles(0));
        assert!(!s.on_tick(Cycles(1_000), None));
        s.enqueue(TaskId(1), Cycles(0), None);
        assert!(s.on_tick(Cycles(2_000), None));
    }

    #[test]
    fn set_nice_and_removal() {
        let mut s = FairShareScheduler::new(Cycles(1_000));
        s.task_created(TaskId(1), 0, Cycles(0));
        s.task_created(TaskId(2), 0, Cycles(0));
        s.set_nice(TaskId(2), -20);
        s.enqueue(TaskId(1), Cycles(0), None);
        s.enqueue(TaskId(2), Cycles(0), None);
        assert_eq!(s.pick_next(Cycles(0)), Some(TaskId(2)));
        s.task_removed(TaskId(1));
        assert_eq!(s.ready_count(), 0);
    }

    #[test]
    fn cfs_picks_min_vruntime_and_charges_by_weight() {
        let mut s = CfsScheduler::new(Cycles(1_000));
        s.task_created(TaskId(1), 0, Cycles(0));
        s.task_created(TaskId(2), 0, Cycles(0));
        s.enqueue(TaskId(1), Cycles(0), None);
        s.enqueue(TaskId(2), Cycles(0), None);
        let first = s.pick_next(Cycles(0)).unwrap();
        s.charge(first, Cycles(500));
        s.enqueue(first, Cycles(500), None);
        let second = s.pick_next(Cycles(500)).unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn cfs_wakeup_preemption_depends_on_gap() {
        let mut s = CfsScheduler::new(Cycles(1_000));
        s.task_created(TaskId(1), 0, Cycles(0));
        s.task_created(TaskId(2), 0, Cycles(0));
        // Current task 1 accumulates lots of vruntime.
        s.charge(TaskId(1), Cycles(10_000));
        let preempt = s.enqueue(TaskId(2), Cycles(0), Some(TaskId(1)));
        assert!(preempt);
        // A freshly created task at the same vruntime does not preempt.
        let mut s2 = CfsScheduler::new(Cycles(1_000));
        s2.task_created(TaskId(1), 0, Cycles(0));
        s2.task_created(TaskId(2), 0, Cycles(0));
        assert!(!s2.enqueue(TaskId(2), Cycles(0), Some(TaskId(1))));
    }

    #[test]
    fn cfs_tick_preemption() {
        let mut s = CfsScheduler::new(Cycles(1_000));
        s.task_created(TaskId(1), 0, Cycles(0));
        s.task_created(TaskId(2), 0, Cycles(0));
        s.enqueue(TaskId(2), Cycles(0), None);
        assert!(!s.on_tick(Cycles(0), Some(TaskId(1))));
        s.charge(TaskId(1), Cycles(5_000));
        assert!(s.on_tick(Cycles(1_000), Some(TaskId(1))));
        assert_eq!(s.kind(), SchedulerKind::Cfs);
    }

    #[test]
    fn build_scheduler_dispatches() {
        assert_eq!(
            build_scheduler(SchedulerKind::FairShare, Cycles(10)).kind(),
            SchedulerKind::FairShare
        );
        assert_eq!(
            build_scheduler(SchedulerKind::Cfs, Cycles(10)).kind(),
            SchedulerKind::Cfs
        );
    }
}
