//! Streaming ingestion: tenants submit jobs continuously from their own
//! threads while the service pumps verdicts out of the pipeline.
//!
//! Three tenant threads stream 90 jobs through a 4-worker pool with a
//! deliberately tiny 8-slot submission queue, so blocking backpressure is
//! actually exercised. One tenant is greedy (60 jobs) — per-tenant
//! round-robin keeps the other two flowing anyway. The main thread pumps
//! completed records into the ledger/auditor/metrics as they arrive, then
//! drains the pipeline and replays the same jobs through the one-shot batch
//! path to show the streamed ledgers are bit-identical.
//!
//! ```text
//! cargo run --release --example fleet_stream
//! ```

use trustmeter::prelude::*;

const SCALE: f64 = 0.002;

/// The job list one tenant streams: `count` jobs, ids striped so the three
/// tenants interleave in the global id space.
fn tenant_jobs(tenant: TenantId, count: u64) -> Vec<JobSpec> {
    (0..count)
        .map(|i| {
            let id = i * 3 + (tenant.0 as u64 - 1);
            let workload = Workload::ALL[(id % 4) as usize];
            match tenant.0 {
                2 => JobSpec::attacked(id, tenant, workload, SCALE, AttackSpec::Shell),
                _ => JobSpec::clean(id, tenant, workload, SCALE),
            }
        })
        .collect()
}

fn main() {
    let workers = 4;
    let mut service = FleetService::new(FleetConfig::new(workers, 0x57_12_E4));
    service.register(Tenant::new(
        TenantId(1),
        "greedy-co",
        RateCard::per_cpu_hour(0.10),
    ));
    service.register(Tenant::new(
        TenantId(2),
        "shelled-inc",
        RateCard::per_cpu_hour(0.10),
    ));
    service.register(Tenant::new(
        TenantId(3),
        "modest-llc",
        RateCard::per_cpu_hour(0.12),
    ));

    // Greedy tenant 1 streams 60 jobs; tenants 2 and 3 stream 15 each.
    let plans = vec![
        tenant_jobs(TenantId(1), 60),
        tenant_jobs(TenantId(2), 15),
        tenant_jobs(TenantId(3), 15),
    ];
    let total: usize = plans.iter().map(Vec::len).sum();

    let config = IngestConfig::new(workers).with_capacity(8);
    println!(
        "streaming {total} jobs through {workers} workers \
         (queue capacity {}, policy {:?})...\n",
        config.capacity, config.backpressure
    );

    let mut stream = service.stream(config);
    let submitters: Vec<_> = plans
        .into_iter()
        .map(|jobs| {
            let handle = stream.handle();
            std::thread::spawn(move || {
                for job in jobs {
                    // Blocking backpressure: a full queue parks this tenant
                    // thread until a worker frees a slot.
                    handle.submit(job).expect("pipeline accepts until finish");
                }
            })
        })
        .collect();

    // Pump completions while the tenants stream.
    let mut posted = 0;
    while posted < total {
        let newly = stream.pump();
        if newly > 0 && (posted + newly) / 20 > posted / 20 {
            let stats = stream.stats();
            println!(
                "  posted {:>3}/{total}, queued {}, inflight {}",
                posted + newly,
                stats.queued,
                stats.inflight_total()
            );
        }
        posted += newly;
        std::thread::yield_now();
    }
    for submitter in submitters {
        submitter.join().expect("submitter finished");
    }
    let report = stream.finish();
    assert_eq!(report.records.len(), total);

    println!("\n=== per-tenant ledgers (streamed) ===");
    for account in report.ledger.iter() {
        let tenant = service.directory().get(account.tenant).expect("registered");
        println!("  {:<12} {}", tenant.name, account);
    }

    // Fairness: the greedy tenant never starved the modest ones — their
    // jobs completed interleaved with the backlog, not after it.
    println!("\n=== audit summaries ===");
    for summary in service.auditor().summaries() {
        println!(
            "  {}: {}/{} runs flagged, {:.2}s overbilled",
            summary.tenant, summary.flagged_runs, summary.runs, summary.overcharge_secs,
        );
    }

    // Replay the same jobs through the one-shot batch path: invoice totals
    // agree to the bit, whatever the worker count or completion timing.
    let mut jobs: Vec<JobSpec> = report.records.iter().map(|r| r.job.clone()).collect();
    jobs.sort_by_key(|job| job.id);
    let mut batch_service = FleetService::new(FleetConfig::new(1, 0x57_12_E4));
    for tenant in service.directory().iter() {
        batch_service.register(tenant.clone());
    }
    let batch = batch_service.process(&jobs);
    for (streamed, batched) in report.ledger.iter().zip(batch.ledger.iter()) {
        assert_eq!(
            streamed.billed_charge, batched.billed_charge,
            "streamed and batch bills must be bit-identical"
        );
        assert_eq!(streamed.truth_charge, batched.truth_charge);
    }
    println!(
        "\nstreamed == batch: {} accounts, billed total {:.6}",
        report.ledger.len(),
        report.ledger.total_billed_charge()
    );

    println!("\n=== ingest metrics ===");
    for line in service.metrics_text().lines() {
        if line.contains("fleet_queue_depth")
            || line.contains("fleet_inflight")
            || line.contains("fleet_submissions_rejected")
        {
            println!("  {line}");
        }
    }
}
