//! The full trust-establishment workflow of §VI, as an integration test:
//! reference execution → provider execution → attestation quote → customer
//! audit, for an honest platform and for each class of dishonest platform.

use trustmeter::prelude::*;

const SCALE: f64 = 0.002;

struct Audit {
    assessment: TrustAssessment,
    flagged_images: Vec<String>,
}

/// Runs the customer-side audit of a provider run against a reference run.
fn audit(reference: &ScenarioOutcome, provider: &ScenarioOutcome) -> Audit {
    let freq = CpuFrequency::E7200;
    // Rebuild the provider's measurement log from the reported image names
    // (the quote's PCR binds the log; here we trust the simulated transport).
    let mut log = MeasurementLog::new();
    for name in &provider.measured_images {
        log.measure(MeasuredImage::new(name.clone(), ImageKind::SharedLibrary));
    }
    let source = log.verify(
        reference.measured_images.iter().map(|s| s.as_str()),
        log.pcr(),
    );
    let execution_ok = provider.witness_digest == reference.witness_digest;
    let overcharge =
        OverchargeReport::compare(provider.victim_billed, reference.victim_billed, freq);
    Audit {
        assessment: TrustAssessment::new(&source, execution_ok, overcharge),
        flagged_images: source.unexpected.iter().map(|m| m.name.clone()).collect(),
    }
}

#[test]
fn honest_platform_passes_the_audit() {
    let scenario = Scenario::new(Workload::Pi, SCALE);
    let reference = scenario.run_clean();
    let provider = scenario.run_clean();
    let audit = audit(&reference, &provider);
    assert!(audit.assessment.is_trustworthy(), "{}", audit.assessment);
    assert!(audit.flagged_images.is_empty());
}

#[test]
fn quote_binds_usage_pcr_and_witness() {
    let scenario = Scenario::new(Workload::Pi, SCALE);
    let provider = scenario.run_clean();
    let aik = AttestationKey::from_seed(b"platform");
    let quote = aik.quote(
        99,
        provider.measurement_pcr,
        provider.witness_digest,
        provider.victim_billed,
    );
    assert!(aik.verify(&quote, 99).is_ok());
    assert_eq!(
        aik.verify(&quote, 100),
        Err(trustmeter::core::QuoteError::NonceMismatch)
    );
    let mut tampered = quote.clone();
    tampered.usage.stime += Cycles(1);
    assert!(aik.verify(&tampered, 99).is_err());
}

#[test]
fn launch_time_attack_fails_source_integrity() {
    let scenario = Scenario::new(Workload::Whetstone, SCALE);
    let reference = scenario.run_clean();
    let provider = scenario.run_attacked(&PreloadConstructorAttack::paper_default(SCALE));
    let audit = audit(&reference, &provider);
    assert!(!audit.assessment.is_trustworthy());
    assert!(audit
        .assessment
        .violations()
        .contains(&TrustProperty::SourceIntegrity));
    assert!(audit
        .flagged_images
        .iter()
        .any(|n| n.contains("attack_preload")));
}

#[test]
fn scheduling_attack_fails_only_fine_grained_metering() {
    let scenario = Scenario::new(Workload::Whetstone, SCALE);
    let reference = scenario.run_clean();
    let provider = scenario.run_attacked(&SchedulingAttack::paper_default(SCALE, -15));
    let audit = audit(&reference, &provider);
    assert!(!audit.assessment.is_trustworthy());
    let violations = audit.assessment.violations();
    assert!(
        violations.contains(&TrustProperty::FineGrainedMetering),
        "{violations:?}"
    );
    // No code was injected and the control flow is intact.
    assert!(!violations.contains(&TrustProperty::SourceIntegrity));
    assert!(!violations.contains(&TrustProperty::ExecutionIntegrity));
    assert!(audit.flagged_images.is_empty());
}

#[test]
fn thrashing_attack_fails_fine_grained_metering_without_touching_the_closure() {
    let scenario = Scenario::new(Workload::Whetstone, SCALE);
    let reference = scenario.run_clean();
    let provider = scenario.run_attacked(&ThrashingAttack::paper_default());
    let audit = audit(&reference, &provider);
    assert!(!audit.assessment.is_trustworthy());
    assert!(
        audit.flagged_images.is_empty(),
        "no injected images: {:?}",
        audit.flagged_images
    );
    assert!(audit
        .assessment
        .violations()
        .contains(&TrustProperty::FineGrainedMetering));
}

#[test]
fn invoices_from_the_three_schemes_rank_as_expected_under_attack() {
    let card = RateCard::per_cpu_second(0.001);
    let freq = CpuFrequency::E7200;
    let scenario = Scenario::new(Workload::LoopO, SCALE);
    let attacked = scenario.run_attacked(&InterruptFloodAttack::paper_default());
    let billed = card.invoice(attacked.victim_billed, freq).total;
    let truth = card.invoice(attacked.victim_truth, freq).total;
    let aware = card.invoice(attacked.victim_process_aware, freq).total;
    // The commodity bill is the largest, the process-aware bill the smallest.
    assert!(billed >= truth * 0.95, "billed {billed} vs truth {truth}");
    assert!(aware <= truth, "aware {aware} vs truth {truth}");
}
