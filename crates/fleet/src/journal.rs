//! The durable journal: write-ahead persistence, crash recovery and
//! compaction for the fleet.
//!
//! The paper's trust argument only holds if the metering evidence survives
//! the meterer: an in-memory ledger is exactly the mutable accounting state
//! a crash — or a cheating provider — can rewrite. This module makes the
//! fleet's accounting *append-only and replayable*: every accounting-
//! relevant event is serialized as one JSON line (via the vendored
//! `serde_json`) into a [`Journal`] **before** its effects are released,
//! so a restarted service can rebuild bit-identical
//! [`crate::Ledger`]/[`crate::TenantAuditSummary`]/metrics state with
//! [`crate::FleetService::recover`].
//!
//! Four typed entries ([`JournalEntry`]):
//!
//! * **`Run`** — a completed [`RunRecord`], appended by the ingest
//!   pipeline's completion log *before* the record is released to the
//!   consumer (the write-ahead point). A record that was never journaled
//!   was never released, so it was never billed: crash-lost work simply
//!   never happened.
//! * **`Invoice`** — the ledger posting derived from a run (both the
//!   billed and the ground-truth invoice), appended when the service
//!   posts the record.
//! * **`Verdict`** — the audit verdict for a run, appended alongside the
//!   invoice. Together, `Invoice` + `Verdict` are the durable *receipts*:
//!   recovery re-derives both from the `Run` entry and cross-checks them,
//!   so a journal whose receipts were tampered with after the fact is
//!   detected (see [`RecoveryReport::mismatches`]).
//! * **`Checkpoint`** — a folded prefix: ledger, audit summaries and
//!   metrics as of some run count, produced by [`compact`] so long-running
//!   fleets do not replay from genesis.
//!
//! A truncated tail — the partial, newline-less last line a crash
//! mid-append leaves behind — is detected at parse time and dropped
//! ([`TailStatus`]), and [`FileSink::open`] repairs it before appending
//! so a restarted process never merges new entries into the torn
//! fragment. Any unparseable line that *is* newline-terminated was fully
//! written and later damaged, so it is an error ([`JournalError::Corrupt`]),
//! wherever it sits.
//!
//! ```
//! use trustmeter_fleet::{FleetConfig, FleetService, JobSpec, Journal, TenantId};
//! use trustmeter_workloads::Workload;
//!
//! let journal = Journal::in_memory();
//! let mut service = FleetService::new(FleetConfig::new(1, 42)).with_journal(journal.clone());
//! service.process(&[JobSpec::clean(0, TenantId(1), Workload::LoopO, 0.001)]);
//!
//! // The journal now holds Run + Invoice + Verdict for the job; a fresh
//! // service replays it into bit-identical state.
//! let (entries, _tail) = journal.entries().unwrap();
//! let mut restarted = FleetService::new(FleetConfig::new(1, 42));
//! let report = restarted.recover(&entries).unwrap();
//! assert_eq!(report.runs_replayed, 1);
//! assert_eq!(restarted.ledger(), service.ledger());
//! ```

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

use serde::{Deserialize, Serialize};

use crate::auditor::{AuditVerdict, AuditorState};
use crate::executor::{JobId, RunRecord};
use crate::metrics::MetricsRegistry;
use crate::tenant::{Ledger, TenantId};
use crate::FleetService;
use trustmeter_core::Invoice;

/// One append-only journal record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalEntry {
    /// A completed run, journaled before it is released to the consumer
    /// (boxed: a `RunRecord` is by far the largest entry).
    Run(Box<RunRecord>),
    /// The ledger posting a run produced (the billing receipt).
    Invoice(InvoicePosting),
    /// The audit verdict a run produced (the audit receipt).
    Verdict(AuditVerdict),
    /// A folded journal prefix (see [`compact`]).
    Checkpoint(Box<Checkpoint>),
}

impl JournalEntry {
    /// Wraps a completed run.
    pub fn run(record: RunRecord) -> JournalEntry {
        JournalEntry::Run(Box::new(record))
    }

    /// Wraps a checkpoint.
    pub fn checkpoint(checkpoint: Checkpoint) -> JournalEntry {
        JournalEntry::Checkpoint(Box::new(checkpoint))
    }
}

impl JournalEntry {
    /// The job this entry belongs to (`None` for checkpoints).
    pub fn job(&self) -> Option<JobId> {
        match self {
            JournalEntry::Run(record) => Some(record.job.id),
            JournalEntry::Invoice(posting) => Some(posting.job),
            JournalEntry::Verdict(verdict) => Some(verdict.job),
            JournalEntry::Checkpoint(_) => None,
        }
    }

    /// Short stable label for display and diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            JournalEntry::Run(_) => "run",
            JournalEntry::Invoice(_) => "invoice",
            JournalEntry::Verdict(_) => "verdict",
            JournalEntry::Checkpoint(_) => "checkpoint",
        }
    }
}

/// The billing receipt for one posted run: exactly the invoices the ledger
/// accumulated, so recovery can cross-check its re-derived posting against
/// the journaled one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvoicePosting {
    /// Who was billed.
    pub tenant: TenantId,
    /// Which run.
    pub job: JobId,
    /// The invoice over the provider-billed usage.
    pub billed: Invoice,
    /// The invoice over the TSC ground-truth usage.
    pub truth: Invoice,
}

/// A folded journal prefix: the complete accounting state after replaying
/// some number of runs. Recovery seeds from the latest checkpoint instead
/// of replaying from genesis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Runs folded into this checkpoint.
    pub runs: u64,
    /// The ledger after those runs.
    pub ledger: Ledger,
    /// The auditor's summaries and cost counters after those runs.
    pub audit: AuditorState,
    /// The full metrics registry after those runs (the exposition is part
    /// of the recovery contract).
    pub metrics: MetricsRegistry,
}

/// Why a journal operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The underlying sink failed (I/O).
    Io(String),
    /// An entry before the tail failed to parse — an append-only journal
    /// can only be damaged at its end, so this is corruption, not a crash
    /// artifact. `line` is 1-based.
    Corrupt {
        /// 1-based line number of the unparseable entry.
        line: usize,
        /// The parser's message.
        message: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(message) => write!(f, "journal i/o error: {message}"),
            JournalError::Corrupt { line, message } => {
                write!(f, "journal corrupt at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e.to_string())
    }
}

/// What the parser found at the end of the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailStatus {
    /// Every line parsed.
    Clean,
    /// The final line had no terminating newline — the signature of a
    /// crash mid-append — and was dropped.
    Truncated {
        /// Bytes of tail that were discarded.
        dropped_bytes: usize,
    },
}

impl TailStatus {
    /// Whether the tail was dropped.
    pub fn is_truncated(&self) -> bool {
        matches!(self, TailStatus::Truncated { .. })
    }
}

/// Append/byte counters for one [`Journal`] handle (monotonic; counts
/// appends through this handle since it was opened, not entries already in
/// a reopened file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct JournalStats {
    /// Entries appended.
    pub appends: u64,
    /// Bytes appended (serialized lines including the newline).
    pub bytes: u64,
}

/// Where journal lines go. Implementations must make an appended line
/// durable before returning: the pipeline releases a record to consumers
/// only after its `Run` entry has been accepted.
pub trait JournalSink: Send {
    /// Appends one serialized entry (`line` has no trailing newline; the
    /// sink must write it as its own line).
    fn append_line(&mut self, line: &str) -> Result<(), JournalError>;

    /// The full journal text, including entries written before this sink
    /// was opened (file sinks re-read the file).
    fn contents(&self) -> Result<String, JournalError>;
}

/// An in-memory sink: the journal of record for tests and for services
/// that only need replayability within one process.
#[derive(Debug, Default)]
pub struct MemorySink {
    buffer: String,
}

impl MemorySink {
    /// An empty in-memory journal.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }
}

impl JournalSink for MemorySink {
    fn append_line(&mut self, line: &str) -> Result<(), JournalError> {
        self.buffer.push_str(line);
        self.buffer.push('\n');
        Ok(())
    }

    fn contents(&self) -> Result<String, JournalError> {
        Ok(self.buffer.clone())
    }
}

/// A file-backed sink: one JSON line per entry, flushed per append so the
/// write-ahead guarantee holds across a process kill. (Flush pushes the
/// line to the OS; an `fsync` per append — surviving power loss, not just
/// process death — is a deliberate non-goal of the simulation-scale
/// journal and is noted in `docs/ARCHITECTURE.md`.)
#[derive(Debug)]
pub struct FileSink {
    path: PathBuf,
    file: File,
}

impl FileSink {
    /// Opens (creating if absent) the journal file at `path` in append
    /// mode, so reopening after a crash continues the same journal.
    ///
    /// A crash mid-append leaves a partial final line with no newline;
    /// appending after it would merge the next entry into the torn
    /// fragment and corrupt the journal mid-file. Opening therefore
    /// *repairs* the file first: a non-newline-terminated tail is
    /// truncated away (the same tail [`parse_journal`] would drop).
    pub fn open(path: impl AsRef<Path>) -> Result<FileSink, JournalError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        FileSink::repair_torn_tail(&file)?;
        Ok(FileSink { path, file })
    }

    /// Truncates a non-newline-terminated tail (O_APPEND writes then land
    /// at the new end of file). Scans backwards in bounded chunks, so
    /// reopening a large journal costs only the torn-tail length, not the
    /// file size.
    fn repair_torn_tail(file: &File) -> Result<(), JournalError> {
        use std::io::{Seek as _, SeekFrom};
        const CHUNK: u64 = 64 * 1024;
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(());
        }
        let mut reader = file;
        let mut last = [0u8; 1];
        reader.seek(SeekFrom::Start(len - 1))?;
        reader.read_exact(&mut last)?;
        if last[0] == b'\n' {
            return Ok(());
        }
        let mut end = len;
        let keep = loop {
            if end == 0 {
                break 0; // no newline at all: the whole file is one torn line
            }
            let start = end.saturating_sub(CHUNK);
            let mut buf = vec![0u8; (end - start) as usize];
            reader.seek(SeekFrom::Start(start))?;
            reader.read_exact(&mut buf)?;
            if let Some(at) = buf.iter().rposition(|b| *b == b'\n') {
                break start + at as u64 + 1;
            }
            end = start;
        };
        file.set_len(keep)?;
        Ok(())
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl JournalSink for FileSink {
    fn append_line(&mut self, line: &str) -> Result<(), JournalError> {
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        self.file.write_all(buf.as_bytes())?;
        self.file.flush()?;
        Ok(())
    }

    fn contents(&self) -> Result<String, JournalError> {
        let mut text = String::new();
        File::open(&self.path)?.read_to_string(&mut text)?;
        Ok(text)
    }
}

struct JournalInner {
    sink: Box<dyn JournalSink>,
    stats: JournalStats,
}

/// A cloneable handle to one append-only journal. The ingest pipeline and
/// the service share a handle, so the append/byte counters cover the whole
/// write-ahead stream; appends are serialized through an internal lock.
///
/// See the [module docs](self) for the entry types and the recovery
/// contract.
#[derive(Clone)]
pub struct Journal {
    inner: Arc<Mutex<JournalInner>>,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("Journal")
            .field("appends", &stats.appends)
            .field("bytes", &stats.bytes)
            .finish()
    }
}

impl Journal {
    /// A journal over a custom sink.
    pub fn with_sink(sink: Box<dyn JournalSink>) -> Journal {
        Journal {
            inner: Arc::new(Mutex::new(JournalInner {
                sink,
                stats: JournalStats::default(),
            })),
        }
    }

    /// An in-memory journal.
    pub fn in_memory() -> Journal {
        Journal::with_sink(Box::new(MemorySink::new()))
    }

    /// A file-backed journal at `path` (created if absent, appended to if
    /// present — reopening after a crash continues the same journal).
    ///
    /// # Errors
    /// [`JournalError::Io`] if the file cannot be opened.
    pub fn file(path: impl AsRef<Path>) -> Result<Journal, JournalError> {
        Ok(Journal::with_sink(Box::new(FileSink::open(path)?)))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JournalInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn append_raw(&self, line: &str) -> Result<(), JournalError> {
        let mut inner = self.lock();
        inner.sink.append_line(line)?;
        inner.stats.appends += 1;
        inner.stats.bytes += line.len() as u64 + 1;
        Ok(())
    }

    /// Serializes and appends one entry as a JSON line, durable before
    /// return.
    ///
    /// # Errors
    /// [`JournalError::Io`] if the sink rejects the line.
    pub fn append(&self, entry: &JournalEntry) -> Result<(), JournalError> {
        let line = serde_json::to_string(entry)
            .map_err(|e| JournalError::Io(format!("serialize journal entry: {e}")))?;
        self.append_raw(&line)
    }

    /// Appends a [`JournalEntry::Run`] serialized straight from a borrowed
    /// record — byte-identical to `append(&JournalEntry::run(...))`
    /// without cloning the (large) record into the entry first.
    ///
    /// # Errors
    /// [`JournalError::Io`] if the sink rejects the line.
    pub fn append_run(&self, record: &RunRecord) -> Result<(), JournalError> {
        let json = serde_json::to_string(record)
            .map_err(|e| JournalError::Io(format!("serialize run record: {e}")))?;
        self.append_raw(&format!("{{\"Run\":{json}}}"))
    }

    /// Appends, treating failure as fatal: a metering service that cannot
    /// persist its write-ahead log must not keep billing.
    ///
    /// # Panics
    /// Panics if the sink rejects the line.
    pub fn append_or_die(&self, entry: &JournalEntry) {
        if let Err(e) = self.append(entry) {
            panic!("journal append failed ({} entry): {e}", entry.label());
        }
    }

    /// [`Journal::append_run`] with failure fatal, like
    /// [`Journal::append_or_die`].
    ///
    /// # Panics
    /// Panics if the sink rejects the line.
    pub fn append_run_or_die(&self, record: &RunRecord) {
        if let Err(e) = self.append_run(record) {
            panic!("journal append failed (run entry): {e}");
        }
    }

    /// Append/byte counters for this handle.
    pub fn stats(&self) -> JournalStats {
        self.lock().stats
    }

    /// Reads the journal back and parses it, dropping a truncated tail.
    ///
    /// # Errors
    /// [`JournalError::Io`] if the sink cannot be read;
    /// [`JournalError::Corrupt`] if an entry *before* the tail fails to
    /// parse.
    pub fn entries(&self) -> Result<(Vec<JournalEntry>, TailStatus), JournalError> {
        let text = self.lock().sink.contents()?;
        parse_journal(&text)
    }
}

/// The journal layer's self-accounting metric families: they describe
/// this *process* (its own appends and recoveries), not the metered
/// workload, so a recovered service legitimately reads
/// `fleet_recoveries_total 1` where the uninterrupted original reads 0.
pub const SELF_ACCOUNTING_FAMILIES: [&str; 3] = [
    "fleet_journal_appends_total",
    "fleet_journal_bytes_total",
    "fleet_recoveries_total",
];

/// Strips the [`SELF_ACCOUNTING_FAMILIES`] series (and their `HELP`/`TYPE`
/// headers) from a metrics exposition, leaving the metering series — the
/// part of the exposition the recovery contract guarantees byte-identical.
pub fn strip_self_accounting(exposition: &str) -> String {
    exposition
        .lines()
        .filter(|line| {
            !SELF_ACCOUNTING_FAMILIES.iter().any(|family| {
                line.starts_with(&format!("{family} "))
                    || line.starts_with(&format!("# HELP {family} "))
                    || line.starts_with(&format!("# TYPE {family} "))
            })
        })
        .map(|line| format!("{line}\n"))
        .collect()
}

/// Parses JSON-lines journal text. A final line missing its newline — the
/// exact artifact a crash mid-append leaves, since each entry and its
/// newline are written in one call — is dropped with
/// [`TailStatus::Truncated`]; an unparseable *terminated* line anywhere
/// (tail included) was fully written and later damaged, so it is
/// [`JournalError::Corrupt`].
pub fn parse_journal(text: &str) -> Result<(Vec<JournalEntry>, TailStatus), JournalError> {
    let mut entries = Vec::new();
    let mut offset = 0usize;
    let mut line_no = 0usize;
    let mut tail = TailStatus::Clean;
    while offset < text.len() {
        let rest = &text[offset..];
        let (line, consumed, terminated) = match rest.find('\n') {
            Some(at) => (&rest[..at], at + 1, true),
            None => (rest, rest.len(), false),
        };
        line_no += 1;
        let is_last = offset + consumed >= text.len();
        if line.trim().is_empty() {
            offset += consumed;
            continue;
        }
        match serde_json::from_str::<JournalEntry>(line) {
            Ok(entry) => {
                if !terminated {
                    // A complete-looking parse without a newline is still a
                    // torn append: the writer appends line + newline in one
                    // write, so the newline's absence means the line may be
                    // a prefix of a longer record. Drop it.
                    tail = TailStatus::Truncated {
                        dropped_bytes: line.len(),
                    };
                } else {
                    entries.push(entry);
                }
            }
            // Only an *unterminated* final line is a crash artifact: the
            // writer appends line + newline in one write, so a torn write
            // can never include the newline. A newline-terminated line
            // that fails to parse was fully written and later damaged —
            // corruption, wherever it sits.
            Err(e) if is_last && !terminated => {
                tail = TailStatus::Truncated {
                    dropped_bytes: line.len(),
                };
                let _ = e;
            }
            Err(e) => {
                return Err(JournalError::Corrupt {
                    line: line_no,
                    message: e.to_string(),
                });
            }
        }
        offset += consumed;
    }
    Ok((entries, tail))
}

/// How a journal replay went (see [`crate::FleetService::recover`]).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// `Run` entries re-posted through the service.
    pub runs_replayed: u64,
    /// Runs folded into checkpoints that were applied instead of replayed.
    pub checkpoint_runs: u64,
    /// Journaled `Invoice`/`Verdict` receipts that matched the re-derived
    /// posting bit for bit.
    pub postings_confirmed: u64,
    /// Jobs whose journaled receipt disagreed with the replay — evidence
    /// the journal was modified after the fact (each receipt entry that
    /// disagrees contributes one element, so a job can appear twice).
    pub mismatches: Vec<JobId>,
    /// Runs whose receipts never made it to the journal (the crash tail);
    /// their effects were re-derived and posted during recovery.
    pub unconfirmed: u64,
    /// Jobs whose id appeared in more than one replayed `Run` entry (or
    /// in a replayed entry *and* the applied checkpoint). Job-id reuse
    /// across batches is legal at runtime — the ledger simply posts again,
    /// and recovery faithfully replays it — but the journal cannot
    /// distinguish a legitimate resubmission from a copy-pasted entry
    /// (both carry matching receipts), so every duplicate is surfaced here
    /// for the operator to vet. Hash-chaining entries to make duplication
    /// cryptographically evident is a ROADMAP follow-up.
    pub duplicate_runs: Vec<JobId>,
}

impl RecoveryReport {
    /// Whether every journaled receipt matched its re-derived posting.
    pub fn is_consistent(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Why a journal replay was rejected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryError {
    /// An `Invoice`/`Verdict` entry named a job with no preceding `Run`
    /// entry — the journal is not a valid write-ahead sequence.
    OrphanPosting(JobId),
    /// A `Checkpoint` entry appeared after runs had already been replayed;
    /// checkpoints are only valid as a journal's (possibly repeated)
    /// leading entries.
    MisplacedCheckpoint,
    /// [`compact`] refused to fold a prefix whose receipts disagree with
    /// the replay: folding would erase the tamper evidence into a
    /// clean-looking checkpoint. Investigate (recover the original and
    /// inspect [`RecoveryReport::mismatches`]) before compacting.
    InconsistentPrefix {
        /// The jobs whose receipts disagreed.
        mismatches: Vec<JobId>,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::OrphanPosting(job) => {
                write!(f, "journal posting for {job} has no preceding run entry")
            }
            RecoveryError::MisplacedCheckpoint => {
                f.write_str("checkpoint entry after replayed runs")
            }
            RecoveryError::InconsistentPrefix { mismatches } => {
                write!(
                    f,
                    "refusing to compact: {} receipt(s) disagree with the replay",
                    mismatches.len()
                )
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Folds the oldest `fold_runs` records of `entries` — their `Run`,
/// `Invoice` and `Verdict` entries, plus any leading `Checkpoint` — into a
/// single [`Checkpoint`] entry, returning the compacted sequence
/// `[Checkpoint, …kept entries…]`.
///
/// `scratch` must be a *fresh* service configured identically to the
/// journal's origin (same [`crate::FleetConfig`], same tenant
/// registrations): the fold is computed by replaying the prefix through
/// it, exactly as recovery would. Entries are partitioned by job id, so a
/// receipt is never separated from its run, whatever their interleaving.
///
/// Recovering from the compacted sequence yields bit-identical state to
/// recovering from the original (`tests/fleet.rs` enforces this).
///
/// # Errors
/// Propagates [`RecoveryError`] from replaying the folded prefix, and
/// refuses with [`RecoveryError::InconsistentPrefix`] if any folded
/// receipt disagrees with the replay — folding would erase the tamper
/// evidence into a clean-looking checkpoint.
pub fn compact(
    entries: &[JournalEntry],
    fold_runs: usize,
    scratch: &mut FleetService,
) -> Result<Vec<JournalEntry>, RecoveryError> {
    let fold_ids: std::collections::BTreeSet<JobId> = entries
        .iter()
        .filter_map(|entry| match entry {
            JournalEntry::Run(record) => Some(record.job.id),
            _ => None,
        })
        .take(fold_runs)
        .collect();
    let mut folded = Vec::new();
    let mut kept = Vec::new();
    for entry in entries {
        match entry.job() {
            None => {
                if !kept.is_empty() {
                    return Err(RecoveryError::MisplacedCheckpoint);
                }
                folded.push(entry.clone());
            }
            Some(job) if fold_ids.contains(&job) => folded.push(entry.clone()),
            Some(_) => kept.push(entry.clone()),
        }
    }
    let report = scratch.replay(&folded)?;
    if !report.is_consistent() {
        // Folding a tampered prefix would erase the evidence into a
        // clean-looking checkpoint.
        return Err(RecoveryError::InconsistentPrefix {
            mismatches: report.mismatches,
        });
    }
    let mut compacted = Vec::with_capacity(kept.len() + 1);
    compacted.push(JournalEntry::checkpoint(scratch.checkpoint()));
    compacted.append(&mut kept);
    Ok(compacted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{Fleet, FleetConfig, JobSpec};
    use trustmeter_workloads::Workload;

    fn record() -> RunRecord {
        Fleet::new(FleetConfig::new(1, 7)).run_one(&JobSpec::clean(
            0,
            TenantId(1),
            Workload::LoopO,
            0.001,
        ))
    }

    #[test]
    fn entries_round_trip_through_json_lines() {
        let journal = Journal::in_memory();
        let run = JournalEntry::run(record());
        journal.append(&run).unwrap();
        let (entries, tail) = journal.entries().unwrap();
        assert_eq!(tail, TailStatus::Clean);
        assert_eq!(entries, vec![run]);
        let stats = journal.stats();
        assert_eq!(stats.appends, 1);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn truncated_tail_is_dropped() {
        let journal = Journal::in_memory();
        journal.append(&JournalEntry::run(record())).unwrap();
        let text = journal.lock().sink.contents().unwrap();
        // A crash mid-append leaves a partial final line.
        let torn = format!("{text}{}", &text[..text.len() / 2]);
        let (entries, tail) = parse_journal(&torn).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(tail.is_truncated());
    }

    #[test]
    fn unterminated_final_line_is_dropped_even_if_parseable() {
        let journal = Journal::in_memory();
        journal.append(&JournalEntry::run(record())).unwrap();
        journal.append(&JournalEntry::run(record())).unwrap();
        let text = journal.lock().sink.contents().unwrap();
        // Strip the final newline: the last line parses but is torn.
        let torn = &text[..text.len() - 1];
        let (entries, tail) = parse_journal(torn).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(tail.is_truncated());
    }

    #[test]
    fn terminated_corrupt_final_line_is_an_error() {
        // Appends write the line and its newline in one call, so a torn
        // write can never be newline-terminated: a terminated line that
        // fails to parse was damaged after the fact.
        let journal = Journal::in_memory();
        journal.append(&JournalEntry::run(record())).unwrap();
        let text = journal.lock().sink.contents().unwrap();
        let damaged = format!("{text}{{\"Run\":garbage}}\n");
        match parse_journal(&damaged) {
            Err(JournalError::Corrupt { line: 2, .. }) => {}
            other => panic!("expected corruption at line 2, got {other:?}"),
        }
    }

    #[test]
    fn append_run_is_byte_identical_to_the_enum_path() {
        let record = record();
        let via_borrow = Journal::in_memory();
        via_borrow.append_run(&record).unwrap();
        let via_enum = Journal::in_memory();
        via_enum.append(&JournalEntry::run(record.clone())).unwrap();
        assert_eq!(
            via_borrow.lock().sink.contents().unwrap(),
            via_enum.lock().sink.contents().unwrap()
        );
        assert_eq!(via_borrow.stats(), via_enum.stats());
        let (entries, _) = via_borrow.entries().unwrap();
        assert_eq!(entries, vec![JournalEntry::run(record)]);
    }

    #[test]
    fn reopening_a_torn_file_repairs_the_tail_before_appending() {
        let path = std::env::temp_dir().join(format!(
            "trustmeter-journal-torn-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let journal = Journal::file(&path).unwrap();
            journal.append(&JournalEntry::run(record())).unwrap();
        }
        // A crash mid-append leaves an unterminated fragment.
        {
            use std::io::Write as _;
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(br#"{"Run":{"job":{"id":7"#).unwrap();
        }
        // Reopening truncates the fragment, so the next append starts a
        // fresh line instead of merging into the torn one.
        let reopened = Journal::file(&path).unwrap();
        reopened.append(&JournalEntry::run(record())).unwrap();
        let (entries, tail) = reopened.entries().unwrap();
        assert_eq!(tail, TailStatus::Clean, "repair removed the torn tail");
        assert_eq!(entries.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_before_the_tail_is_an_error() {
        let journal = Journal::in_memory();
        journal.append(&JournalEntry::run(record())).unwrap();
        let text = journal.lock().sink.contents().unwrap();
        let corrupted = format!("not json\n{text}");
        match parse_journal(&corrupted) {
            Err(JournalError::Corrupt { line: 1, .. }) => {}
            other => panic!("expected corruption at line 1, got {other:?}"),
        }
    }

    #[test]
    fn blank_lines_are_skipped() {
        let journal = Journal::in_memory();
        journal.append(&JournalEntry::run(record())).unwrap();
        let text = journal.lock().sink.contents().unwrap();
        let padded = format!("\n{text}\n\n");
        let (entries, tail) = parse_journal(&padded).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(tail, TailStatus::Clean);
    }

    #[test]
    fn file_sink_persists_across_reopen() {
        let path = std::env::temp_dir().join(format!(
            "trustmeter-journal-test-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let journal = Journal::file(&path).unwrap();
            journal.append(&JournalEntry::run(record())).unwrap();
        }
        // A fresh handle (a restarted process) reads the same entries and
        // appends after them.
        let reopened = Journal::file(&path).unwrap();
        assert_eq!(reopened.stats().appends, 0, "stats are per handle");
        reopened.append(&JournalEntry::run(record())).unwrap();
        let (entries, tail) = reopened.entries().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(tail, TailStatus::Clean);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn entry_labels_and_jobs() {
        let run = JournalEntry::run(record());
        assert_eq!(run.label(), "run");
        assert_eq!(run.job(), Some(JobId(0)));
    }
}
