//! Integration tests for the `trustmeter-fleet` metering service: a
//! 100+-job multi-tenant batch across ≥4 shards, ledger arithmetic,
//! shard-count determinism, the metrics exposition, the streaming
//! ingestion pipeline (backpressure, per-tenant fairness, streamed-vs-batch
//! bit-identical results), and the durability journal (write-ahead
//! persistence, crash recovery, compaction).

use proptest::prelude::*;
use trustmeter::prelude::*;

const SCALE: f64 = 0.001;

/// A mixed batch: four tenants, all four workloads, clean runs and a mix
/// of launch-time and runtime attacks.
fn batch(n: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let tenant = TenantId((i % 4) as u32 + 1);
            let workload = Workload::ALL[(i % 4) as usize];
            match i % 5 {
                0 => JobSpec::attacked(i, tenant, workload, SCALE, AttackSpec::Shell),
                1 => JobSpec::attacked(
                    i,
                    tenant,
                    workload,
                    SCALE,
                    AttackSpec::Scheduling { nice: -10 },
                ),
                _ => JobSpec::clean(i, tenant, workload, SCALE),
            }
        })
        .collect()
}

#[test]
fn hundred_jobs_across_four_shards_bill_and_audit() {
    let jobs = batch(100);
    let mut service = FleetService::new(FleetConfig::new(4, 77));
    for id in 1..=4u32 {
        service.register(Tenant::new(
            TenantId(id),
            format!("tenant-{id}"),
            RateCard::per_cpu_second(0.01),
        ));
    }
    let report = service.process(&jobs);
    assert_eq!(report.records.len(), 100);
    assert_eq!(report.verdicts.len(), 100);

    // Every tenant has an account; per-tenant totals equal the sum of the
    // per-run invoices, and the posted run count matches the submissions.
    let mut posted = 0;
    for account in report.ledger.iter() {
        posted += account.runs;
        assert!((account.billed_charge - account.invoice_sum()).abs() < 1e-9);
        assert_eq!(account.invoices.len() as u64, account.runs);
        assert!(account.billed_charge > 0.0);
    }
    assert_eq!(posted, 100);

    // Attacked runs are flagged, clean runs are not (ids 0,1 mod 5 attack).
    for (record, verdict) in report.records.iter().zip(&report.verdicts) {
        assert_eq!(
            record.job.attack.is_some(),
            !verdict.is_clean(),
            "job {}",
            record.job.id
        );
    }

    // The attacks inflate the fleet-wide bill above ground truth.
    assert!(report.ledger.total_billed_charge() > report.ledger.total_truth_charge());
}

#[test]
fn shard_count_does_not_change_results() {
    let jobs = batch(24);
    let run = |shards: usize| Fleet::new(FleetConfig::new(shards, 123)).run(&jobs);
    let one = run(1);
    let two = run(2);
    let eight = run(8);
    assert_eq!(
        one, two,
        "1-shard and 2-shard results must be bit-identical"
    );
    assert_eq!(
        one, eight,
        "1-shard and 8-shard results must be bit-identical"
    );
}

#[test]
fn full_service_is_deterministic_across_shard_counts() {
    let jobs = batch(30);
    let run = |shards: usize| {
        let mut service = FleetService::new(FleetConfig::new(shards, 7));
        service.register(Tenant::new(TenantId(1), "a", RateCard::per_cpu_hour(0.10)));
        let report = service.process(&jobs);
        (report, service.metrics_text())
    };
    let (report_a, metrics_a) = run(1);
    let (report_b, metrics_b) = run(4);
    assert_eq!(report_a, report_b);
    assert_eq!(
        metrics_a, metrics_b,
        "metrics exposition must be byte-identical"
    );
}

#[test]
fn metrics_exposition_contains_usage_and_anomaly_counters() {
    let jobs = batch(20);
    let mut service = FleetService::new(FleetConfig::new(4, 3));
    let _ = service.process(&jobs);
    let text = service.metrics_text();
    assert!(text.contains("# TYPE cpu_usage counter"), "dump:\n{text}");
    assert!(text.contains("cpu_usage{"), "dump:\n{text}");
    assert!(text.contains("state=\"user\""), "dump:\n{text}");
    assert!(text.contains("state=\"system\""), "dump:\n{text}");
    assert!(
        text.contains("# TYPE fleet_anomalies counter"),
        "dump:\n{text}"
    );
    assert!(text.contains("kind=\"overbilled\""), "dump:\n{text}");
    assert!(text.contains("# TYPE fleet_jobs counter"), "dump:\n{text}");
}

#[test]
fn ledger_survives_multiple_batches() {
    let mut service = FleetService::new(FleetConfig::new(2, 11));
    let first = batch(10);
    let second: Vec<JobSpec> = batch(10)
        .into_iter()
        .map(|mut job| {
            job.id = JobId(job.id.0 + 10);
            job
        })
        .collect();
    service.process(&first);
    let report = service.process(&second);
    let posted: u64 = report.ledger.iter().map(|a| a.runs).sum();
    assert_eq!(posted, 20, "ledger must accumulate across batches");
}

/// Streams `jobs` through a fresh service with `workers` workers
/// (single-threaded submission, so submission order equals batch order)
/// and returns the report plus the metrics text.
fn stream_jobs(jobs: &[JobSpec], workers: usize) -> (FleetReport, String) {
    let mut service = FleetService::new(FleetConfig::new(workers, 77));
    for id in 1..=4u32 {
        service.register(Tenant::new(
            TenantId(id),
            format!("tenant-{id}"),
            RateCard::per_cpu_second(0.01),
        ));
    }
    let mut stream = service.stream(IngestConfig::new(workers));
    for job in jobs {
        stream.submit(job.clone()).expect("queue sized for batch");
        // Interleave pumping with submission, as a live service would.
        stream.pump();
    }
    let report = stream.finish();
    (report, service.metrics_text())
}

#[test]
fn streamed_run_is_bit_identical_to_batch_for_1_2_8_workers() {
    let jobs = batch(24);
    let mut batch_service = FleetService::new(FleetConfig::new(4, 77));
    for id in 1..=4u32 {
        batch_service.register(Tenant::new(
            TenantId(id),
            format!("tenant-{id}"),
            RateCard::per_cpu_second(0.01),
        ));
    }
    let batch_report = batch_service.process(&jobs);

    let mut streamed_metrics = Vec::new();
    for workers in [1usize, 2, 8] {
        let (report, metrics) = stream_jobs(&jobs, workers);
        // Ledgers, audit verdicts and invoice totals match the batch path
        // bit for bit, whatever the worker count.
        assert_eq!(
            report, batch_report,
            "streamed report must equal batch report at {workers} workers"
        );
        assert_eq!(
            report.ledger.total_billed_charge(),
            batch_report.ledger.total_billed_charge()
        );
        streamed_metrics.push(metrics);
    }
    // The streamed metrics exposition is itself deterministic across worker
    // counts: final queue depth and inflight gauges are structurally zero.
    // Only the release-buffer pool counters are timing-dependent (how many
    // pumps found records ready varies with scheduling), so strip that one
    // live-pipeline family before comparing.
    let stripped: Vec<String> = streamed_metrics
        .iter()
        .map(|metrics| strip_families(metrics, &["fleet_pool_buffers"]))
        .collect();
    assert_eq!(stripped[0], stripped[1]);
    assert_eq!(stripped[0], stripped[2]);
}

#[test]
fn full_queue_rejects_submissions_under_reject_policy() {
    let mut service = FleetService::new(FleetConfig::new(1, 5));
    let config = IngestConfig::new(1)
        .with_capacity(3)
        .with_backpressure(BackpressurePolicy::Reject)
        .paused();
    let stream = service.stream(config);
    for id in 0..3 {
        stream
            .submit(JobSpec::clean(id, TenantId(1), Workload::LoopO, SCALE))
            .expect("queue has room");
    }
    // Queue full, dispatch paused: the fourth submission is shed.
    let overflow = stream.submit(JobSpec::clean(3, TenantId(1), Workload::LoopO, SCALE));
    assert_eq!(overflow, Err(SubmitError::QueueFull));
    assert_eq!(stream.stats().rejected, 1);
    stream.resume();
    let report = stream.finish();
    assert_eq!(report.records.len(), 3, "accepted jobs all ran");
    let metrics = service.metrics_text();
    assert!(
        metrics.contains("fleet_submissions_rejected 1"),
        "dump:\n{metrics}"
    );
}

#[test]
fn greedy_tenant_cannot_starve_others() {
    // Stage a backlog while paused: tenant 1 floods 12 jobs before tenants
    // 2 and 3 submit one each. A FIFO queue would run both stragglers last;
    // the fair queue round-robins tenant lanes.
    let mut service = FleetService::new(FleetConfig::new(1, 9));
    let stream = service.stream(IngestConfig::new(1).paused());
    for id in 0..12 {
        stream
            .submit(JobSpec::clean(id, TenantId(1), Workload::LoopO, SCALE))
            .unwrap();
    }
    stream
        .submit(JobSpec::clean(12, TenantId(2), Workload::LoopO, SCALE))
        .unwrap();
    stream
        .submit(JobSpec::clean(13, TenantId(3), Workload::LoopO, SCALE))
        .unwrap();
    stream.resume();
    // Wait for the backlog to drain so the dispatch log is complete.
    while stream.stats().completed < 14 {
        std::thread::yield_now();
    }

    // With one worker the dispatch order is exact: round-robin serves the
    // two modest tenants in positions 1 and 2, not after the flood.
    let dispatched: Vec<u32> = stream.dispatch_log().iter().map(|(_, t)| t.0).collect();
    assert_eq!(
        &dispatched[..3],
        &[1, 2, 3],
        "full dispatch order: {dispatched:?}"
    );
    // Per-tenant completion counts within the first round are bounded:
    // every tenant completed one job before the greedy tenant's second.
    for tenant in [1u32, 2, 3] {
        let served = dispatched[..3].iter().filter(|t| **t == tenant).count();
        assert_eq!(served, 1, "tenant {tenant} in first round: {dispatched:?}");
    }

    // The merged report is still in submission order (ids 0..13), so
    // fairness never costs determinism.
    let report = stream.finish();
    assert_eq!(report.records.len(), 14);
    let ids: Vec<u64> = report.records.iter().map(|r| r.job.id.0).collect();
    assert_eq!(ids, (0..14).collect::<Vec<_>>());
    let summaries: Vec<(u32, u64)> = service
        .auditor()
        .summaries()
        .map(|s| (s.tenant.0, s.runs))
        .collect();
    assert_eq!(summaries, vec![(1, 12), (2, 1), (3, 1)]);
}

/// Audits `records` with a fresh inline-replay-only auditor (references
/// stripped) and returns the verdicts.
fn inline_verdicts(records: &[RunRecord], machine: KernelConfig) -> (Vec<AuditVerdict>, u64) {
    let mut auditor = Auditor::new(machine);
    let verdicts = records
        .iter()
        .map(|record| {
            let mut stripped = record.clone();
            stripped.reference = None;
            auditor.observe(&stripped)
        })
        .collect();
    (verdicts, auditor.replay_count())
}

#[test]
fn precomputed_reference_verdicts_match_inline_replays() {
    let jobs = batch(24);
    let machine = FleetConfig::new(1, 77).machine;

    // The ground truth: every record audited via an inline replay.
    let reference_records = Fleet::new(FleetConfig::new(4, 77)).run(&jobs);
    assert!(
        reference_records.iter().all(|r| r.reference.is_some()),
        "the Always policy precomputes a reference for every job"
    );
    let (inline, inline_replays) = inline_verdicts(&reference_records, machine.clone());
    assert!(inline_replays > 0, "stripped records force inline replays");

    // Batch path: verdicts come from precomputed references, bit-identical
    // to the inline replays.
    let mut batch_service = FleetService::new(FleetConfig::new(4, 77));
    for id in 1..=4u32 {
        batch_service.register(Tenant::new(
            TenantId(id),
            format!("tenant-{id}"),
            RateCard::per_cpu_second(0.01),
        ));
    }
    let batch_report = batch_service.process(&jobs);
    assert_eq!(batch_report.verdicts, inline);
    assert_eq!(batch_service.auditor().replay_count(), 0);
    assert_eq!(
        batch_service.auditor().reference_hit_count(),
        jobs.len() as u64
    );

    // Streamed path at 1, 2 and 8 workers: same verdicts again.
    for workers in [1usize, 2, 8] {
        let (report, _) = stream_jobs(&jobs, workers);
        assert_eq!(
            report.verdicts, inline,
            "streamed verdicts at {workers} workers must equal inline-replay verdicts"
        );
    }
}

#[test]
fn sampling_policy_skips_are_deterministic_for_a_fixed_fleet_seed() {
    let jobs = batch(30);
    let run = |shards: usize, workers: Option<usize>| {
        let config = FleetConfig::new(shards, 2026).with_sampling(SamplingPolicy::Probability(0.5));
        let mut service = FleetService::new(config);
        let report = match workers {
            None => service.process(&jobs),
            Some(workers) => {
                let mut stream = service.stream(IngestConfig::new(workers));
                for job in &jobs {
                    stream.submit(job.clone()).expect("queue fits batch");
                    stream.pump();
                }
                stream.finish()
            }
        };
        (report, service.metrics_text())
    };

    let (batch_report, _) = run(4, None);
    let audited: Vec<bool> = batch_report.verdicts.iter().map(|v| v.audited).collect();
    assert!(
        audited.iter().any(|a| *a) && audited.iter().any(|a| !*a),
        "p=0.5 over 30 jobs should audit some and skip some: {audited:?}"
    );
    // Skipped attacked runs are not flagged; audited attacked runs are.
    for (record, verdict) in batch_report.records.iter().zip(&batch_report.verdicts) {
        assert_eq!(record.reference.is_some(), verdict.audited);
        if verdict.audited {
            assert_eq!(record.job.attack.is_some(), !verdict.is_clean());
        } else {
            assert!(verdict.is_clean(), "skipped runs assert nothing");
        }
    }

    // The same fleet seed produces the same skip set whatever the shard or
    // worker count, streamed or batch. (Streamed expositions additionally
    // carry the ingest gauges, so they are compared among themselves; the
    // buffer-pool counters depend on how many pumps found records, so that
    // family is stripped first.)
    let mut streamed_metrics = Vec::new();
    for workers in [1usize, 2, 8] {
        let (report, metrics) = run(8, Some(workers));
        assert_eq!(report, batch_report);
        streamed_metrics.push(strip_families(&metrics, &["fleet_pool_buffers"]));
    }
    assert_eq!(streamed_metrics[0], streamed_metrics[1]);
    assert_eq!(streamed_metrics[0], streamed_metrics[2]);

    // A different fleet seed draws a different skip set (the decision is
    // seeded, not positional). Note the seed also reshuffles kernel seeds,
    // so only the audited flags are compared.
    let other_jobs = batch(30);
    let config = FleetConfig::new(4, 9999).with_sampling(SamplingPolicy::Probability(0.5));
    let mut other_service = FleetService::new(config);
    let other_report = other_service.process(&other_jobs);
    let other_audited: Vec<bool> = other_report.verdicts.iter().map(|v| v.audited).collect();
    assert_ne!(audited, other_audited, "seed must steer the skip set");
}

#[test]
fn fallback_replay_still_detects_shell_overbilling() {
    let fleet = Fleet::new(FleetConfig::new(1, 42));
    let job = JobSpec::attacked(0, TenantId(1), Workload::LoopO, SCALE, AttackSpec::Shell);
    let mut record = fleet.run_one(&job);
    // A record that arrives without a precomputed reference (e.g. produced
    // by an executor with a different sampling policy) still gets the full
    // §VI replay audit.
    record.reference = None;
    let mut auditor = Auditor::new(fleet.config().machine.clone());
    let verdict = auditor.observe(&record);
    assert!(verdict.audited);
    let kinds: Vec<&str> = verdict.anomalies.iter().map(Anomaly::kind).collect();
    assert!(kinds.contains(&"overbilled"), "kinds: {kinds:?}");
    assert!(kinds.contains(&"unexpected-images"), "kinds: {kinds:?}");
    assert_eq!(auditor.replay_count(), 1, "exactly one inline replay");
    assert_eq!(auditor.reference_hit_count(), 0);
}

#[test]
fn audit_cost_counters_are_exported() {
    // Pre-registered at zero on a fresh service.
    let fresh = FleetService::new(FleetConfig::new(1, 1));
    let text = fresh.metrics_text();
    assert!(
        text.contains("# TYPE fleet_audit_replays_total counter"),
        "dump:\n{text}"
    );
    assert!(
        text.contains("fleet_audit_replays_total 0"),
        "dump:\n{text}"
    );
    assert!(
        text.contains("fleet_audit_reference_hits_total 0"),
        "dump:\n{text}"
    );

    // After a batch, the reference hits count every audited run and the
    // replay counter stays at zero (workers precomputed everything).
    let jobs = batch(10);
    let mut service = FleetService::new(FleetConfig::new(2, 3));
    let _ = service.process(&jobs);
    let text = service.metrics_text();
    assert!(
        text.contains("fleet_audit_replays_total 0"),
        "dump:\n{text}"
    );
    assert!(
        text.contains("fleet_audit_reference_hits_total 10"),
        "dump:\n{text}"
    );
}

#[test]
fn fleet_report_serializes() {
    let jobs = batch(4);
    let mut service = FleetService::new(FleetConfig::new(2, 19));
    let report = service.process(&jobs);
    let json = serde_json::to_string(&report).expect("serialize report");
    assert!(json.contains("verdicts"));
    assert!(json.contains("billed_charge"));
}

// ---------------------------------------------------------------------------
// Durability: write-ahead journal, crash recovery, compaction
// ---------------------------------------------------------------------------

/// A service on seed 77 with the four test tenants registered, optionally
/// journaled — recovery requires the restarted service to be configured
/// like the original, so every durability test builds services here.
fn service77(workers: usize, journal: Option<Journal>) -> FleetService {
    let mut service = FleetService::new(FleetConfig::new(workers, 77));
    for id in 1..=4u32 {
        service.register(Tenant::new(
            TenantId(id),
            format!("tenant-{id}"),
            RateCard::per_cpu_second(0.01),
        ));
    }
    match journal {
        Some(journal) => service.with_journal(journal),
        None => service,
    }
}

fn audit_summaries(service: &FleetService) -> Vec<TenantAuditSummary> {
    service.auditor().summaries().cloned().collect()
}

fn count_entries(entries: &[JournalEntry], label: &str) -> usize {
    entries.iter().filter(|e| e.label() == label).count()
}

#[test]
fn journal_recovery_is_bit_identical_across_1_2_8_workers() {
    let jobs = batch(24);
    let mut baseline = service77(4, None);
    let baseline_report = baseline.process(&jobs);
    let baseline_metrics = baseline.metrics_text();

    let mut recovered_expositions = Vec::new();
    for workers in [1usize, 2, 8] {
        // Stream the batch through a journaled service.
        let journal = Journal::in_memory();
        let mut service = service77(workers, Some(journal.clone()));
        let mut stream = service.stream(IngestConfig::new(workers));
        for job in &jobs {
            stream.submit(job.clone()).expect("queue sized for batch");
            stream.pump();
        }
        let streamed_report = stream.finish();
        assert_eq!(
            streamed_report, baseline_report,
            "journaling must not perturb results at {workers} workers"
        );
        let text = service.metrics_text();
        assert!(
            text.contains("fleet_journal_appends_total 96"),
            "24 accepted + 24 runs + 24 invoices + 24 verdicts; dump:\n{text}"
        );
        assert!(
            !text.contains("fleet_journal_bytes_total 0\n"),
            "dump:\n{text}"
        );

        // The journal replays into a bit-identical restarted service.
        let (entries, tail) = journal.entries().unwrap();
        assert_eq!(tail, TailStatus::Clean);
        assert_eq!(count_entries(&entries, "accepted"), 24);
        assert_eq!(count_entries(&entries, "run"), 24);
        assert_eq!(count_entries(&entries, "invoice"), 24);
        assert_eq!(count_entries(&entries, "verdict"), 24);

        let mut recovered = service77(workers, None);
        let report = recovered.recover(&entries).unwrap();
        assert_eq!(report.runs_replayed, 24);
        assert_eq!(report.postings_confirmed, 48);
        assert_eq!(report.unconfirmed, 0);
        assert_eq!(report.accepted, 24);
        assert!(report.unreleased.is_empty(), "every accepted job released");
        assert!(
            report.is_consistent(),
            "mismatches: {:?}",
            report.mismatches
        );

        assert_eq!(recovered.ledger(), &baseline_report.ledger);
        assert_eq!(audit_summaries(&recovered), audit_summaries(&baseline));
        let recovered_metrics = recovered.metrics_text();
        assert_eq!(
            strip_self_accounting(&recovered_metrics),
            strip_self_accounting(&baseline_metrics),
            "metering exposition must be byte-identical after recovery"
        );
        assert!(recovered_metrics.contains("fleet_recoveries_total 1"));
        recovered_expositions.push(recovered_metrics);
    }
    // The full recovered exposition — journal series included — is itself
    // byte-identical whatever the worker count that produced the journal.
    assert_eq!(recovered_expositions[0], recovered_expositions[1]);
    assert_eq!(recovered_expositions[0], recovered_expositions[2]);
}

#[test]
fn killed_stream_recovers_the_released_prefix() {
    let path = std::env::temp_dir().join(format!(
        "trustmeter-fleet-test-kill-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let jobs = batch(24);
    {
        let journal = Journal::file(&path).unwrap();
        let mut service = service77(2, Some(journal));
        let mut stream = service.stream(IngestConfig::new(2));
        for job in &jobs {
            stream.submit(job.clone()).expect("queue sized for batch");
        }
        while stream.verdicts().len() < 8 {
            stream.pump();
            std::thread::yield_now();
        }
        // The "kill": drop the stream mid-flight. Unreleased completions
        // and the queued backlog are discarded — never journaled, never
        // billed.
        drop(stream);
    }

    let journal = Journal::file(&path).unwrap();
    let (entries, tail) = journal.entries().unwrap();
    assert_eq!(tail, TailStatus::Clean, "line appends are atomic");
    let released = count_entries(&entries, "run");
    assert!((8..=24).contains(&released), "released: {released}");
    // Released records form a submission-order prefix, so the clean-run
    // baseline is simply the first `released` jobs.
    let mut baseline = service77(4, None);
    let baseline_report = baseline.process(&jobs[..released]);

    let mut recovered = service77(2, None);
    let report = recovered.recover(&entries).unwrap();
    assert_eq!(report.runs_replayed as usize, released);
    assert_eq!(report.unconfirmed, 0, "pump journals receipts in step");
    assert!(report.is_consistent());
    assert_eq!(recovered.ledger(), &baseline_report.ledger);
    assert_eq!(audit_summaries(&recovered), audit_summaries(&baseline));
    assert_eq!(
        strip_self_accounting(&recovered.metrics_text()),
        strip_self_accounting(&baseline.metrics_text())
    );

    // A harsher crash: the last record's receipts never hit the disk (and
    // the final line is torn mid-append). Recovery re-derives the missing
    // receipts from the Run entry and still matches the baseline.
    let mut torn = entries.clone();
    let last_two: Vec<&str> = torn[torn.len() - 2..].iter().map(|e| e.label()).collect();
    assert_eq!(last_two, ["invoice", "verdict"]);
    torn.truncate(torn.len() - 2);
    let mut recovered_torn = service77(2, None);
    let report = recovered_torn.recover(&torn).unwrap();
    assert_eq!(report.unconfirmed, 1, "one run lost its receipts");
    assert!(report.is_consistent());
    assert_eq!(recovered_torn.ledger(), &baseline_report.ledger);
    assert_eq!(
        strip_self_accounting(&recovered_torn.metrics_text()),
        strip_self_accounting(&baseline.metrics_text())
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncated_and_corrupt_tails_are_dropped_mid_file_corruption_is_not() {
    let journal = Journal::in_memory();
    let mut service = service77(2, Some(journal.clone()));
    service.process(&batch(4));
    let (entries, tail) = journal.entries().unwrap();
    assert_eq!(tail, TailStatus::Clean);
    assert_eq!(entries.len(), 12);

    // Take the canonical chained bytes and tear the tail mid-line, as a
    // crash mid-append would.
    let text = journal.text().unwrap();
    let torn = format!("{text}{}", &text[..40]);
    let (parsed, tail) = parse_journal(&torn).unwrap();
    assert_eq!(parsed, entries);
    assert!(tail.is_truncated());

    // A newline-terminated final line that fails to parse is *not* a crash
    // artifact — appends write the line and its newline in one call, so a
    // torn write can never be terminated. It is corruption, and an error.
    let corrupt_tail = format!("{text}{{\"Run\":garbage}}\n");
    assert!(matches!(
        parse_journal(&corrupt_tail),
        Err(JournalError::Corrupt { line: 13, .. })
    ));

    // Corruption before the tail is likewise an error.
    let lines: Vec<&str> = text.lines().collect();
    let mid_corrupt = format!(
        "{}\nnot-json\n{}\n",
        lines[..6].join("\n"),
        lines[6..].join("\n")
    );
    match parse_journal(&mid_corrupt) {
        Err(JournalError::Corrupt { line: 7, .. }) => {}
        other => panic!("expected corruption at line 7, got {other:?}"),
    }

    // Recovery over the truncated journal still matches a clean run of the
    // surviving prefix.
    let mut recovered = service77(2, None);
    recovered.recover(&parsed).unwrap();
    let mut baseline = service77(2, None);
    baseline.process(&batch(4));
    assert_eq!(recovered.ledger(), baseline.ledger());
}

#[test]
fn compaction_folds_a_prefix_without_changing_recovery() {
    let jobs = batch(24);
    let journal = Journal::in_memory();
    let mut original = service77(4, Some(journal.clone()));
    let original_report = original.process(&jobs);
    let (entries, _) = journal.entries().unwrap();

    let mut expositions = Vec::new();
    for fold in [0usize, 10, 24] {
        let mut scratch = service77(4, None);
        let compacted = compact(&entries, fold, &mut scratch).unwrap();
        assert_eq!(compacted[0].label(), "checkpoint");
        assert_eq!(count_entries(&compacted, "run"), 24 - fold);
        match &compacted[0] {
            JournalEntry::Checkpoint(checkpoint) => {
                assert_eq!(checkpoint.runs, fold as u64);
            }
            other => panic!("expected checkpoint, got {other:?}"),
        }

        let mut recovered = service77(4, None);
        let report = recovered.recover(&compacted).unwrap();
        assert_eq!(report.checkpoint_runs, fold as u64);
        assert_eq!(report.runs_replayed, 24 - fold as u64);
        assert!(report.is_consistent());
        assert_eq!(recovered.ledger(), &original_report.ledger);
        assert_eq!(audit_summaries(&recovered), audit_summaries(&original));
        expositions.push(recovered.metrics_text());
    }
    // Folding nothing, part, or everything yields the same recovered
    // exposition — byte for byte, journal series included.
    assert_eq!(expositions[0], expositions[1]);
    assert_eq!(expositions[0], expositions[2]);

    // Compaction composes: compacting a compacted journal still recovers.
    let mut scratch = service77(4, None);
    let once = compact(&entries, 8, &mut scratch).unwrap();
    let mut scratch = service77(4, None);
    let twice = compact(&once, 8, &mut scratch).unwrap();
    assert_eq!(count_entries(&twice, "run"), 8);
    let mut recovered = service77(4, None);
    recovered.recover(&twice).unwrap();
    assert_eq!(recovered.ledger(), &original_report.ledger);
}

#[test]
fn tampered_journal_receipts_and_outcomes_are_detected() {
    let jobs = batch(6);
    let journal = Journal::in_memory();
    let mut service = service77(2, Some(journal.clone()));
    service.process(&jobs);
    let (entries, _) = journal.entries().unwrap();

    // Tamper with a billing receipt: the re-derived invoice disagrees.
    let mut doctored = entries.clone();
    let invoice_at = doctored
        .iter()
        .position(|e| e.label() == "invoice")
        .unwrap();
    let job = match &mut doctored[invoice_at] {
        JournalEntry::Invoice(posting) => {
            posting.billed.total /= 2.0;
            posting.job
        }
        _ => unreachable!(),
    };
    let mut recovered = service77(2, None);
    let report = recovered.recover(&doctored).unwrap();
    assert_eq!(report.mismatches, vec![job]);
    assert!(!report.is_consistent());

    // Tamper with a run's reported outcome: the attestation quote no
    // longer matches, the replayed verdict gains a quote-mismatch anomaly,
    // and the journaled (clean) verdict receipt disagrees with the replay.
    let mut doctored = entries.clone();
    let job = match &mut doctored[0] {
        JournalEntry::Run(record) => {
            record.outcome.victim_billed.utime =
                Cycles(record.outcome.victim_billed.utime.as_u64() * 3);
            record.job.id
        }
        _ => unreachable!(),
    };
    let mut recovered = service77(2, None);
    let report = recovered.recover(&doctored).unwrap();
    assert!(
        report.mismatches.contains(&job),
        "mismatches: {:?}",
        report.mismatches
    );
    // Job 0 belongs to tenant 1 (batch() stripes tenants by id).
    let summary = recovered.auditor().summary(TenantId(1)).unwrap();
    assert!(
        summary.anomaly_counts.contains_key("quote-mismatch"),
        "counts: {:?}",
        summary.anomaly_counts
    );

    // Tamper with a run's *embedded reference* only (forge the clean truth
    // up to the attacked bill, hiding the overcharge): the quote nonce
    // commits to the reference, so verification fails, the auditor replays
    // inline, and the overbilling survives — plus the verdict receipt
    // disagrees.
    let mut doctored = entries.clone();
    let job = match &mut doctored[0] {
        JournalEntry::Run(record) => {
            let reference = record.reference.as_mut().unwrap();
            reference.victim_truth = record.outcome.victim_billed;
            record.job.id
        }
        _ => unreachable!(),
    };
    let mut recovered = service77(2, None);
    let report = recovered.recover(&doctored).unwrap();
    assert!(report.mismatches.contains(&job));
    let summary = recovered.auditor().summary(TenantId(1)).unwrap();
    assert!(
        summary.anomaly_counts.contains_key("quote-mismatch"),
        "counts: {:?}",
        summary.anomaly_counts
    );
    assert!(
        summary.anomaly_counts.contains_key("overbilled"),
        "the forged reference must not hide the overcharge: {:?}",
        summary.anomaly_counts
    );

    // Compaction refuses to fold a tampered prefix into a clean-looking
    // checkpoint.
    let mut scratch = service77(2, None);
    assert!(matches!(
        compact(&doctored, 6, &mut scratch),
        Err(RecoveryError::InconsistentPrefix { .. })
    ));
}

#[test]
fn invalid_journals_are_rejected() {
    let journal = Journal::in_memory();
    let mut service = service77(1, Some(journal.clone()));
    service.process(&batch(2));
    let (entries, _) = journal.entries().unwrap();

    // A receipt with no preceding run is not a write-ahead sequence.
    let orphan: Vec<JournalEntry> = entries
        .iter()
        .filter(|e| e.label() != "run")
        .cloned()
        .collect();
    let mut recovered = service77(1, None);
    assert!(matches!(
        recovered.recover(&orphan),
        Err(RecoveryError::OrphanPosting(_))
    ));

    // A checkpoint after replayed runs is rejected.
    let mut misplaced = entries.clone();
    misplaced.push(JournalEntry::checkpoint(service77(1, None).checkpoint()));
    let mut recovered = service77(1, None);
    assert!(matches!(
        recovered.recover(&misplaced),
        Err(RecoveryError::MisplacedCheckpoint)
    ));

    // A repeated Run+receipts group is a hard error under strict
    // recovery: in a hash-chained journal a duplicated entry can only be
    // copy-pasted evidence (the chain would have caught a literal re-read
    // of the same line), so double-billing is refused, not just reported.
    // This is the regression test for the old silent-accept path, which
    // replayed the duplicate into the ledger and merely listed the id in
    // `duplicate_runs`.
    let mut duplicated = entries.clone();
    duplicated.extend(entries[..3].iter().cloned());
    let mut recovered = service77(1, None);
    assert!(matches!(
        recovered.recover(&duplicated),
        Err(RecoveryError::ChainViolation(JobId(0)))
    ));

    // Lenient recovery keeps the operator-vetting behavior for legacy
    // journals: the duplicate replays and the id is surfaced.
    let mut recovered = service77(1, None);
    let report = recovered.recover_lenient(&duplicated).unwrap();
    assert_eq!(report.duplicate_runs, vec![JobId(0)]);
    assert!(report.is_consistent(), "receipts still match the replay");
    assert_eq!(report.runs_replayed, 3, "the duplicate was posted");

    // The same strict refusal covers runs already folded into a
    // checkpoint, and the same lenient surfacing still works.
    let mut scratch = service77(1, None);
    let mut compacted = compact(&entries, 2, &mut scratch).unwrap();
    compacted.extend(entries[..3].iter().cloned());
    let mut recovered = service77(1, None);
    assert!(matches!(
        recovered.recover(&compacted),
        Err(RecoveryError::ChainViolation(JobId(0)))
    ));
    let mut recovered = service77(1, None);
    let report = recovered.recover_lenient(&compacted).unwrap();
    assert_eq!(report.duplicate_runs, vec![JobId(0)]);
}

#[test]
fn same_id_runs_released_back_to_back_pair_receipts_in_fifo_order() {
    // Two runs sharing a job id but differing in content (same derived
    // seed, different workloads) — a legal resubmission. When both are
    // released before their receipts (the streaming pump pattern:
    // Run,Run,…receipts…), recovery must pair each receipt with *its*
    // run, not overwrite one pending posting with the other.
    let journal = Journal::in_memory();
    let mut service = service77(1, Some(journal.clone()));
    service.process(&[JobSpec::clean(0, TenantId(1), Workload::LoopO, SCALE)]);
    service.process(&[JobSpec::clean(0, TenantId(1), Workload::Pi, SCALE)]);
    let (entries, _) = journal.entries().unwrap();
    let labels: Vec<&str> = entries.iter().map(|e| e.label()).collect();
    assert_eq!(
        labels,
        ["run", "invoice", "verdict", "run", "invoice", "verdict"]
    );
    // Reorder into the release-both-then-post pattern.
    let stream_order = vec![
        entries[0].clone(),
        entries[3].clone(),
        entries[1].clone(),
        entries[2].clone(),
        entries[4].clone(),
        entries[5].clone(),
    ];
    // Strict recovery refuses the reused id outright — from evidence
    // alone a resubmission is indistinguishable from double billing, so
    // settling it needs the lenient path and an operator's judgment.
    let mut recovered = service77(1, None);
    assert!(matches!(
        recovered.recover(&stream_order),
        Err(RecoveryError::ChainViolation(JobId(0)))
    ));
    let mut recovered = service77(1, None);
    let report = recovered.recover_lenient(&stream_order).unwrap();
    assert!(
        report.is_consistent(),
        "mismatches: {:?}",
        report.mismatches
    );
    assert_eq!(report.runs_replayed, 2);
    assert_eq!(report.unconfirmed, 0);
    assert_eq!(report.duplicate_runs, vec![JobId(0)]);
    assert_eq!(recovered.ledger(), service.ledger());
}

/// A scratch segment directory unique to one test.
fn segment_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("trustmeter-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn segmented_recovery_is_bit_identical_across_1_2_8_workers() {
    let jobs = batch(24);
    let mut baseline = service77(4, None);
    let baseline_report = baseline.process(&jobs);

    for workers in [1usize, 2, 8] {
        let dir = segment_dir(&format!("seg-{workers}"));
        // Segments small enough to rotate many times, a cadence that
        // checkpoints (and retires) mid-stream.
        let config = SegmentConfig::default().with_segment_bytes(8 * 1024);
        let journal = Journal::segmented(&dir, config).unwrap();
        let mut service = service77(workers, Some(journal.clone()))
            .with_checkpoint_cadence(CheckpointCadence::every_n_runs(10));
        let mut stream = service.stream(IngestConfig::new(workers));
        for job in &jobs {
            stream.submit(job.clone()).expect("queue sized for batch");
            stream.pump();
        }
        let streamed_report = stream.finish();
        assert_eq!(
            streamed_report, baseline_report,
            "segmented journaling must not perturb results at {workers} workers"
        );
        let stats = journal.stats();
        assert!(stats.rotations > 0, "segments rotated: {stats:?}");
        assert!(stats.group_commits > 0, "appends were batched: {stats:?}");
        assert!(
            stats.segments_retired > 0,
            "checkpoints retired history: {stats:?}"
        );
        let text = service.metrics_text();
        for family in [
            "fleet_journal_rotations_total",
            "fleet_journal_group_commits_total",
            "fleet_journal_fsyncs_total",
        ] {
            assert!(text.contains(family), "missing {family}; dump:\n{text}");
        }
        assert!(
            !text.contains("fleet_journal_rotations_total 0\n"),
            "rotations exported; dump:\n{text}"
        );

        // The live directory starts at the latest checkpoint (everything
        // older was retired) and replays into bit-identical state — the
        // "restarted process" path.
        let reopened = Journal::segmented(&dir, config).unwrap();
        let (entries, tail) = reopened.entries().unwrap();
        assert_eq!(tail, TailStatus::Clean);
        assert_eq!(
            entries[0].label(),
            "checkpoint",
            "retired directory leads with its checkpoint"
        );
        let mut recovered = service77(workers, None);
        let report = recovered.recover_latest(&entries).unwrap();
        assert!(
            report.is_consistent(),
            "mismatches: {:?}",
            report.mismatches
        );
        assert!(report.checkpoint_runs > 0, "checkpoint was applied");
        assert_eq!(
            report.checkpoint_runs + report.runs_replayed,
            24,
            "checkpointed + replayed covers the whole batch"
        );
        assert_eq!(recovered.ledger(), &baseline_report.ledger);
        assert_eq!(audit_summaries(&recovered), audit_summaries(&baseline));
        assert_eq!(
            metering_exposition(&recovered.metrics_text()),
            metering_exposition(&baseline.metrics_text()),
            "metering exposition must be byte-identical after segmented recovery"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn cadence_checkpoints_bound_recovery_on_any_sink() {
    // On a non-segmented sink nothing is retired, so the journal holds
    // mid-stream checkpoints; recover_latest seeks the newest one and
    // replays only the entries after it.
    let journal = Journal::in_memory();
    let mut service = service77(2, Some(journal.clone()))
        .with_checkpoint_cadence(CheckpointCadence::every_n_runs(10));
    let jobs = batch(24);
    service.process(&jobs);
    let (entries, _) = journal.entries().unwrap();
    let checkpoints = count_entries(&entries, "checkpoint");
    assert_eq!(checkpoints, 2, "cadence wrote inline checkpoints at 10, 20");

    // Strict recovery rejects the mid-stream checkpoint...
    let mut strict = service77(2, None);
    assert!(matches!(
        strict.recover(&entries),
        Err(RecoveryError::MisplacedCheckpoint)
    ));
    // ...recover_latest applies it: only the post-checkpoint tail replays.
    let mut recovered = service77(2, None);
    let report = recovered.recover_latest(&entries).unwrap();
    assert_eq!(report.checkpoint_runs, 20);
    assert_eq!(report.runs_replayed, 4);
    assert!(report.is_consistent());
    let mut baseline = service77(2, None);
    baseline.process(&jobs);
    assert_eq!(recovered.ledger(), baseline.ledger());
    assert_eq!(audit_summaries(&recovered), audit_summaries(&baseline));
    assert_eq!(
        metering_exposition(&recovered.metrics_text()),
        metering_exposition(&baseline.metrics_text())
    );
}

#[test]
fn killed_segmented_stream_recovers_the_released_prefix() {
    let dir = segment_dir("seg-kill");
    let jobs = batch(24);
    let config = SegmentConfig::default().with_segment_bytes(8 * 1024);
    {
        let journal = Journal::segmented(&dir, config).unwrap();
        let mut service =
            service77(2, Some(journal)).with_checkpoint_cadence(CheckpointCadence::every_n_runs(8));
        let mut stream = service.stream(IngestConfig::new(2));
        for job in &jobs {
            stream.submit(job.clone()).expect("queue sized for batch");
        }
        while stream.verdicts().len() < 8 {
            stream.pump();
            std::thread::yield_now();
        }
        // The "kill": drop the stream mid-flight, then tear the last
        // segment the way a crash mid-append would.
        drop(stream);
    }
    {
        use std::io::Write as _;
        let mut segments: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        segments.sort();
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(segments.last().unwrap())
            .unwrap();
        file.write_all(br#"{"Run":{"job":{"id":999"#).unwrap();
    }
    // Reopening repairs the torn tail; recovery replays the released
    // prefix, receipts included.
    let journal = Journal::segmented(&dir, config).unwrap();
    let (entries, tail) = journal.entries().unwrap();
    assert_eq!(tail, TailStatus::Clean, "reopen repaired the torn tail");
    let mut recovered = service77(2, None);
    let report = recovered.recover_latest(&entries).unwrap();
    assert!(report.is_consistent());
    let released = (report.checkpoint_runs + report.runs_replayed) as usize;
    assert!((8..=24).contains(&released), "released: {released}");

    let mut baseline = service77(4, None);
    baseline.process(&jobs[..released]);
    assert_eq!(recovered.ledger(), baseline.ledger());
    assert_eq!(
        metering_exposition(&recovered.metrics_text()),
        metering_exposition(&baseline.metrics_text())
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn watermarked_stream_is_still_bit_identical_to_batch() {
    let jobs = batch(12);
    let mut baseline = service77(4, None);
    let baseline_report = baseline.process(&jobs);
    let mut service = service77(4, None);
    let config = IngestConfig::new(4).with_completion_watermark(2);
    let mut stream = service.stream(config);
    for job in &jobs {
        stream.submit(job.clone()).expect("queue sized for batch");
        stream.pump();
    }
    assert_eq!(stream.finish(), baseline_report);
}

// ---------------------------------------------------------------------------
// Property: interleaved append/compact/recover sequences converge
// ---------------------------------------------------------------------------

/// Everything the journal proptest replays against, built once: the base
/// journal (append groups per job) and, for every prefix length, the
/// ledger and audit summaries of an uninterrupted batch run.
struct JournalFixture {
    groups: Vec<Vec<JournalEntry>>,
    prefix_ledgers: Vec<Ledger>,
    prefix_summaries: Vec<Vec<TenantAuditSummary>>,
}

fn journal_fixture() -> &'static JournalFixture {
    static FIXTURE: std::sync::OnceLock<JournalFixture> = std::sync::OnceLock::new();
    FIXTURE.get_or_init(|| {
        let jobs = batch(8);
        let journal = Journal::in_memory();
        let mut service = service77(2, Some(journal.clone()));
        service.process(&jobs);
        let (entries, _) = journal.entries().unwrap();
        // The batch path journals Run, Invoice, Verdict per job, in order.
        assert_eq!(entries.len(), 24);
        let groups: Vec<Vec<JournalEntry>> = entries.chunks(3).map(<[_]>::to_vec).collect();
        for group in &groups {
            let labels: Vec<&str> = group.iter().map(|e| e.label()).collect();
            assert_eq!(labels, ["run", "invoice", "verdict"]);
        }
        let mut prefix_ledgers = Vec::new();
        let mut prefix_summaries = Vec::new();
        for n in 0..=jobs.len() {
            let mut baseline = service77(2, None);
            baseline.process(&jobs[..n]);
            prefix_ledgers.push(baseline.ledger().clone());
            prefix_summaries.push(audit_summaries(&baseline));
        }
        JournalFixture {
            groups,
            prefix_ledgers,
            prefix_summaries,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever interleaving of group appends, size-driven rotations
    /// (every segment is tiny), inline checkpoints (with retirement) and
    /// mid-sequence recoveries — plus full reopen-from-disk cycles — a
    /// segmented journal lives through, recovery always reproduces the
    /// uninterrupted batch state for the appended prefix.
    #[test]
    fn segmented_journal_survives_interleaved_append_rotate_checkpoint_recover(
        ops in prop::collection::vec(0u8..4, 1..12),
    ) {
        static CASE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let case = CASE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let fixture = journal_fixture();
        let dir = segment_dir(&format!("seg-prop-{case}"));
        // ~2 KiB segments: almost every group commit rotates.
        let config = SegmentConfig::default().with_segment_bytes(2048);
        let mut journal = Journal::segmented(&dir, config).unwrap();
        let mut appended = 0usize;
        for op in ops {
            match op {
                0 => {
                    if appended < fixture.groups.len() {
                        journal.append_batch(&fixture.groups[appended]).unwrap();
                        appended += 1;
                    }
                }
                1 => {
                    // Inline checkpoint at a safe point: fold everything
                    // appended so far, retiring the older segments.
                    let (entries, _) = journal.entries().unwrap();
                    let mut scratch = service77(2, None);
                    scratch.recover_latest(&entries).unwrap();
                    journal.append_checkpoint(&scratch.checkpoint()).unwrap();
                }
                2 => {
                    // The restarted process: reopen the directory from disk.
                    journal = Journal::segmented(&dir, config).unwrap();
                }
                _ => {
                    let (entries, tail) = journal.entries().unwrap();
                    prop_assert_eq!(tail, TailStatus::Clean);
                    let mut recovered = service77(2, None);
                    let report = recovered.recover_latest(&entries).unwrap();
                    prop_assert!(report.is_consistent());
                    prop_assert_eq!(report.unconfirmed, 0);
                    prop_assert_eq!(recovered.ledger(), &fixture.prefix_ledgers[appended]);
                }
            }
        }
        // Drain the remaining groups and do the final recovery.
        for group in &fixture.groups[appended..] {
            journal.append_batch(group).unwrap();
        }
        let (entries, _) = journal.entries().unwrap();
        let mut recovered = service77(2, None);
        let report = recovered.recover_latest(&entries).unwrap();
        prop_assert!(report.is_consistent());
        prop_assert_eq!(report.unconfirmed, 0);
        let full = fixture.groups.len();
        prop_assert_eq!(recovered.ledger(), &fixture.prefix_ledgers[full]);
        prop_assert_eq!(&audit_summaries(&recovered), &fixture.prefix_summaries[full]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever interleaving of appends, compactions and mid-sequence
    /// recoveries a journal lives through, recovery always reproduces the
    /// uninterrupted batch state for the appended prefix.
    #[test]
    fn journal_survives_interleaved_append_compact_recover(
        ops in prop::collection::vec(0u8..3, 1..14),
        fold_denominator in 1u8..4,
    ) {
        let fixture = journal_fixture();
        let mut entries: Vec<JournalEntry> = Vec::new();
        let mut appended = 0usize;
        for op in ops {
            match op {
                0 => {
                    if appended < fixture.groups.len() {
                        entries.extend(fixture.groups[appended].iter().cloned());
                        appended += 1;
                    }
                }
                1 => {
                    let fold = appended / fold_denominator as usize;
                    let mut scratch = service77(2, None);
                    entries = compact(&entries, fold, &mut scratch).unwrap();
                }
                _ => {
                    let mut recovered = service77(2, None);
                    let report = recovered.recover(&entries).unwrap();
                    prop_assert!(report.is_consistent());
                    prop_assert_eq!(recovered.ledger(), &fixture.prefix_ledgers[appended]);
                }
            }
        }
        // Drain the remaining groups and do the final recovery.
        for group in &fixture.groups[appended..] {
            entries.extend(group.iter().cloned());
        }
        let mut recovered = service77(2, None);
        let report = recovered.recover(&entries).unwrap();
        prop_assert!(report.is_consistent());
        prop_assert_eq!(report.unconfirmed, 0);
        let full = fixture.groups.len();
        prop_assert_eq!(recovered.ledger(), &fixture.prefix_ledgers[full]);
        prop_assert_eq!(&audit_summaries(&recovered), &fixture.prefix_summaries[full]);
    }
}

// ---------------------------------------------------------------------------
// Observability: span tracing, stage histograms, exposition hygiene
// ---------------------------------------------------------------------------

/// Streams `jobs` through a traced seed-77 service and returns the report,
/// the full metrics text, and the set of span ids the tracer captured.
fn stream_jobs_traced(jobs: &[JobSpec], workers: usize) -> (FleetReport, String, Vec<u64>) {
    let tracer = PipelineTracer::new(4096, 77);
    let mut service = service77(workers, None).with_tracer(tracer.clone());
    let mut stream = service.stream(IngestConfig::new(workers));
    for job in jobs {
        stream.submit(job.clone()).expect("queue sized for batch");
        stream.pump();
    }
    let report = stream.finish();
    let mut span_ids: Vec<u64> = tracer.spans().iter().map(|span| span.id).collect();
    span_ids.sort_unstable();
    span_ids.dedup();
    (report, service.metrics_text(), span_ids)
}

#[test]
fn tracing_does_not_perturb_results_at_1_2_8_workers() {
    let jobs = batch(24);
    let mut baseline = service77(4, None);
    let baseline_report = baseline.process(&jobs);
    let baseline_metering = metering_exposition(&baseline.metrics_text());

    let mut all_span_ids = Vec::new();
    for workers in [1usize, 2, 8] {
        let (untraced_report, untraced_metrics) = stream_jobs(&jobs, workers);
        let (traced_report, traced_metrics, span_ids) = stream_jobs_traced(&jobs, workers);

        // Ledger and verdicts are bit-identical with the tracer attached.
        assert_eq!(
            traced_report, untraced_report,
            "tracing must not perturb the report at {workers} workers"
        );
        assert_eq!(traced_report.ledger, baseline_report.ledger);
        assert_eq!(traced_report.verdicts, baseline_report.verdicts);

        // The metering exposition — everything a billing consumer reads —
        // is byte-identical with tracing on, off, or absent entirely.
        assert_eq!(
            metering_exposition(&traced_metrics),
            metering_exposition(&untraced_metrics),
            "metering exposition must not depend on tracing at {workers} workers"
        );
        assert_eq!(metering_exposition(&traced_metrics), baseline_metering);

        // The traced run did observe the pipeline: stage histograms and the
        // observer's self-accounting are live, and the untraced run's are not.
        assert!(
            traced_metrics.contains("fleet_stage_seconds_count{stage=\"execute\"} 24"),
            "dump:\n{traced_metrics}"
        );
        assert!(
            traced_metrics.contains("fleet_stage_seconds_count{stage=\"queue_wait\"} 24"),
            "dump:\n{traced_metrics}"
        );
        assert!(
            !traced_metrics.contains("fleet_observer_spans_total 0\n"),
            "dump:\n{traced_metrics}"
        );
        assert!(
            untraced_metrics.contains("fleet_observer_spans_total 0\n"),
            "dump:\n{untraced_metrics}"
        );

        // Span identity is seeded, not clocked: every stage of every job maps
        // to the same id whatever the worker count. (No journal is attached,
        // so no journal-commit spans exist — no retry spans either, since
        // those only appear when a journal commit fails — and no reassign
        // spans, since no worker ever dies on a healthy run.)
        let mut expected: Vec<u64> = jobs
            .iter()
            .flat_map(|job| {
                Stage::ALL
                    .iter()
                    .filter(|stage| {
                        **stage != Stage::JournalCommit
                            && **stage != Stage::JournalRetry
                            && **stage != Stage::Reassign
                    })
                    .map(|stage| span_id(77, job.id, *stage))
            })
            .collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(span_ids, expected, "span ids drifted at {workers} workers");
        all_span_ids.push(span_ids);
    }
    assert_eq!(all_span_ids[0], all_span_ids[1]);
    assert_eq!(all_span_ids[0], all_span_ids[2]);
}

#[test]
fn recovery_byte_matches_metering_exposition_with_tracing_enabled() {
    let jobs = batch(24);
    let mut baseline = service77(4, None);
    baseline.process(&jobs);
    let baseline_metering = metering_exposition(&baseline.metrics_text());

    let mut recovered_expositions = Vec::new();
    for workers in [1usize, 2, 8] {
        // Stream through a journaled *and traced* service: the journal must
        // capture no trace of the tracer.
        let journal = Journal::in_memory();
        let mut service =
            service77(workers, Some(journal.clone())).with_tracer(PipelineTracer::new(4096, 77));
        let mut stream = service.stream(IngestConfig::new(workers));
        for job in &jobs {
            stream.submit(job.clone()).expect("queue sized for batch");
            stream.pump();
        }
        let _ = stream.finish();

        let (entries, tail) = journal.entries().unwrap();
        assert_eq!(tail, TailStatus::Clean);
        let mut recovered = service77(workers, None);
        let report = recovered.recover(&entries).unwrap();
        assert!(report.is_consistent());

        let recovered_metrics = recovered.metrics_text();
        assert_eq!(
            metering_exposition(&recovered_metrics),
            baseline_metering,
            "recovered metering exposition must byte-match the un-traced \
             baseline at {workers} workers"
        );
        // The recovered service never saw the tracer: its stage histograms
        // and observer counters are the pre-registered zeros.
        assert!(
            recovered_metrics.contains("fleet_observer_spans_total 0\n"),
            "dump:\n{recovered_metrics}"
        );
        assert!(
            recovered_metrics.contains("fleet_stage_seconds_count{stage=\"execute\"} 0"),
            "dump:\n{recovered_metrics}"
        );
        recovered_expositions.push(recovered_metrics);
    }
    assert_eq!(recovered_expositions[0], recovered_expositions[1]);
    assert_eq!(recovered_expositions[0], recovered_expositions[2]);
}

#[test]
fn exposition_lint_help_escaping_and_ordering() {
    // Every family a fully-loaded service registers carries non-empty help.
    let jobs = batch(12);
    let mut service =
        service77(2, Some(Journal::in_memory())).with_tracer(PipelineTracer::new(256, 77));
    let _ = service.process(&jobs);
    let mut families = 0;
    for (name, help, _) in service.metrics().family_info() {
        assert!(!help.trim().is_empty(), "family {name} has empty help text");
        families += 1;
    }
    assert!(families >= 10, "expected a loaded registry, got {families}");

    // Label escaping round-trips: a hostile label value renders escaped and
    // un-escapes back to the original bytes.
    let hostile = "a\\b\"c\nd";
    let mut registry = MetricsRegistry::new();
    registry.counter_add("lint_test", "lint", &[("tenant", hostile)], 1.0);
    let text = registry.render();
    let escaped = "tenant=\"a\\\\b\\\"c\\nd\"";
    assert!(text.contains(escaped), "dump:\n{text}");
    let start = text.find("tenant=\"").unwrap() + "tenant=\"".len();
    let end = text[start..].find("\"}").unwrap() + start;
    let mut unescaped = String::new();
    let mut chars = text[start..end].chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            unescaped.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => unescaped.push('\\'),
            Some('"') => unescaped.push('"'),
            Some('n') => unescaped.push('\n'),
            other => panic!("unknown escape \\{other:?}"),
        }
    }
    assert_eq!(unescaped, hostile, "escaping must round-trip");

    // Render order is stable: registration order does not leak into the
    // exposition, for scalar and histogram families alike.
    let forward = {
        let mut registry = MetricsRegistry::new();
        registry.counter_add("lint_a", "first", &[("t", "1")], 1.0);
        registry.counter_add("lint_a", "first", &[("t", "2")], 2.0);
        registry.histogram_observe("lint_b", "second", &[0.1, 1.0], &[], 0.5);
        registry.gauge_set("lint_c", "third", &[], 7.0);
        registry.render()
    };
    let reversed = {
        let mut registry = MetricsRegistry::new();
        registry.gauge_set("lint_c", "third", &[], 7.0);
        registry.histogram_observe("lint_b", "second", &[0.1, 1.0], &[], 0.5);
        registry.counter_add("lint_a", "first", &[("t", "2")], 2.0);
        registry.counter_add("lint_a", "first", &[("t", "1")], 1.0);
        registry.render()
    };
    assert_eq!(forward, reversed, "render order must not track insertion");
    let a = forward.find("lint_a").unwrap();
    let b = forward.find("lint_b").unwrap();
    let c = forward.find("lint_c").unwrap();
    assert!(a < b && b < c, "families render in name order:\n{forward}");
}
