//! Reproducibility: identical configurations produce bit-identical results,
//! and the seed only affects what it should.

use trustmeter::prelude::*;

#[test]
fn identical_runs_are_bit_identical() {
    let run = || {
        Scenario::new(Workload::Brute, 0.002)
            .run_attacked(&SchedulingAttack::paper_default(0.002, -10))
    };
    let a = run();
    let b = run();
    assert_eq!(a.victim_billed, b.victim_billed);
    assert_eq!(a.victim_truth, b.victim_truth);
    assert_eq!(a.elapsed_secs, b.elapsed_secs);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.measurement_pcr, b.measurement_pcr);
    assert_eq!(a.witness_digest, b.witness_digest);
}

#[test]
fn different_seed_changes_only_stochastic_parts() {
    let outcome = |seed| {
        Scenario::new(Workload::LoopO, 0.002)
            .with_config(KernelConfig::paper_machine().with_seed(seed))
            .run_attacked(&InterruptFloodAttack::paper_default())
    };
    let a = outcome(1);
    let b = outcome(2);
    // The Poisson packet arrivals differ, so the exact interrupt count
    // differs...
    assert_ne!(a.stats.device_interrupts, b.stats.device_interrupts);
    // ...but the deterministic part of the execution (the victim's own
    // ground-truth user time) stays essentially identical.
    let ua = a.victim_truth.utime.as_f64();
    let ub = b.victim_truth.utime.as_f64();
    assert!((ua - ub).abs() / ua < 0.01, "{ua} vs {ub}");
}

#[test]
fn kernel_runs_are_deterministic_at_the_event_level() {
    let run = || {
        let cfg = KernelConfig::paper_machine().with_seed(77);
        let mut k = Kernel::new(cfg.clone());
        let work = cfg.frequency.cycles_for(Nanos::from_millis(30));
        k.spawn_process(Box::new(OpsProgram::compute_only("a", work)), 0);
        k.spawn_process(Box::new(OpsProgram::compute_only("b", work)), -5);
        k.run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.finished_at, b.finished_at);
    let pa: Vec<_> = a
        .processes
        .iter()
        .map(|p| (p.tgid, p.billed(), p.ground_truth()))
        .collect();
    let pb: Vec<_> = b
        .processes
        .iter()
        .map(|p| (p.tgid, p.billed(), p.ground_truth()))
        .collect();
    assert_eq!(pa, pb);
}
