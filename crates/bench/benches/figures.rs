//! One Criterion benchmark group per paper figure.
//!
//! Each bench runs the corresponding experiment end to end (clean runs,
//! attacked runs, series assembly) at `BENCH_SCALE`. The reported times are
//! the cost of *regenerating the figure*, and the benches double as a
//! regression harness: `cargo bench -p trustmeter-bench --bench figures`.

use criterion::{criterion_group, criterion_main, Criterion};
use trustmeter_bench::bench_config;
use trustmeter_experiments::{
    fig10_irqflood, fig11_pfflood, fig4_shell, fig5_ctor, fig6_interpose, fig7_sched_whetstone,
    fig8_sched_brute, fig9_thrash,
};

fn bench_figures(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig4_shell_attack", |b| b.iter(|| fig4_shell(&cfg)));
    group.bench_function("fig5_constructor_attack", |b| b.iter(|| fig5_ctor(&cfg)));
    group.bench_function("fig6_interposition_attack", |b| {
        b.iter(|| fig6_interpose(&cfg))
    });
    group.bench_function("fig7_scheduling_whetstone", |b| {
        b.iter(|| fig7_sched_whetstone(&cfg))
    });
    group.bench_function("fig8_scheduling_brute", |b| {
        b.iter(|| fig8_sched_brute(&cfg))
    });
    group.bench_function("fig9_thrashing", |b| b.iter(|| fig9_thrash(&cfg)));
    group.bench_function("fig10_interrupt_flood", |b| b.iter(|| fig10_irqflood(&cfg)));
    group.bench_function("fig11_exception_flood", |b| b.iter(|| fig11_pfflood(&cfg)));

    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
