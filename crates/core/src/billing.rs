//! Billing: turning measured CPU time into money.
//!
//! Utility-computing providers price CPU usage per hour or per second
//! (paper §II cites EC2, Google App Engine, Azure, Sun Grid, HP computons).
//! The overcharge a metering attack produces only matters once it is
//! converted into the customer's bill, so the analysis layer works on
//! [`Invoice`]s produced from a [`RateCard`].

use crate::cputime::CpuTime;
use serde::{Deserialize, Serialize};
use std::fmt;
use trustmeter_sim::CpuFrequency;

/// How fractional billing units are rounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RoundingPolicy {
    /// Bill exact fractional units (per-second billing).
    #[default]
    Exact,
    /// Round the total usage up to the next whole unit (EC2-style per-hour
    /// billing rounds partial hours up).
    CeilToUnit,
}

/// Pricing for CPU time.
///
/// # Example
///
/// ```
/// use trustmeter_core::{CpuTime, RateCard};
/// use trustmeter_sim::{CpuFrequency, Cycles};
///
/// let card = RateCard::per_cpu_hour(0.10); // $0.10 per CPU hour
/// let freq = CpuFrequency::E7200;
/// let one_hour = CpuTime::user(freq.cycles_for(trustmeter_sim::Nanos::from_secs(3600)));
/// let invoice = card.invoice(one_hour, freq);
/// assert!((invoice.total - 0.10).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateCard {
    /// Price per billing unit, in currency units (e.g. dollars).
    pub price_per_unit: f64,
    /// Length of one billing unit in CPU seconds (3600 for per-hour pricing,
    /// 1 for per-second pricing).
    pub unit_secs: f64,
    /// Rounding behaviour.
    pub rounding: RoundingPolicy,
}

impl RateCard {
    /// Per-CPU-hour pricing with exact fractional billing.
    pub fn per_cpu_hour(price: f64) -> RateCard {
        RateCard {
            price_per_unit: price,
            unit_secs: 3600.0,
            rounding: RoundingPolicy::Exact,
        }
    }

    /// Per-CPU-second pricing.
    pub fn per_cpu_second(price: f64) -> RateCard {
        RateCard {
            price_per_unit: price,
            unit_secs: 1.0,
            rounding: RoundingPolicy::Exact,
        }
    }

    /// Switches the card to round partial units up (utility-style billing).
    pub fn rounded_up(mut self) -> RateCard {
        self.rounding = RoundingPolicy::CeilToUnit;
        self
    }

    /// Computes the bill for `usage` measured on a CPU of frequency `freq`.
    pub fn invoice(&self, usage: CpuTime, freq: CpuFrequency) -> Invoice {
        let user_secs = usage.utime_secs(freq);
        let sys_secs = usage.stime_secs(freq);
        let items = vec![
            LineItem {
                description: "user time".to_string(),
                cpu_secs: user_secs,
            },
            LineItem {
                description: "system time".to_string(),
                cpu_secs: sys_secs,
            },
        ];
        let total_secs: f64 = items.iter().map(|i| i.cpu_secs).sum();
        let units = match self.rounding {
            RoundingPolicy::Exact => total_secs / self.unit_secs,
            RoundingPolicy::CeilToUnit => (total_secs / self.unit_secs).ceil(),
        };
        Invoice {
            items,
            billed_units: units,
            total: units * self.price_per_unit,
        }
    }
}

/// One line of an invoice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineItem {
    /// What is being billed.
    pub description: String,
    /// CPU seconds billed on this line.
    pub cpu_secs: f64,
}

/// A customer invoice for one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Invoice {
    /// The individual line items (user time, system time).
    pub items: Vec<LineItem>,
    /// Number of billing units charged (after rounding).
    pub billed_units: f64,
    /// Total price in currency units.
    pub total: f64,
}

impl Invoice {
    /// Total CPU seconds across all line items (before rounding).
    pub fn total_cpu_secs(&self) -> f64 {
        self.items.iter().map(|i| i.cpu_secs).sum()
    }

    /// How much more expensive this invoice is than `baseline`, as an
    /// absolute currency amount.
    pub fn overcharge_vs(&self, baseline: &Invoice) -> f64 {
        (self.total - baseline.total).max(0.0)
    }
}

impl fmt::Display for Invoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Invoice ({:.4} units, total {:.4}):",
            self.billed_units, self.total
        )?;
        for item in &self.items {
            writeln!(f, "  {:<12} {:.3} CPU s", item.description, item.cpu_secs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustmeter_sim::{Cycles, Nanos};

    fn secs(freq: CpuFrequency, s: u64) -> Cycles {
        freq.cycles_for(Nanos::from_secs(s))
    }

    #[test]
    fn per_second_billing_is_linear() {
        let freq = CpuFrequency::from_mhz(1000);
        let card = RateCard::per_cpu_second(0.01);
        let usage = CpuTime::new(secs(freq, 100), secs(freq, 20));
        let inv = card.invoice(usage, freq);
        assert!((inv.total_cpu_secs() - 120.0).abs() < 1e-9);
        assert!((inv.total - 1.2).abs() < 1e-9);
        assert_eq!(inv.items.len(), 2);
    }

    #[test]
    fn hourly_ceiling_rounds_up() {
        let freq = CpuFrequency::from_mhz(1000);
        let card = RateCard::per_cpu_hour(0.10).rounded_up();
        // 30 minutes of CPU → billed as a full hour.
        let usage = CpuTime::user(secs(freq, 1800));
        let inv = card.invoice(usage, freq);
        assert!((inv.billed_units - 1.0).abs() < 1e-12);
        assert!((inv.total - 0.10).abs() < 1e-12);
    }

    #[test]
    fn exact_hourly_is_fractional() {
        let freq = CpuFrequency::from_mhz(1000);
        let card = RateCard::per_cpu_hour(0.10);
        let usage = CpuTime::user(secs(freq, 1800));
        let inv = card.invoice(usage, freq);
        assert!((inv.billed_units - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overcharge_versus_baseline() {
        let freq = CpuFrequency::from_mhz(1000);
        let card = RateCard::per_cpu_second(0.01);
        let clean = card.invoice(CpuTime::user(secs(freq, 100)), freq);
        let attacked = card.invoice(CpuTime::user(secs(freq, 134)), freq);
        assert!((attacked.overcharge_vs(&clean) - 0.34).abs() < 1e-9);
        assert_eq!(clean.overcharge_vs(&attacked), 0.0);
    }

    #[test]
    fn zero_usage_costs_nothing() {
        let card = RateCard::per_cpu_hour(1.0);
        let inv = card.invoice(CpuTime::ZERO, CpuFrequency::E7200);
        assert_eq!(inv.total, 0.0);
        assert_eq!(inv.total_cpu_secs(), 0.0);
    }

    #[test]
    fn ceil_to_unit_does_not_round_zero_usage_up() {
        // ceil(0/unit) = 0: an idle customer owes nothing even under
        // round-partial-hours-up billing.
        let card = RateCard::per_cpu_hour(1.0).rounded_up();
        let inv = card.invoice(CpuTime::ZERO, CpuFrequency::E7200);
        assert_eq!(inv.billed_units, 0.0);
        assert_eq!(inv.total, 0.0);
    }

    #[test]
    fn ceil_to_unit_exactly_one_unit_stays_one_unit() {
        // ceil(1.0) = 1.0: usage landing exactly on the unit boundary must
        // not be rounded up to a second unit.
        let freq = CpuFrequency::from_mhz(1000);
        let card = RateCard::per_cpu_hour(0.10).rounded_up();
        let inv = card.invoice(CpuTime::user(secs(freq, 3600)), freq);
        assert!(
            (inv.billed_units - 1.0).abs() < 1e-12,
            "units {}",
            inv.billed_units
        );
        assert!((inv.total - 0.10).abs() < 1e-12);
        // One cycle past the boundary tips into the second unit.
        let over = CpuTime::user(Cycles(secs(freq, 3600).as_u64() + 1));
        let inv2 = card.invoice(over, freq);
        assert!(
            (inv2.billed_units - 2.0).abs() < 1e-12,
            "units {}",
            inv2.billed_units
        );
    }

    #[test]
    fn ceil_to_unit_splits_user_and_system_before_rounding() {
        // Rounding applies to the *total*, not per line item: 0.5h user +
        // 0.5h system is exactly one unit, not two.
        let freq = CpuFrequency::from_mhz(1000);
        let card = RateCard::per_cpu_hour(0.10).rounded_up();
        let usage = CpuTime::new(secs(freq, 1800), secs(freq, 1800));
        let inv = card.invoice(usage, freq);
        assert!(
            (inv.billed_units - 1.0).abs() < 1e-12,
            "units {}",
            inv.billed_units
        );
    }

    #[test]
    fn display_lists_items() {
        let card = RateCard::per_cpu_second(1.0);
        let freq = CpuFrequency::from_mhz(1000);
        let s = format!("{}", card.invoice(CpuTime::user(secs(freq, 2)), freq));
        assert!(s.contains("user time"));
        assert!(s.contains("system time"));
    }
}
