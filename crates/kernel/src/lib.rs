//! # trustmeter-kernel
//!
//! A deterministic, discrete-event simulation of the single-core Linux
//! machine used in the evaluation of *"On Trustworthiness of CPU Usage
//! Metering and Accounting"* (Liu & Ding, ICDCSW 2010): a timer interrupt at
//! configurable HZ driving jiffy-based CPU accounting, a proportional-share
//! scheduler with nice values, fork/execve/exit/wait, signals, ptrace with
//! hardware breakpoints, device interrupts (NIC, disk), demand paging with
//! global reclaim, and a dynamic loader with `LD_PRELOAD` and symbol
//! interposition.
//!
//! Every accounting-relevant transition is reported to the metering schemes
//! in [`trustmeter_core`], so a single run yields the commodity tick-based
//! reading (what the provider bills), the fine-grained TSC ground truth, and
//! the process-aware reading side by side.
//!
//! ## Quick start
//!
//! ```
//! use trustmeter_kernel::{Kernel, KernelConfig, OpsProgram};
//! use trustmeter_core::SchemeKind;
//! use trustmeter_sim::Cycles;
//!
//! let mut kernel = Kernel::new(KernelConfig::paper_machine());
//! let pid = kernel.spawn_process(
//!     Box::new(OpsProgram::compute_only("quick-job", Cycles(10_000_000))),
//!     0,
//! );
//! let result = kernel.run();
//! println!(
//!     "billed: {:.3} s, ground truth: {:.3} s",
//!     result.process(pid).unwrap().billed().total_secs(result.frequency),
//!     result.process(pid).unwrap().ground_truth().total_secs(result.frequency),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod devices;
pub mod kernel;
pub mod loader;
pub mod mm;
pub mod program;
pub mod results;
pub mod sched;
pub mod signals;
pub mod task;

pub use config::{CostModel, KernelConfig, SchedulerKind};
pub use devices::{Disk, DiskRequest, NicFlood};
pub use kernel::Kernel;
pub use loader::{LibraryRegistry, LoadPlan, SharedLibrary};
pub use mm::{FaultBatch, MemoryManager};
pub use program::{LoopProgram, Op, OpOutcome, OpsProgram, Program, ProgramCtx, SyscallOp};
pub use results::{KernelStats, ProcessUsage, RunResult};
pub use signals::Signal;
pub use task::{BlockReason, Task, TaskMem, TaskState};
