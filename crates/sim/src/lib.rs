//! # trustmeter-sim
//!
//! Discrete-event simulation substrate used by the `trustmeter` workspace,
//! a reproduction of *"On Trustworthiness of CPU Usage Metering and
//! Accounting"* (Liu & Ding, ICDCSW 2010).
//!
//! The crate provides the building blocks every other crate relies on:
//!
//! * [`time`] — virtual time expressed in CPU cycles ([`Cycles`]) and wall
//!   clock units ([`Nanos`]), converted through a [`CpuFrequency`], plus the
//!   virtual time-stamp counter [`Tsc`].
//! * [`events`] — a deterministic priority [`EventQueue`] with stable
//!   ordering for events scheduled at the same instant.
//! * [`rng`] — a small, seedable, deterministic random number generator
//!   ([`SimRng`]) so whole simulations are reproducible bit-for-bit.
//! * [`stats`] — summary statistics, time series and histograms used by the
//!   experiment harness.
//! * [`trace`] — a structured trace sink for debugging simulated kernels.
//!
//! # Example
//!
//! ```
//! use trustmeter_sim::{CpuFrequency, Cycles, EventQueue, Nanos};
//!
//! let freq = CpuFrequency::from_mhz(2533); // the paper's E7200 @ 2.53 GHz
//! let one_ms = freq.cycles_for(Nanos::from_millis(1));
//! assert_eq!(freq.nanos_for(one_ms).as_millis_f64().round() as u64, 1);
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(Cycles(10), "later");
//! q.schedule(Cycles(5), "sooner");
//! assert_eq!(q.pop().unwrap().payload, "sooner");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use events::{Event, EventQueue};
pub use rng::SimRng;
pub use stats::{Histogram, Series, Summary};
pub use time::{CpuFrequency, Cycles, Nanos, Tsc};
pub use trace::{TraceEvent, TraceLevel, TraceSink};
