//! The kernel orchestrator: process management, the run loop, event
//! handling, and the bridge to the metering schemes.
//!
//! The [`Kernel`] owns every subsystem (scheduler, memory manager, dynamic
//! loader, devices) and executes the spawned programs' ops on a single
//! simulated CPU. Every accounting-relevant transition is reported to a
//! [`MeterBank`] holding the commodity tick scheme and the two fine-grained
//! schemes, so one run yields all three readings.

use crate::config::KernelConfig;
use crate::devices::{Disk, NicFlood};
use crate::loader::LibraryRegistry;
use crate::mm::MemoryManager;
use crate::program::{Op, OpOutcome, Program, SyscallOp};
use crate::results::{KernelStats, ProcessUsage, RunResult};
use crate::sched::{build_scheduler, Scheduler};
use crate::signals::Signal;
use crate::task::{BlockReason, Effect, Micro, Task, TaskState, TaskTable};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use trustmeter_core::{
    Digest, ExceptionKind, ImageKind, IrqLine, MeasuredImage, MeterBank, MeterEvent, Mode,
    SchemeKind, TaskId,
};
use trustmeter_sim::{Cycles, EventQueue, SimRng, TraceLevel, TraceSink};

/// Events the kernel schedules for itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KernelEvent {
    /// Periodic timer interrupt.
    TimerTick,
    /// A junk packet arrived at the NIC.
    NicPacket,
    /// A disk request issued by `owner` completed.
    DiskComplete { owner: TaskId },
    /// A sleeping task's timer expired.
    WakeSleep { task: TaskId },
}

/// Result of trying to obtain more work for a task.
enum FetchResult {
    /// New micro-ops were queued (or the op was costless).
    Lowered,
    /// The program is finished and the task should exit.
    Exited,
}

/// The simulated operating-system kernel.
///
/// # Example
///
/// ```
/// use trustmeter_kernel::{Kernel, KernelConfig, OpsProgram};
/// use trustmeter_core::SchemeKind;
/// use trustmeter_sim::Cycles;
///
/// let mut kernel = Kernel::new(KernelConfig::paper_machine());
/// let pid = kernel.spawn_process(
///     Box::new(OpsProgram::compute_only("job", Cycles(50_000_000))),
///     0,
/// );
/// let result = kernel.run();
/// let usage = result.process(pid).unwrap();
/// assert!(usage.usage(SchemeKind::Tsc).total() >= Cycles(50_000_000));
/// ```
pub struct Kernel {
    config: KernelConfig,
    now: Cycles,
    next_pid: u32,
    tasks: TaskTable,
    current: Option<TaskId>,
    scheduler: Box<dyn Scheduler>,
    meter: MeterBank,
    events: EventQueue<KernelEvent>,
    mm: MemoryManager,
    libs: LibraryRegistry,
    disk: Disk,
    nic_flood: Option<NicFlood>,
    nic_rng: SimRng,
    /// Code the (tampered) shell injects between `fork()` and `execve()`,
    /// as `(label, cycles)` pairs. Empty on an honest platform.
    shell_injection: Vec<(String, Cycles)>,
    /// `LD_PRELOAD` applied to processes launched through the shell.
    ld_preload: Vec<String>,
    /// Destructor work to run when a task exits, per task.
    exit_work: BTreeMap<TaskId, Vec<(String, Cycles)>>,
    /// Interposed symbols already measured, per task (avoid re-measuring on
    /// every call).
    measured_symbols: BTreeMap<TaskId, BTreeSet<String>>,
    /// Stopped tracees not yet reported to their tracer via `wait()`.
    stopped_unreported: BTreeSet<TaskId>,
    /// The (start, end) of the most recent device-interrupt handler window,
    /// used to decide whether a (late-processed) timer tick interrupted an
    /// interrupt handler and must therefore be charged as system time.
    irq_window: Option<(Cycles, Cycles)>,
    trace: TraceSink,
    stats: KernelStats,
    rng: SimRng,
    preempt_requested: bool,
    /// Memoized witness-label digests. The witness chain update must see
    /// every step, but `Digest::of(label)` is pure and control-flow labels
    /// repeat heavily (every iteration of a libcall loop re-records the
    /// same `call:<symbol>`), so each distinct label is hashed once.
    witness_steps: HashMap<String, Digest>,
    /// Memoized `call:<symbol>` step digests, keyed by bare symbol (a
    /// separate map from [`Kernel::witness_steps`] so a symbol named like a
    /// block label cannot alias it).
    libcall_steps: HashMap<String, Digest>,
}

/// Looks up (or computes and caches) the step digest for a witness label.
/// A free function rather than a method so call sites holding a mutable
/// task borrow can still reach the cache field.
fn memo_step(cache: &mut HashMap<String, Digest>, label: &str) -> Digest {
    match cache.get(label) {
        Some(step) => *step,
        None => {
            let step = Digest::of(label.as_bytes());
            cache.insert(label.to_string(), step);
            step
        }
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.now)
            .field("tasks", &self.tasks.len())
            .field("current", &self.current)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Kernel {
    /// Creates a kernel from a configuration, with the standard library
    /// registry and the default three-scheme meter bank.
    pub fn new(config: KernelConfig) -> Kernel {
        let jiffy = config.jiffy();
        let mut rng = SimRng::seed_from(config.seed);
        let nic_rng = rng.fork();
        let linker_cost = config.cost(config.costs.dynlink_per_library_us);
        Kernel {
            scheduler: build_scheduler(config.scheduler, jiffy),
            meter: MeterBank::standard(jiffy),
            events: EventQueue::new(),
            mm: MemoryManager::new(config.physical_pages),
            libs: LibraryRegistry::with_standard_libraries(linker_cost),
            disk: Disk::new(config.cost(config.costs.disk_latency_us)),
            nic_flood: None,
            nic_rng,
            shell_injection: Vec::new(),
            ld_preload: Vec::new(),
            exit_work: BTreeMap::new(),
            measured_symbols: BTreeMap::new(),
            stopped_unreported: BTreeSet::new(),
            irq_window: None,
            trace: TraceSink::disabled(),
            stats: KernelStats::default(),
            now: Cycles::ZERO,
            next_pid: 1,
            tasks: TaskTable::new(),
            current: None,
            rng,
            preempt_requested: false,
            witness_steps: HashMap::new(),
            libcall_steps: HashMap::new(),
            config,
        }
    }

    /// The kernel's configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Mutable access to the library registry, used by attacks to install
    /// malicious libraries.
    pub fn libraries_mut(&mut self) -> &mut LibraryRegistry {
        &mut self.libs
    }

    /// Enables structured tracing at the given level.
    pub fn enable_trace(&mut self, level: TraceLevel) {
        self.trace = TraceSink::with_level(level).with_capacity_limit(100_000);
    }

    /// The collected trace (empty unless tracing was enabled).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Installs the shell attack: `(label, cycles)` work executed in every
    /// shell-launched process between `fork()` and `execve()`.
    pub fn set_shell_injection(&mut self, injection: Vec<(String, Cycles)>) {
        self.shell_injection = injection;
    }

    /// Sets the `LD_PRELOAD` list applied to shell-launched processes.
    pub fn set_ld_preload(&mut self, libraries: Vec<String>) {
        self.ld_preload = libraries;
    }

    /// Points a junk-packet flood at the machine (the interrupt-flooding
    /// attack).
    pub fn set_nic_flood(&mut self, flood: NicFlood) {
        self.nic_flood = Some(flood);
    }

    /// Reference to the meter bank (to inspect usages mid-run in tests).
    pub fn meter(&self) -> &MeterBank {
        &self.meter
    }

    /// The task table entry for `id`, if it exists.
    pub fn task(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(id)
    }

    /// Current virtual time.
    pub fn now(&self) -> Cycles {
        self.now
    }

    fn alloc_pid(&mut self) -> TaskId {
        let id = TaskId(self.next_pid);
        self.next_pid += 1;
        id
    }

    /// Launches a program the way the platform shell does: fork, run any
    /// shell-injected code, `execve`, dynamic linking and library
    /// constructors (honouring `LD_PRELOAD`), then the program itself. All
    /// launch-phase work is billed to the new process — the property the
    /// launch-time attacks exploit.
    pub fn spawn_process(&mut self, program: Box<dyn Program>, nice: i8) -> TaskId {
        let pid = self.alloc_pid();
        let rng = self.rng.fork();
        let mut task = Task::new(pid, pid, None, nice, program, rng);
        task.ld_preload = self.ld_preload.clone();

        // fork() cost is billed to the child from its very first instant.
        task.push_front_micro(Micro::Kernel {
            remaining: self.config.cost(self.config.costs.fork_us),
        });

        // Shell-injected code runs before execve, in user mode.
        let injection = self.shell_injection.clone();
        for (label, cycles) in injection {
            task.measurements
                .measure(MeasuredImage::new(&label, ImageKind::ShellInjected));
            task.witness
                .record_step(memo_step(&mut self.witness_steps, &label));
            task.push_user_work(cycles);
        }

        // execve + dynamic linking + constructors.
        task.micros.push_back(Micro::Kernel {
            remaining: self.config.cost(self.config.costs.execve_us),
        });
        let plan = self
            .libs
            .load_plan(&task.name.clone(), &task.ld_preload.clone());
        for m in plan.measurements {
            task.measurements.measure(m);
        }
        for (label, cycles) in plan.user_work {
            task.witness
                .record_step(memo_step(&mut self.witness_steps, &label));
            task.push_user_work(cycles);
        }
        if !plan.exit_work.is_empty() {
            self.exit_work.insert(pid, plan.exit_work);
        }

        self.admit(task)
    }

    /// Creates a task without the shell/loader launch phase (children forked
    /// by running programs, attack helpers, kernel-internal tasks).
    pub fn spawn_raw(&mut self, program: Box<dyn Program>, nice: i8) -> TaskId {
        let pid = self.alloc_pid();
        let rng = self.rng.fork();
        let task = Task::new(pid, pid, None, nice, program, rng);
        self.admit(task)
    }

    fn admit(&mut self, task: Task) -> TaskId {
        let id = task.id;
        let nice = task.nice;
        self.mm.register(id);
        self.stats.tasks_created += 1;
        self.tasks.insert(task);
        self.scheduler.task_created(id, nice, self.now);
        self.scheduler.enqueue(id, self.now, self.current);
        id
    }

    // -----------------------------------------------------------------
    // Run loop
    // -----------------------------------------------------------------

    /// Runs the simulation until every task has exited (or the horizon is
    /// reached) and returns the per-process usages under every scheme.
    pub fn run(&mut self) -> RunResult {
        let horizon = self.config.horizon();
        let jiffy = self.config.jiffy();
        self.events
            .schedule(self.now + jiffy, KernelEvent::TimerTick);
        if let Some(flood) = self.nic_flood {
            let first = flood.first_arrival(self.config.frequency).max(Cycles(1));
            self.events.schedule(first, KernelEvent::NicPacket);
        }

        let mut hit_horizon = false;
        loop {
            while let Some(ev) = self.events.pop_due(self.now) {
                self.handle_event(ev.at, ev.payload);
            }
            if !self.any_alive() {
                break;
            }
            if self.now >= horizon {
                hit_horizon = true;
                break;
            }
            if self.current.is_none() {
                match self.scheduler.pick_next(self.now) {
                    Some(next) => self.switch_to(next),
                    None => {
                        // Idle: nothing is runnable, so handling each jiffy
                        // tick individually would only pay the handler cost
                        // and reschedule — coalesce the ticks up to the next
                        // non-tick event (or the horizon), then advance the
                        // clock to the next event in one step.
                        self.coalesce_idle_ticks(horizon);
                        match self.events.peek_time() {
                            Some(t) => {
                                self.now = self.now.max(t);
                                continue;
                            }
                            None => break,
                        }
                    }
                }
            }
            let deadline = self.events.peek_time().unwrap_or(horizon).min(horizon);
            if deadline <= self.now {
                continue;
            }
            self.run_current_until(deadline);
        }
        self.collect_results(hit_horizon)
    }

    fn any_alive(&self) -> bool {
        self.tasks.iter().any(|t| t.state.is_alive())
    }

    fn switch_to(&mut self, next: TaskId) {
        self.stats.context_switches += 1;
        let ctx_cost = self.config.cost(self.config.costs.context_switch_us);
        let Some(task) = self.tasks.get_mut(next) else {
            return;
        };
        task.state = TaskState::Running;
        let mode = task.mode;
        task.push_front_micro(Micro::Kernel {
            remaining: ctx_cost,
        });
        self.current = Some(next);
        self.meter.on_event(&MeterEvent::SwitchIn {
            at: self.now,
            task: next,
            mode,
        });
        self.trace
            .emit_with(self.now, TraceLevel::Info, "sched", || {
                format!("switch to {next}")
            });
    }

    fn deschedule_current(&mut self, new_state: TaskState, voluntary: bool) {
        let Some(cur) = self.current.take() else {
            return;
        };
        self.meter.on_event(&MeterEvent::SwitchOut {
            at: self.now,
            task: cur,
        });
        if let Some(task) = self.tasks.get_mut(cur) {
            task.state = new_state;
            if voluntary {
                task.voluntary_switches += 1;
            } else {
                task.involuntary_switches += 1;
            }
        }
        if voluntary {
            self.scheduler.note_voluntary_block(cur, self.now);
        }
        if new_state == TaskState::Ready {
            self.scheduler.enqueue(cur, self.now, None);
        }
    }

    fn run_current_until(&mut self, deadline: Cycles) {
        let mut guard = 0u32;
        while self.now < deadline {
            let Some(cur) = self.current else { return };
            if !self.execute_front_micro(cur, deadline) {
                // Micro queue empty: lower the next program op.
                match self.fetch_and_lower(cur) {
                    FetchResult::Lowered => {
                        guard += 1;
                        // A pathological program could yield an unbounded
                        // stream of costless ops; cap the zero-time work we
                        // do per slice so the clock always makes progress.
                        if guard > 10_000 {
                            self.now = deadline;
                            return;
                        }
                        continue;
                    }
                    FetchResult::Exited => {
                        self.do_exit(cur, 0);
                        return;
                    }
                }
            }
            if self.preempt_requested {
                self.preempt_requested = false;
                if self.current == Some(cur) {
                    self.deschedule_current(TaskState::Ready, false);
                }
                return;
            }
            if self.current != Some(cur) {
                return;
            }
        }
    }

    /// With nothing runnable, the pending timer tick (there is at most one
    /// in the queue) would fire every jiffy, pay the handler cost, and
    /// reschedule itself — without ever waking anyone, because wakeups come
    /// from non-tick events. Move the tick to the first jiffy boundary at
    /// or past the next non-tick event (or the horizon) in one step.
    fn coalesce_idle_ticks(&mut self, horizon: Cycles) {
        if !matches!(self.events.peek(), Some((_, KernelEvent::TimerTick))) {
            return;
        }
        let Some(tick) = self.events.pop() else {
            return;
        };
        // Clamp to the horizon: the run loop stops there, so events beyond
        // it must stay unprocessed exactly as they would under per-jiffy
        // ticking.
        let target = self.events.peek_time().unwrap_or(horizon).min(horizon);
        let jiffy = self.config.jiffy();
        let mut at = tick.at;
        if target > at && !jiffy.is_zero() {
            let skipped = (target - at).as_u64().div_ceil(jiffy.as_u64());
            at += jiffy * skipped;
            self.stats.ticks_coalesced += skipped;
        }
        self.events.schedule(at, KernelEvent::TimerTick);
    }

    /// Executes the front micro-op of `cur`, splitting it at `deadline`.
    /// Returns `false` when the task has no pending micro-op (the caller
    /// must lower the next program op first).
    ///
    /// This is the hottest function in the simulator: the micro-op is
    /// inspected, advanced, popped on completion, and its mode switch and
    /// breakpoint check resolved under a **single** task-table lookup; only
    /// the subsystem side effects (meter events, scheduler charge, syscall
    /// effects) run after the borrow ends.
    fn execute_front_micro(&mut self, cur: TaskId, deadline: Cycles) -> bool {
        let budget = deadline.saturating_sub(self.now);
        // What remains to do once the borrow on the task is released.
        enum Action {
            Run {
                slice: Cycles,
                completes: bool,
                exception: Option<ExceptionKind>,
                enter_exception: bool,
            },
            Effect,
            Done,
        }
        let (action, mode_change) = {
            let Some(task) = self.tasks.get_mut(cur) else {
                return false;
            };
            let Some(front) = task.micros.front_mut() else {
                return false;
            };
            let (action, mode) = match front {
                Micro::User { remaining } => {
                    let slice = (*remaining).min(budget);
                    *remaining = remaining.saturating_sub(slice);
                    let completes = remaining.is_zero();
                    if completes {
                        task.micros.pop_front();
                    }
                    (
                        Action::Run {
                            slice,
                            completes,
                            exception: None,
                            enter_exception: false,
                        },
                        Some(Mode::User),
                    )
                }
                Micro::Kernel { remaining } => {
                    let slice = (*remaining).min(budget);
                    *remaining = remaining.saturating_sub(slice);
                    let completes = remaining.is_zero();
                    if completes {
                        task.micros.pop_front();
                    }
                    (
                        Action::Run {
                            slice,
                            completes,
                            exception: None,
                            enter_exception: false,
                        },
                        Some(Mode::Kernel),
                    )
                }
                Micro::Exception {
                    kind,
                    remaining,
                    entered,
                } => {
                    let enter = !*entered;
                    *entered = true;
                    let kind = *kind;
                    let slice = (*remaining).min(budget);
                    *remaining = remaining.saturating_sub(slice);
                    let completes = remaining.is_zero();
                    if completes {
                        task.micros.pop_front();
                    }
                    (
                        Action::Run {
                            slice,
                            completes,
                            exception: Some(kind),
                            enter_exception: enter,
                        },
                        Some(Mode::Kernel),
                    )
                }
                Micro::WatchedAccess { addr, count_left } => {
                    // Replace the front micro according to whether a
                    // breakpoint is armed on this address.
                    let addr = *addr;
                    let count_left = *count_left;
                    let armed = task.breakpoint == Some(addr) && task.traced_by.is_some();
                    task.micros.pop_front();
                    if armed {
                        let trap_cost = self.config.cost(self.config.costs.debug_trap_us);
                        let signal_cost = self.config.cost(self.config.costs.signal_delivery_us);
                        self.stats.debug_traps += 1;
                        if count_left > 1 {
                            task.micros.push_front(Micro::WatchedAccess {
                                addr,
                                count_left: count_left - 1,
                            });
                        }
                        task.micros.push_front(Micro::Effect(Effect::TrapStop));
                        task.micros.push_front(Micro::Kernel {
                            remaining: signal_cost,
                        });
                        task.micros.push_front(Micro::Exception {
                            kind: ExceptionKind::Debug,
                            remaining: trap_cost,
                            entered: false,
                        });
                        // The access itself is a single user-mode
                        // instruction.
                        task.micros.push_front(Micro::User {
                            remaining: Cycles(1),
                        });
                    } else {
                        // Unwatched accesses are ordinary user work (one
                        // cycle each).
                        task.micros.push_front(Micro::User {
                            remaining: Cycles(count_left.max(1)),
                        });
                    }
                    (Action::Done, None)
                }
                Micro::Effect(_) => (Action::Effect, None),
            };
            let mode_change = match mode {
                Some(mode) if task.mode != mode => {
                    task.mode = mode;
                    Some(mode)
                }
                _ => None,
            };
            (action, mode_change)
        };

        if let Some(mode) = mode_change {
            self.meter.on_event(&MeterEvent::ModeChange {
                at: self.now,
                task: cur,
                mode,
            });
        }
        match action {
            Action::Run {
                slice,
                completes,
                exception,
                enter_exception,
            } => {
                if let (Some(kind), true) = (exception, enter_exception) {
                    self.meter.on_event(&MeterEvent::ExceptionEnter {
                        at: self.now,
                        task: cur,
                        kind,
                    });
                }
                self.now += slice;
                self.scheduler.charge(cur, slice);
                if completes && exception.is_some() {
                    self.meter.on_event(&MeterEvent::ExceptionExit {
                        at: self.now,
                        task: cur,
                    });
                }
            }
            Action::Effect => {
                let effect = {
                    let Some(task) = self.tasks.get_mut(cur) else {
                        return true;
                    };
                    match task.micros.pop_front() {
                        Some(Micro::Effect(e)) => e,
                        _ => return true,
                    }
                };
                self.apply_effect(cur, effect);
            }
            Action::Done => {}
        }
        true
    }

    // -----------------------------------------------------------------
    // Op lowering
    // -----------------------------------------------------------------

    fn fetch_and_lower(&mut self, cur: TaskId) -> FetchResult {
        // Deliver an implicit "completed" outcome for ops that have no
        // specific result.
        if let Some(task) = self.tasks.get_mut(cur) {
            if task.ops_executed > 0 && task.last_outcome == OpOutcome::None {
                task.last_outcome = OpOutcome::Completed;
            }
        }
        let op = match self.tasks.get_mut(cur) {
            Some(task) => task.fetch_op(),
            None => return FetchResult::Exited,
        };
        match op {
            Some(op) => {
                self.lower_op(cur, op);
                FetchResult::Lowered
            }
            None => {
                // Program finished: run destructors (if any) and then exit.
                let exit_work = self.exit_work.remove(&cur).unwrap_or_default();
                if exit_work.is_empty() {
                    return FetchResult::Exited;
                }
                let exit_cost = self.config.cost(self.config.costs.exit_us);
                if let Some(task) = self.tasks.get_mut(cur) {
                    for (label, cycles) in exit_work {
                        task.witness
                            .record_step(memo_step(&mut self.witness_steps, &label));
                        task.push_user_work(cycles);
                    }
                    task.micros.push_back(Micro::Kernel {
                        remaining: exit_cost,
                    });
                    task.micros
                        .push_back(Micro::Effect(Effect::Exit { code: 0 }));
                }
                FetchResult::Lowered
            }
        }
    }

    fn lower_op(&mut self, cur: TaskId, op: Op) {
        let entry = self.config.cost(self.config.costs.syscall_entry_us);
        match op {
            Op::Compute { cycles } => {
                if let Some(task) = self.tasks.get_mut(cur) {
                    task.push_user_work(cycles);
                }
            }
            Op::LibCall { symbol, calls } => {
                let preload = self
                    .tasks
                    .get(cur)
                    .map(|t| t.ld_preload.clone())
                    .unwrap_or_default();
                let (per_call, provider) = self.libs.resolve(&symbol, &preload);
                let interposed = preload.contains(&provider);
                let Some(task) = self.tasks.get_mut(cur) else {
                    return;
                };
                if interposed {
                    let seen = self.measured_symbols.entry(cur).or_default();
                    if seen.insert(symbol.clone()) {
                        task.measurements.measure(MeasuredImage::new(
                            format!("{provider}:{symbol}"),
                            ImageKind::InterposedSymbol,
                        ));
                    }
                }
                // Keyed by bare symbol so a cache hit skips both the
                // label formatting and its hash.
                let step = match self.libcall_steps.get(&symbol) {
                    Some(step) => *step,
                    None => {
                        let step = Digest::of(format!("call:{symbol}").as_bytes());
                        self.libcall_steps.insert(symbol.clone(), step);
                        step
                    }
                };
                task.witness.record_step(step);
                task.push_user_work(Cycles(per_call.as_u64().saturating_mul(calls)));
            }
            Op::TouchMemory { pages } => {
                let batch = self.mm.touch(cur, pages);
                self.stats.minor_faults += batch.minor_faults;
                self.stats.major_faults += batch.major_faults;
                let minor_cost = self.config.cost(self.config.costs.minor_fault_us);
                let major_cost = self
                    .config
                    .cost(self.config.costs.major_fault_us + self.config.costs.swap_in_us);
                let Some(task) = self.tasks.get_mut(cur) else {
                    return;
                };
                // The touches themselves are cheap user work.
                task.push_user_work(Cycles(pages.max(1)));
                if batch.minor_faults > 0 {
                    task.micros.push_back(Micro::Exception {
                        kind: ExceptionKind::PageFault,
                        remaining: Cycles(minor_cost.as_u64().saturating_mul(batch.minor_faults)),
                        entered: false,
                    });
                }
                if batch.major_faults > 0 {
                    task.micros.push_back(Micro::Exception {
                        kind: ExceptionKind::PageFault,
                        remaining: Cycles(major_cost.as_u64().saturating_mul(batch.major_faults)),
                        entered: false,
                    });
                }
                let mem = self.mm.task_mem(cur);
                if let Some(task) = self.tasks.get_mut(cur) {
                    task.mem = mem;
                }
            }
            Op::AccessWatched { addr, count } => {
                if count == 0 {
                    return;
                }
                if let Some(task) = self.tasks.get_mut(cur) {
                    task.micros.push_back(Micro::WatchedAccess {
                        addr,
                        count_left: count,
                    });
                }
            }
            Op::AllocMemory { pages } => {
                self.mm.allocate(cur, pages);
                let mem = self.mm.task_mem(cur);
                if let Some(task) = self.tasks.get_mut(cur) {
                    task.mem = mem;
                    task.micros.push_back(Micro::Kernel { remaining: entry });
                }
            }
            Op::Label { block } => {
                if let Some(task) = self.tasks.get_mut(cur) {
                    task.witness
                        .record_step(memo_step(&mut self.witness_steps, block));
                }
            }
            Op::Syscall(sys) => {
                self.stats.syscalls += 1;
                self.lower_syscall(cur, sys, entry);
            }
        }
    }

    fn lower_syscall(&mut self, cur: TaskId, sys: SyscallOp, entry: Cycles) {
        let costs = self.config.costs;
        let cost = |us: f64| self.config.cost(us);
        let Some(task) = self.tasks.get_mut(cur) else {
            return;
        };
        let mut kernel_cost = entry;
        let effect = match sys {
            SyscallOp::Fork { child, nice } => {
                kernel_cost += cost(costs.fork_us);
                Effect::Fork { child, nice }
            }
            SyscallOp::SpawnThread { thread } => {
                kernel_cost += cost(costs.fork_us * 0.6);
                Effect::SpawnThread { thread }
            }
            SyscallOp::Wait => {
                kernel_cost += cost(costs.wait_us);
                Effect::Wait
            }
            SyscallOp::Exit { code } => {
                // Destructors registered at load time run before the exit
                // syscall proper.
                let exit_work = self.exit_work.remove(&cur).unwrap_or_default();
                for (label, cycles) in exit_work {
                    task.witness
                        .record_step(memo_step(&mut self.witness_steps, &label));
                    task.push_user_work(cycles);
                }
                kernel_cost += cost(costs.exit_us);
                Effect::Exit { code }
            }
            SyscallOp::Nanosleep { duration } => {
                let dur = self.config.frequency.cycles_for(duration);
                Effect::Sleep { duration: dur }
            }
            SyscallOp::Read { bytes } | SyscallOp::Write { bytes } => {
                kernel_cost += Cycles(bytes / 8);
                Effect::DiskRequest { bytes }
            }
            SyscallOp::Dlopen { library } => {
                kernel_cost += cost(costs.dynlink_per_library_us * 0.25);
                Effect::Dlopen { library }
            }
            SyscallOp::Dlclose { library } => Effect::Dlclose { library },
            SyscallOp::SetNice { nice } => Effect::SetNice { nice },
            SyscallOp::Kill { target, signal } => {
                kernel_cost += cost(costs.signal_delivery_us);
                Effect::Kill { target, signal }
            }
            SyscallOp::PtraceAttach { target } => {
                kernel_cost += cost(costs.ptrace_request_us);
                Effect::PtraceAttach { target }
            }
            SyscallOp::PtraceSetBreakpoint { target, addr } => {
                kernel_cost += cost(costs.ptrace_request_us);
                Effect::PtraceSetBreakpoint { target, addr }
            }
            SyscallOp::PtraceCont { target } => {
                kernel_cost += cost(costs.ptrace_request_us);
                Effect::PtraceCont { target }
            }
            SyscallOp::PtraceDetach { target } => {
                kernel_cost += cost(costs.ptrace_request_us);
                Effect::PtraceDetach { target }
            }
            SyscallOp::Getrusage => Effect::Getrusage,
        };
        task.micros.push_back(Micro::Kernel {
            remaining: kernel_cost,
        });
        task.micros.push_back(Micro::Effect(effect));
    }

    // -----------------------------------------------------------------
    // Effects
    // -----------------------------------------------------------------

    fn apply_effect(&mut self, cur: TaskId, effect: Effect) {
        match effect {
            Effect::Fork { child, nice } => {
                let pid = self.alloc_pid();
                let rng = self.rng.fork();
                let task = Task::new(pid, pid, Some(cur), nice, child, rng);
                self.mm.register(pid);
                self.stats.tasks_created += 1;
                self.tasks.insert(task);
                self.scheduler.task_created(pid, nice, self.now);
                let preempt = self.scheduler.enqueue(pid, self.now, self.current);
                self.preempt_requested |= preempt;
                if let Some(parent) = self.tasks.get_mut(cur) {
                    parent.children.push(pid);
                    parent.last_outcome = OpOutcome::ForkedChild(pid);
                }
            }
            Effect::SpawnThread { thread } => {
                let pid = self.alloc_pid();
                let rng = self.rng.fork();
                let (tgid, nice) = self
                    .tasks
                    .get(cur)
                    .map(|t| (t.tgid, t.nice))
                    .unwrap_or((cur, 0));
                let task = Task::new(pid, tgid, Some(cur), nice, thread, rng);
                self.mm.register(pid);
                self.stats.tasks_created += 1;
                self.tasks.insert(task);
                self.scheduler.task_created(pid, nice, self.now);
                let preempt = self.scheduler.enqueue(pid, self.now, self.current);
                self.preempt_requested |= preempt;
                if let Some(parent) = self.tasks.get_mut(cur) {
                    parent.children.push(pid);
                    parent.last_outcome = OpOutcome::ThreadSpawned(pid);
                }
            }
            Effect::Wait => self.do_wait(cur),
            Effect::Exit { code } => self.do_exit(cur, code),
            Effect::Sleep { duration } => {
                self.events
                    .schedule(self.now + duration, KernelEvent::WakeSleep { task: cur });
                self.block_current(BlockReason::Sleep);
            }
            Effect::DiskRequest { bytes } => {
                let done = self.disk.completion_time(self.now, bytes);
                self.events
                    .schedule(done, KernelEvent::DiskComplete { owner: cur });
                self.block_current(BlockReason::DiskIo);
            }
            Effect::Dlopen { library } => {
                let plan = self.libs.dlopen_plan(&library);
                if let Some(task) = self.tasks.get_mut(cur) {
                    for m in plan.measurements {
                        task.measurements.measure(m);
                    }
                    for (label, cycles) in plan.user_work {
                        task.witness
                            .record_step(memo_step(&mut self.witness_steps, &label));
                        task.push_user_work(cycles);
                    }
                    task.last_outcome = OpOutcome::Completed;
                }
                if !plan.exit_work.is_empty() {
                    self.exit_work
                        .entry(cur)
                        .or_default()
                        .extend(plan.exit_work);
                }
            }
            Effect::Dlclose { library } => {
                let work = self.libs.dlclose_plan(&library);
                if let Some(task) = self.tasks.get_mut(cur) {
                    for (label, cycles) in work {
                        task.witness
                            .record_step(memo_step(&mut self.witness_steps, &label));
                        task.push_user_work(cycles);
                    }
                    task.last_outcome = OpOutcome::Completed;
                }
            }
            Effect::SetNice { nice } => {
                if let Some(task) = self.tasks.get_mut(cur) {
                    task.nice = nice;
                }
                self.scheduler.set_nice(cur, nice);
            }
            Effect::Kill { target, signal } => {
                self.deliver_signal(target, signal);
                if let Some(task) = self.tasks.get_mut(cur) {
                    task.last_outcome = OpOutcome::Completed;
                }
            }
            Effect::PtraceAttach { target } => self.ptrace_attach(cur, target),
            Effect::PtraceSetBreakpoint { target, addr } => {
                let ok = self
                    .tasks
                    .get(target)
                    .map(|t| t.traced_by == Some(cur) && t.state.is_alive())
                    .unwrap_or(false);
                if ok {
                    if let Some(t) = self.tasks.get_mut(target) {
                        t.breakpoint = Some(addr);
                    }
                }
                if let Some(task) = self.tasks.get_mut(cur) {
                    task.last_outcome = if ok {
                        OpOutcome::Completed
                    } else {
                        OpOutcome::Failed
                    };
                }
            }
            Effect::PtraceCont { target } => {
                let ok = self
                    .tasks
                    .get(target)
                    .map(|t| t.traced_by == Some(cur) && t.state == TaskState::Stopped)
                    .unwrap_or(false);
                if ok {
                    self.stopped_unreported.remove(&target);
                    if let Some(t) = self.tasks.get_mut(target) {
                        t.state = TaskState::Ready;
                    }
                    let preempt = self.scheduler.enqueue(target, self.now, self.current);
                    self.preempt_requested |= preempt;
                }
                if let Some(task) = self.tasks.get_mut(cur) {
                    task.last_outcome = if ok {
                        OpOutcome::Completed
                    } else {
                        OpOutcome::Failed
                    };
                }
            }
            Effect::PtraceDetach { target } => {
                let was_stopped = self
                    .tasks
                    .get(target)
                    .map(|t| t.state == TaskState::Stopped)
                    .unwrap_or(false);
                if let Some(t) = self.tasks.get_mut(target) {
                    t.traced_by = None;
                    t.breakpoint = None;
                    if was_stopped {
                        t.state = TaskState::Ready;
                    }
                }
                if was_stopped {
                    self.stopped_unreported.remove(&target);
                    self.scheduler.enqueue(target, self.now, self.current);
                }
                if let Some(task) = self.tasks.get_mut(cur) {
                    task.last_outcome = OpOutcome::Completed;
                }
            }
            Effect::Getrusage => {
                let tgid = self.tasks.get(cur).map(|t| t.tgid).unwrap_or(cur);
                let members: Vec<TaskId> = self
                    .tasks
                    .iter()
                    .filter(|t| t.tgid == tgid)
                    .map(|t| t.id)
                    .collect();
                let mut utime = Cycles::ZERO;
                let mut stime = Cycles::ZERO;
                for m in members {
                    let u = self.meter.usage(SchemeKind::Tick, m);
                    utime += u.utime;
                    stime += u.stime;
                }
                if let Some(task) = self.tasks.get_mut(cur) {
                    task.last_outcome = OpOutcome::Rusage { utime, stime };
                }
            }
            Effect::TrapStop => {
                // The current task hit an armed breakpoint: it stops and its
                // tracer (blocked in wait) is woken.
                self.stopped_unreported.insert(cur);
                let tracer = self.tasks.get(cur).and_then(|t| t.traced_by);
                if let Some(tracer) = tracer {
                    self.wake_waiter_with(tracer, OpOutcome::ChildStopped(cur));
                }
                self.deschedule_current(TaskState::Stopped, true);
            }
        }
    }

    fn block_current(&mut self, reason: BlockReason) {
        self.deschedule_current(TaskState::Blocked(reason), true);
    }

    fn do_wait(&mut self, cur: TaskId) {
        // 1. Any zombie child to reap?
        let zombie = self
            .tasks
            .get(cur)
            .map(|t| t.children.clone())
            .unwrap_or_default()
            .into_iter()
            .find(|c| {
                self.tasks
                    .get(*c)
                    .map(|t| t.state == TaskState::Zombie)
                    .unwrap_or(false)
            });
        if let Some(child) = zombie {
            self.reap(cur, child);
            if let Some(task) = self.tasks.get_mut(cur) {
                task.last_outcome = OpOutcome::ChildExited(child);
            }
            return;
        }
        // 2. Any stopped tracee not yet reported?
        let stopped = self.stopped_unreported.iter().copied().find(|t| {
            self.tasks
                .get(*t)
                .map(|x| x.traced_by == Some(cur))
                .unwrap_or(false)
        });
        if let Some(tracee) = stopped {
            self.stopped_unreported.remove(&tracee);
            if let Some(task) = self.tasks.get_mut(cur) {
                task.last_outcome = OpOutcome::ChildStopped(tracee);
            }
            return;
        }
        // 3. Anything to wait for at all?
        let has_children = self
            .tasks
            .get(cur)
            .map(|t| !t.children.is_empty())
            .unwrap_or(false);
        let has_tracees = self
            .tasks
            .iter()
            .any(|t| t.traced_by == Some(cur) && t.state.is_alive());
        if !has_children && !has_tracees {
            if let Some(task) = self.tasks.get_mut(cur) {
                task.last_outcome = OpOutcome::NoChildren;
            }
            return;
        }
        // 4. Block until a child exits or stops.
        self.block_current(BlockReason::WaitChild);
    }

    fn reap(&mut self, parent: TaskId, child: TaskId) {
        if let Some(t) = self.tasks.get_mut(child) {
            t.state = TaskState::Dead;
        }
        if let Some(p) = self.tasks.get_mut(parent) {
            p.children.retain(|c| *c != child);
        }
    }

    /// Wakes `waiter` (blocked in `wait()`) with the given outcome; no-op if
    /// it is not blocked in wait.
    fn wake_waiter_with(&mut self, waiter: TaskId, outcome: OpOutcome) {
        let waiting = self
            .tasks
            .get(waiter)
            .map(|t| t.state == TaskState::Blocked(BlockReason::WaitChild))
            .unwrap_or(false);
        if !waiting {
            return;
        }
        if let Some(t) = self.tasks.get_mut(waiter) {
            t.state = TaskState::Ready;
            t.last_outcome = outcome;
        }
        let preempt = self.scheduler.enqueue(waiter, self.now, self.current);
        self.preempt_requested |= preempt;
        // A stopped-child notification consumed via direct wakeup does not
        // need to be re-reported by the next wait().
        if let OpOutcome::ChildStopped(tracee) = outcome {
            self.stopped_unreported.remove(&tracee);
        }
    }

    fn deliver_signal(&mut self, target: TaskId, signal: Signal) {
        let alive = self
            .tasks
            .get(target)
            .map(|t| t.state.is_alive())
            .unwrap_or(false);
        if !alive {
            return;
        }
        self.stats.signals_delivered += 1;
        let cost = self.config.cost(self.config.costs.signal_delivery_us);
        if let Some(t) = self.tasks.get_mut(target) {
            t.push_front_micro(Micro::Kernel { remaining: cost });
        }
        if signal.kills_task() {
            self.do_exit(target, 128 + signal.number() as i32);
        } else if signal.stops_task() {
            self.stop_task(target);
        } else if signal == Signal::Cont {
            let stopped = self
                .tasks
                .get(target)
                .map(|t| t.state == TaskState::Stopped)
                .unwrap_or(false);
            if stopped {
                if let Some(t) = self.tasks.get_mut(target) {
                    t.state = TaskState::Ready;
                }
                self.stopped_unreported.remove(&target);
                let preempt = self.scheduler.enqueue(target, self.now, self.current);
                self.preempt_requested |= preempt;
            }
        }
    }

    fn stop_task(&mut self, target: TaskId) {
        if self.current == Some(target) {
            self.deschedule_current(TaskState::Stopped, true);
            return;
        }
        let Some(t) = self.tasks.get_mut(target) else {
            return;
        };
        match t.state {
            TaskState::Ready => {
                t.state = TaskState::Stopped;
                self.scheduler.dequeue(target);
            }
            TaskState::Blocked(_) => t.state = TaskState::Stopped,
            _ => {}
        }
    }

    fn ptrace_attach(&mut self, tracer: TaskId, target: TaskId) {
        let ok = self
            .tasks
            .get(target)
            .map(|t| t.state.is_alive() && t.traced_by.is_none() && target != tracer)
            .unwrap_or(false);
        if ok {
            if let Some(t) = self.tasks.get_mut(target) {
                t.traced_by = Some(tracer);
            }
            // Attach stops the target with SIGSTOP.
            self.deliver_signal(target, Signal::Stop);
            self.stopped_unreported.insert(target);
        }
        if let Some(task) = self.tasks.get_mut(tracer) {
            task.last_outcome = if ok {
                OpOutcome::Completed
            } else {
                OpOutcome::Failed
            };
        }
    }

    fn do_exit(&mut self, tid: TaskId, code: i32) {
        let was_current = self.current == Some(tid);
        if was_current {
            self.current = None;
            self.meter.on_event(&MeterEvent::SwitchOut {
                at: self.now,
                task: tid,
            });
        }
        self.meter.on_event(&MeterEvent::TaskExit {
            at: self.now,
            task: tid,
        });
        self.stats.tasks_exited += 1;
        self.scheduler.dequeue(tid);
        self.scheduler.task_removed(tid);
        self.mm.release(tid);
        self.stopped_unreported.remove(&tid);

        let (parent, children, tracees): (Option<TaskId>, Vec<TaskId>, Vec<TaskId>) = {
            let t = match self.tasks.get_mut(tid) {
                Some(t) => t,
                None => return,
            };
            t.exit_code = Some(code);
            t.state = TaskState::Zombie;
            t.program = None;
            t.micros.clear();
            let tracees = Vec::new();
            (t.parent, t.children.clone(), tracees)
        };
        // Detach any tasks this task was tracing.
        let my_tracees: Vec<TaskId> = self
            .tasks
            .iter()
            .filter(|t| t.traced_by == Some(tid))
            .map(|t| t.id)
            .collect();
        for tracee in my_tracees.into_iter().chain(tracees) {
            let was_stopped = self
                .tasks
                .get(tracee)
                .map(|t| t.state == TaskState::Stopped)
                .unwrap_or(false);
            if let Some(t) = self.tasks.get_mut(tracee) {
                t.traced_by = None;
                t.breakpoint = None;
                if was_stopped {
                    t.state = TaskState::Ready;
                }
            }
            if was_stopped {
                self.stopped_unreported.remove(&tracee);
                self.scheduler.enqueue(tracee, self.now, self.current);
            }
        }
        // Orphan the children.
        for child in children {
            if let Some(c) = self.tasks.get_mut(child) {
                c.parent = None;
            }
        }
        // Notify a tracer waiting on this task (ptrace makes the tracer an
        // effective parent).
        let tracer = self.tasks.get(tid).and_then(|t| t.traced_by);
        if let Some(tracer) = tracer {
            if let Some(t) = self.tasks.get_mut(tid) {
                t.traced_by = None;
            }
            self.wake_waiter_with(tracer, OpOutcome::ChildExited(tid));
        }
        // Notify the parent.
        match parent {
            Some(p)
                if self
                    .tasks
                    .get(p)
                    .map(|t| t.state.is_alive())
                    .unwrap_or(false) =>
            {
                let waiting = self
                    .tasks
                    .get(p)
                    .map(|t| t.state == TaskState::Blocked(BlockReason::WaitChild))
                    .unwrap_or(false);
                if waiting {
                    self.reap(p, tid);
                    self.wake_waiter_with(p, OpOutcome::ChildExited(tid));
                }
            }
            _ => {
                // No live parent: reaped by init immediately.
                if let Some(t) = self.tasks.get_mut(tid) {
                    t.state = TaskState::Dead;
                }
            }
        }
        self.trace
            .emit_with(self.now, TraceLevel::Info, "exit", || {
                format!("{tid} exited with {code}")
            });
    }

    // -----------------------------------------------------------------
    // Event handling
    // -----------------------------------------------------------------

    fn handle_event(&mut self, at: Cycles, ev: KernelEvent) {
        match ev {
            KernelEvent::TimerTick => self.handle_tick(at),
            KernelEvent::NicPacket => self.handle_nic_packet(at),
            KernelEvent::DiskComplete { owner } => self.handle_disk_complete(at, owner),
            KernelEvent::WakeSleep { task } => {
                let sleeping = self
                    .tasks
                    .get(task)
                    .map(|t| t.state == TaskState::Blocked(BlockReason::Sleep))
                    .unwrap_or(false);
                if sleeping {
                    if let Some(t) = self.tasks.get_mut(task) {
                        t.state = TaskState::Ready;
                        t.last_outcome = OpOutcome::Completed;
                    }
                    let preempt = self.scheduler.enqueue(task, self.now, self.current);
                    if preempt && self.current.is_some() {
                        self.deschedule_current(TaskState::Ready, false);
                    }
                }
            }
        }
    }

    fn handle_tick(&mut self, scheduled_at: Cycles) {
        self.stats.ticks += 1;
        let cur = self.current;
        // If the tick was due while a device-interrupt handler was running
        // (the handler advanced the clock past it), the tick interrupted
        // kernel/interrupt context and is charged as system time — exactly
        // the sampling effect the interrupt-flooding attack relies on.
        let in_irq = self
            .irq_window
            .map(|(start, end)| scheduled_at >= start && scheduled_at < end)
            .unwrap_or(false);
        let mode = if in_irq {
            Mode::Kernel
        } else {
            cur.and_then(|c| self.tasks.get(c))
                .map(|t| t.mode)
                .unwrap_or(Mode::User)
        };
        // The timer interrupt itself runs in interrupt context on top of
        // whatever was executing.
        self.meter.on_event(&MeterEvent::IrqEnter {
            at: self.now,
            irq: IrqLine::TIMER,
            current: cur,
            owner: None,
        });
        self.meter.on_event(&MeterEvent::TimerTick {
            at: self.now,
            task: cur,
            mode,
        });
        let handler = self.config.cost(self.config.costs.timer_irq_us);
        self.now += handler;
        self.meter.on_event(&MeterEvent::IrqExit {
            at: self.now,
            irq: IrqLine::TIMER,
        });

        let resched = self.scheduler.on_tick(self.now, cur);
        if resched && self.current.is_some() {
            self.deschedule_current(TaskState::Ready, false);
        }
        // Keep ticking while anything can still run.
        if self.any_alive() {
            let jiffy = self.config.jiffy();
            self.events
                .schedule(self.now + jiffy, KernelEvent::TimerTick);
        }
    }

    fn handle_nic_packet(&mut self, at: Cycles) {
        self.stats.device_interrupts += 1;
        let cur = self.current;
        self.meter.on_event(&MeterEvent::IrqEnter {
            at: self.now,
            irq: IrqLine::NIC,
            current: cur,
            owner: None,
        });
        let handler = self.config.cost(self.config.costs.nic_irq_us);
        let start = self.now.max(at);
        self.now += handler;
        self.irq_window = Some((start, self.now));
        self.meter.on_event(&MeterEvent::IrqExit {
            at: self.now,
            irq: IrqLine::NIC,
        });
        if let Some(flood) = self.nic_flood {
            if self.any_alive() {
                if let Some(next) =
                    flood.next_arrival(self.now, self.config.frequency, &mut self.nic_rng)
                {
                    self.events.schedule(next, KernelEvent::NicPacket);
                }
            }
        }
    }

    fn handle_disk_complete(&mut self, at: Cycles, owner: TaskId) {
        self.stats.device_interrupts += 1;
        let cur = self.current;
        self.meter.on_event(&MeterEvent::IrqEnter {
            at: self.now,
            irq: IrqLine::DISK,
            current: cur,
            owner: Some(owner),
        });
        let handler = self.config.cost(self.config.costs.disk_irq_us);
        let start = self.now.max(at);
        self.now += handler;
        self.irq_window = Some((start, self.now));
        self.meter.on_event(&MeterEvent::IrqExit {
            at: self.now,
            irq: IrqLine::DISK,
        });
        let blocked = self
            .tasks
            .get(owner)
            .map(|t| t.state == TaskState::Blocked(BlockReason::DiskIo))
            .unwrap_or(false);
        if blocked {
            if let Some(t) = self.tasks.get_mut(owner) {
                t.state = TaskState::Ready;
                t.last_outcome = OpOutcome::Completed;
            }
            let preempt = self.scheduler.enqueue(owner, self.now, self.current);
            if preempt && self.current.is_some() {
                self.deschedule_current(TaskState::Ready, false);
            }
        }
    }

    // -----------------------------------------------------------------
    // Results
    // -----------------------------------------------------------------

    fn collect_results(&mut self, hit_horizon: bool) -> RunResult {
        self.stats.minor_faults = self.mm.minor_faults;
        self.stats.major_faults = self.mm.major_faults;
        let mut groups: BTreeMap<TaskId, ProcessUsage> = BTreeMap::new();
        for task in self.tasks.iter() {
            let entry = groups.entry(task.tgid).or_insert_with(|| ProcessUsage {
                tgid: task.tgid,
                name: String::new(),
                threads: 0,
                by_scheme: BTreeMap::new(),
                exit_code: None,
            });
            entry.threads += 1;
            if task.id == task.tgid {
                entry.name = task.name.clone();
                entry.exit_code = task.exit_code;
            } else if entry.name.is_empty() {
                entry.name = task.name.clone();
            }
            for kind in self.meter.kinds() {
                let usage = self.meter.usage(kind, task.id);
                let slot = entry.by_scheme.entry(kind).or_default();
                *slot += usage;
            }
        }
        RunResult {
            frequency: self.config.frequency,
            finished_at: self.now,
            processes: groups.into_values().collect(),
            stats: self.stats,
            hit_horizon,
        }
    }

    /// The measurement log of a task (for source-integrity verification).
    pub fn measurement_log(&self, task: TaskId) -> Option<&trustmeter_core::MeasurementLog> {
        self.tasks.get(task).map(|t| &t.measurements)
    }

    /// The execution witness of a task (for execution-integrity
    /// verification).
    pub fn witness(&self, task: TaskId) -> Option<&trustmeter_core::ExecutionWitness> {
        self.tasks.get(task).map(|t| &t.witness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{LoopProgram, OpsProgram};
    use trustmeter_sim::Nanos;

    fn small_config() -> KernelConfig {
        KernelConfig::paper_machine().with_seed(7)
    }

    fn secs(cfg: &KernelConfig, s: f64) -> Cycles {
        cfg.frequency.cycles_for(Nanos::from_secs_f64(s))
    }

    #[test]
    fn single_compute_task_is_fully_accounted() {
        let cfg = small_config();
        let work = secs(&cfg, 0.5);
        let mut k = Kernel::new(cfg.clone());
        let pid = k.spawn_process(Box::new(OpsProgram::compute_only("job", work)), 0);
        let result = k.run();
        assert!(!result.hit_horizon);
        let p = result.process(pid).unwrap();
        // Ground truth covers the work plus launch overhead.
        assert!(p.ground_truth().total() >= work);
        // Tick accounting is within a few jiffies of the ground truth for a
        // single CPU-bound task.
        let diff = p.billed().total().as_f64() - p.ground_truth().total().as_f64();
        assert!(diff.abs() < 4.0 * cfg.jiffy().as_f64(), "diff {diff}");
        assert_eq!(p.exit_code, Some(0));
        assert!(result.stats.ticks > 0);
        assert!(result.stats.context_switches >= 1);
    }

    #[test]
    fn two_equal_tasks_share_the_cpu() {
        let cfg = small_config();
        let work = secs(&cfg, 0.3);
        let mut k = Kernel::new(cfg.clone());
        let a = k.spawn_process(Box::new(OpsProgram::compute_only("a", work)), 0);
        let b = k.spawn_process(Box::new(OpsProgram::compute_only("b", work)), 0);
        let result = k.run();
        let ga = result.process(a).unwrap().ground_truth().total().as_f64();
        let gb = result.process(b).unwrap().ground_truth().total().as_f64();
        assert!((ga - gb).abs() / ga < 0.1, "unfair split {ga} vs {gb}");
        // Elapsed time covers both (single CPU).
        assert!(result.finished_at.as_f64() >= ga + gb - cfg.jiffy().as_f64());
    }

    #[test]
    fn launch_phase_is_billed_to_the_process() {
        let cfg = small_config();
        let mut k = Kernel::new(cfg.clone());
        let pid = k.spawn_process(Box::new(OpsProgram::compute_only("tiny", Cycles(1_000))), 0);
        let result = k.run();
        let p = result.process(pid).unwrap();
        // Even a tiny program pays fork + execve + linking + constructors.
        let launch_min =
            cfg.cost(cfg.costs.fork_us).as_u64() + cfg.cost(cfg.costs.execve_us).as_u64();
        assert!(p.ground_truth().total().as_u64() > launch_min);
        // The measurement log saw the executable and the standard libraries.
        // (The kernel retains task state after the run.)
        let log = k.measurement_log(pid).unwrap();
        assert!(log
            .entries()
            .iter()
            .any(|m| m.kind == ImageKind::Executable));
        assert!(log
            .entries()
            .iter()
            .any(|m| m.kind == ImageKind::SharedLibrary));
    }

    #[test]
    fn fork_wait_round_trip() {
        let cfg = small_config();
        let child_work = secs(&cfg, 0.01);
        let mut k = Kernel::new(cfg);
        // Parent forks one child, waits for it, computes a little, exits.
        let parent = OpsProgram::new(
            "parent",
            vec![
                Op::Syscall(SyscallOp::Fork {
                    child: Box::new(OpsProgram::compute_only("child", child_work)),
                    nice: 0,
                }),
                Op::Syscall(SyscallOp::Wait),
                Op::Compute {
                    cycles: Cycles(10_000),
                },
            ],
        );
        let pid = k.spawn_process(Box::new(parent), 0);
        let result = k.run();
        assert!(!result.hit_horizon);
        assert_eq!(result.stats.tasks_created, 2);
        assert_eq!(result.stats.tasks_exited, 2);
        let child = result.processes.iter().find(|p| p.name == "child").unwrap();
        assert!(child.ground_truth().total() >= child_work);
        assert!(result.process(pid).is_some());
    }

    #[test]
    fn threads_share_a_thread_group() {
        let cfg = small_config();
        let work = secs(&cfg, 0.05);
        let mut k = Kernel::new(cfg);
        let main = OpsProgram::new(
            "threaded",
            vec![
                Op::Syscall(SyscallOp::SpawnThread {
                    thread: Box::new(OpsProgram::compute_only("threaded", work)),
                }),
                Op::Syscall(SyscallOp::SpawnThread {
                    thread: Box::new(OpsProgram::compute_only("threaded", work)),
                }),
                Op::Compute { cycles: work },
                Op::Syscall(SyscallOp::Wait),
                Op::Syscall(SyscallOp::Wait),
            ],
        );
        let pid = k.spawn_process(Box::new(main), 0);
        let result = k.run();
        let p = result.process(pid).unwrap();
        assert_eq!(p.threads, 3);
        // Group usage includes all three threads' work.
        assert!(p.ground_truth().total().as_f64() >= 3.0 * work.as_f64() * 0.99);
    }

    #[test]
    fn nanosleep_does_not_consume_cpu() {
        let cfg = small_config();
        let mut k = Kernel::new(cfg.clone());
        let prog = OpsProgram::new(
            "sleeper",
            vec![
                Op::Syscall(SyscallOp::Nanosleep {
                    duration: Nanos::from_millis(50),
                }),
                Op::Compute {
                    cycles: Cycles(1_000),
                },
            ],
        );
        let pid = k.spawn_process(Box::new(prog), 0);
        let result = k.run();
        let p = result.process(pid).unwrap();
        // Elapsed at least 50 ms, but CPU far less.
        assert!(result.finished_at >= cfg.frequency.cycles_for(Nanos::from_millis(50)));
        assert!(p.ground_truth().total().as_f64() < secs(&cfg, 0.02).as_f64());
    }

    #[test]
    fn idle_tick_coalescing_skips_jiffies_but_respects_the_horizon() {
        let cfg = small_config().with_horizon_secs(0.05);
        let mut k = Kernel::new(cfg.clone());
        // One task that sleeps far past the horizon: the kernel idles with
        // only the timer tick and the distant wake event pending.
        let prog = OpsProgram::new(
            "sleeper",
            vec![
                Op::Syscall(SyscallOp::Nanosleep {
                    duration: Nanos::from_secs(10),
                }),
                Op::Compute {
                    cycles: Cycles(1_000),
                },
            ],
        );
        k.spawn_process(Box::new(prog), 0);
        let result = k.run();
        assert!(result.hit_horizon);
        assert!(
            result.stats.ticks_coalesced > 0,
            "idle jiffies must be coalesced"
        );
        // The clock stops at (a jiffy past) the horizon instead of jumping
        // to the wake event 10 virtual seconds away.
        let horizon = cfg.horizon().as_f64();
        assert!(
            result.finished_at.as_f64() <= horizon + 2.0 * cfg.jiffy().as_f64(),
            "finished at {} vs horizon {horizon}",
            result.finished_at
        );
    }

    #[test]
    fn disk_io_blocks_and_interrupt_is_owned() {
        let cfg = small_config();
        let mut k = Kernel::new(cfg);
        let prog = OpsProgram::new(
            "reader",
            vec![
                Op::Syscall(SyscallOp::Read { bytes: 64 * 1024 }),
                Op::Compute {
                    cycles: Cycles(1_000),
                },
            ],
        );
        let pid = k.spawn_process(Box::new(prog), 0);
        let result = k.run();
        assert!(result.stats.device_interrupts >= 1);
        let p = result.process(pid).unwrap();
        assert!(p.ground_truth().total() > Cycles::ZERO);
    }

    #[test]
    fn getrusage_reports_tick_usage() {
        let cfg = small_config();
        let work = secs(&cfg, 0.1);
        let mut k = Kernel::new(cfg);
        struct CheckRusage {
            work: Cycles,
            step: u32,
            observed: Option<(Cycles, Cycles)>,
        }
        impl Program for CheckRusage {
            fn name(&self) -> &str {
                "rusage-check"
            }
            fn next_op(&mut self, ctx: &mut crate::program::ProgramCtx<'_>) -> Option<Op> {
                self.step += 1;
                match self.step {
                    1 => Some(Op::Compute { cycles: self.work }),
                    2 => Some(Op::Syscall(SyscallOp::Getrusage)),
                    3 => {
                        if let OpOutcome::Rusage { utime, stime } = ctx.last {
                            self.observed = Some((utime, stime));
                        }
                        None
                    }
                    _ => None,
                }
            }
        }
        let pid = k.spawn_process(
            Box::new(CheckRusage {
                work,
                step: 0,
                observed: None,
            }),
            0,
        );
        let result = k.run();
        // The process consumed the work plus overheads; getrusage (not
        // directly observable here) must at least not have crashed and the
        // run completed.
        assert!(result.process(pid).unwrap().billed().total() > Cycles::ZERO);
    }

    #[test]
    fn ptrace_attach_breakpoint_and_thrash_round() {
        let cfg = small_config();
        let mut k = Kernel::new(cfg);
        // Victim accesses a watched variable 50 times between computations.
        // The first computation spans a few timer ticks so the tracer gets a
        // chance to attach before the accesses start.
        let victim = OpsProgram::new(
            "victim",
            vec![
                Op::Compute {
                    cycles: Cycles(30_000_000),
                },
                Op::AccessWatched {
                    addr: 0x6000_1000,
                    count: 50,
                },
                Op::Compute {
                    cycles: Cycles(500_000),
                },
            ],
        );
        let victim_pid = k.spawn_process(Box::new(victim), 0);
        // Tracer: attach, set breakpoint, then cont in a loop.
        struct Tracer {
            target: TaskId,
            state: u32,
        }
        impl Program for Tracer {
            fn name(&self) -> &str {
                "tracer"
            }
            fn next_op(&mut self, ctx: &mut crate::program::ProgramCtx<'_>) -> Option<Op> {
                match self.state {
                    0 => {
                        self.state = 1;
                        Some(Op::Syscall(SyscallOp::PtraceAttach {
                            target: self.target,
                        }))
                    }
                    1 => {
                        self.state = 2;
                        Some(Op::Syscall(SyscallOp::Wait))
                    }
                    2 => {
                        self.state = 3;
                        Some(Op::Syscall(SyscallOp::PtraceSetBreakpoint {
                            target: self.target,
                            addr: 0x6000_1000,
                        }))
                    }
                    _ => match ctx.last {
                        OpOutcome::ChildStopped(_) | OpOutcome::Completed
                            // Alternate cont / wait until the tracee dies.
                            if self.state % 2 == 1 => {
                                self.state += 1;
                                Some(Op::Syscall(SyscallOp::PtraceCont { target: self.target }))
                            }
                        OpOutcome::Failed | OpOutcome::NoChildren | OpOutcome::ChildExited(_) => None,
                        _ => {
                            self.state += 1;
                            Some(Op::Syscall(SyscallOp::Wait))
                        }
                    },
                }
            }
        }
        k.spawn_raw(
            Box::new(Tracer {
                target: victim_pid,
                state: 0,
            }),
            0,
        );
        let result = k.run();
        assert!(!result.hit_horizon);
        assert!(
            result.stats.debug_traps >= 50,
            "traps: {}",
            result.stats.debug_traps
        );
        let victim_usage = result.process(victim_pid).unwrap();
        // Thrashing produces system time on the victim.
        assert!(victim_usage.ground_truth().stime > Cycles::ZERO);
    }

    #[test]
    fn interrupt_flood_inflates_victim_system_time_under_tick_and_tsc() {
        let cfg = small_config();
        let work = secs(&cfg, 0.2);
        // Clean run.
        let mut clean = Kernel::new(cfg.clone());
        let v1 = clean.spawn_process(Box::new(OpsProgram::compute_only("victim", work)), 0);
        let clean_result = clean.run();
        // Flooded run.
        let mut attacked = Kernel::new(cfg.clone());
        attacked.set_nic_flood(NicFlood::steady(50_000.0));
        let v2 = attacked.spawn_process(Box::new(OpsProgram::compute_only("victim", work)), 0);
        let attacked_result = attacked.run();

        let clean_billed = clean_result.process(v1).unwrap().billed();
        let attacked_billed = attacked_result.process(v2).unwrap().billed();
        assert!(
            attacked_billed.total() > clean_billed.total(),
            "flood should inflate billed time: {attacked_billed:?} vs {clean_billed:?}"
        );
        // The process-aware scheme does not bill the victim for the junk
        // interrupts.
        let pa_attacked = attacked_result
            .process(v2)
            .unwrap()
            .usage(SchemeKind::ProcessAware);
        let tsc_attacked = attacked_result.process(v2).unwrap().usage(SchemeKind::Tsc);
        assert!(pa_attacked.stime < tsc_attacked.stime);
        assert!(attacked_result.stats.device_interrupts > 100);
    }

    #[test]
    fn loop_program_runs_to_completion() {
        let cfg = small_config();
        let mut k = Kernel::new(cfg);
        let prog = LoopProgram::new("looper", 100, |_| {
            vec![Op::Compute {
                cycles: Cycles(100_000),
            }]
        });
        let pid = k.spawn_process(Box::new(prog), 0);
        let result = k.run();
        let p = result.process(pid).unwrap();
        assert!(p.ground_truth().total() >= Cycles(10_000_000));
    }

    #[test]
    fn horizon_stops_runaway_programs() {
        let cfg = small_config().with_horizon_secs(0.05);
        let mut k = Kernel::new(cfg);
        let prog = LoopProgram::new("forever", u64::MAX, |_| {
            vec![Op::Compute {
                cycles: Cycles(1_000_000),
            }]
        });
        k.spawn_process(Box::new(prog), 0);
        let result = k.run();
        assert!(result.hit_horizon);
    }

    #[test]
    fn kill_terminates_target() {
        let cfg = small_config();
        let mut k = Kernel::new(cfg.clone());
        let victim = k.spawn_process(
            Box::new(OpsProgram::compute_only("victim", secs(&cfg, 5.0))),
            0,
        );
        let killer = OpsProgram::new(
            "killer",
            vec![
                Op::Compute {
                    cycles: Cycles(1_000_000),
                },
                Op::Syscall(SyscallOp::Kill {
                    target: victim,
                    signal: Signal::Kill,
                }),
            ],
        );
        k.spawn_raw(Box::new(killer), -5);
        let result = k.run();
        assert!(!result.hit_horizon);
        let v = result.process(victim).unwrap();
        // The victim was killed long before finishing 5 s of work.
        assert!(v.ground_truth().total().as_f64() < secs(&cfg, 5.0).as_f64());
        assert_eq!(v.exit_code, Some(128 + 9));
    }

    #[test]
    fn conservation_between_tick_and_tsc_totals() {
        // Whatever the scheme, the total accounted busy time should be close:
        // ticks sample the same execution the TSC measures exactly.
        let cfg = small_config();
        let mut k = Kernel::new(cfg.clone());
        k.spawn_process(Box::new(OpsProgram::compute_only("a", secs(&cfg, 0.3))), 0);
        k.spawn_process(Box::new(OpsProgram::compute_only("b", secs(&cfg, 0.2))), -5);
        let result = k.run();
        let tick_total: f64 = result
            .processes
            .iter()
            .map(|p| p.usage(SchemeKind::Tick).total().as_f64())
            .sum();
        let tsc_total: f64 = result
            .processes
            .iter()
            .map(|p| p.usage(SchemeKind::Tsc).total().as_f64())
            .sum();
        let rel = (tick_total - tsc_total).abs() / tsc_total;
        assert!(rel < 0.05, "tick {tick_total} vs tsc {tsc_total}");
    }
}
