//! # trustmeter-workloads
//!
//! The four victim programs used in the evaluation of *"On Trustworthiness
//! of CPU Usage Metering and Accounting"* (Liu & Ding, ICDCSW 2010):
//!
//! * **O** — the authors' CPU-bound loop program,
//! * **P** — a π calculator,
//! * **W** — the Whetstone floating-point benchmark,
//! * **B** — a multi-threaded MD5 brute-force cracker.
//!
//! Each is available both as a *native reference kernel* (real Rust code,
//! tested against known vectors — see [`native`]) and as a *simulated
//! program* for the `trustmeter-kernel` substrate (see [`Workload`] and
//! [`programs`]), whose operation mix is derived from the reference kernel
//! and whose baseline CPU time is calibrated against the paper's
//! "no attack" bars.
//!
//! ```
//! use trustmeter_workloads::Workload;
//! use trustmeter_kernel::{Kernel, KernelConfig};
//!
//! let mut kernel = Kernel::new(KernelConfig::paper_machine());
//! // Run a 0.1 % scale Whetstone instance.
//! let pid = kernel.spawn_process(Workload::Whetstone.build(0.001), 0);
//! let result = kernel.run();
//! assert!(result.process(pid).unwrap().billed().total().as_u64() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod native;
pub mod programs;

pub use catalog::Workload;
pub use programs::{FixedComputeProgram, VictimProgram, VictimSpec, WorkerProgram};
