//! The metering service at fleet scale: many tenants, many jobs, one
//! audit.
//!
//! Three tenants submit a mixed batch of more than a hundred jobs to a
//! provider. One tenant's jobs run on an honest platform; the others are
//! hit by launch-time and runtime metering attacks from the paper's §IV.
//! The fleet shards the batch across worker threads (results are
//! bit-identical for any shard count), posts every run to the per-tenant
//! ledgers, streams the records through the §VI trust audit, and exports a
//! Prometheus-style metrics dump.
//!
//! ```text
//! cargo run --release --example fleet_audit
//! ```

use trustmeter::prelude::*;

fn main() {
    let scale = 0.002;
    let shards = 8;
    let mut service = FleetService::new(FleetConfig::new(shards, 0x2026));

    // Three customers with their own pricing.
    service.register(Tenant::new(
        TenantId(1),
        "honest-co",
        RateCard::per_cpu_hour(0.10),
    ));
    service.register(Tenant::new(
        TenantId(2),
        "shelled-inc",
        RateCard::per_cpu_hour(0.10),
    ));
    service.register(Tenant::new(
        TenantId(3),
        "scheduled-llc",
        RateCard::per_cpu_hour(0.12),
    ));

    // 120 jobs: tenant 1 runs clean, tenant 2 is hit by the shell attack,
    // tenant 3 by the scheduling attack — the same workload mix for all
    // three, so the ledgers are directly comparable.
    let mut jobs = Vec::new();
    for i in 0..120u64 {
        let workload = Workload::ALL[(i % 4) as usize];
        let job = match i % 3 {
            0 => JobSpec::clean(i, TenantId(1), workload, scale),
            1 => JobSpec::attacked(i, TenantId(2), workload, scale, AttackSpec::Shell),
            _ => JobSpec::attacked(
                i,
                TenantId(3),
                workload,
                scale,
                AttackSpec::Scheduling { nice: -10 },
            ),
        };
        jobs.push(job);
    }

    println!("running {} jobs across {shards} shards...\n", jobs.len());
    let report = service.process(&jobs);

    println!("=== per-tenant ledgers ===");
    for account in report.ledger.iter() {
        let tenant = service.directory().get(account.tenant).expect("registered");
        println!("  {:<14} {}", tenant.name, account);
    }

    println!("\n=== audit summaries ===");
    for summary in service.auditor().summaries() {
        println!(
            "  {}: {}/{} runs flagged, {:.2}s overbilled, kinds {:?}",
            summary.tenant,
            summary.flagged_runs,
            summary.runs,
            summary.overcharge_secs,
            summary.anomaly_counts,
        );
    }

    // A few concrete flagged runs with their verdicts.
    println!("\n=== sample flagged runs ===");
    for (record, verdict) in report.flagged().take(3) {
        println!(
            "  {} ({}, attack {:?}): {}",
            record.job.id,
            record.job.workload,
            record.job.attack.map(|a| a.label()),
            verdict.assessment,
        );
        for anomaly in &verdict.anomalies {
            println!("    - {anomaly}");
        }
    }

    println!("\n=== metrics exposition ===");
    print!("{}", service.metrics_text());

    // The honest tenant audits clean; the attacked tenants do not.
    let honest = service
        .auditor()
        .summary(TenantId(1))
        .expect("tenant 1 ran");
    assert_eq!(honest.flagged_runs, 0, "honest tenant must audit clean");
    for tenant in [TenantId(2), TenantId(3)] {
        let summary = service.auditor().summary(tenant).expect("tenant ran");
        assert_eq!(
            summary.flagged_runs, summary.runs,
            "attacked tenant must be flagged"
        );
    }
}
