//! CPU-time metering schemes.
//!
//! Three schemes consume the same [`MeterEvent`] stream:
//!
//! * [`TickAccounting`] reproduces the commodity Linux scheme the paper
//!   attacks: the only thing it ever does is add one whole jiffy to the task
//!   that happens to be current when the timer interrupt fires
//!   (`update_process_times()` behaviour). All of the paper's attacks either
//!   smuggle extra work into the victim's context (so the jiffies are
//!   "legitimately" charged) or exploit the fact that partial jiffies are
//!   mis-attributed.
//! * [`TscAccounting`] is the fine-grained scheme the paper recommends in
//!   §VI-B: exact cycle deltas are attributed at every transition. It still
//!   charges interrupt-handler time to the interrupted task, as a naive
//!   fine-grained port of the commodity scheme would.
//! * [`ProcessAwareAccounting`] additionally attributes interrupt-handler
//!   time to the task that owns the interrupt (the process that issued the
//!   I/O), or to an unattributed system bucket when nobody owns it — the
//!   "process-aware interrupt accounting" the paper cites from real-time
//!   systems research.

use crate::cputime::{CpuTime, Mode, TaskId};
use crate::events::{IrqLine, MeterEvent};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use trustmeter_sim::Cycles;

/// Identifies a metering scheme implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Commodity jiffy/tick-based accounting.
    Tick,
    /// Fine-grained TSC-based accounting.
    Tsc,
    /// Fine-grained accounting with process-aware interrupt attribution.
    ProcessAware,
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SchemeKind::Tick => "tick",
            SchemeKind::Tsc => "tsc",
            SchemeKind::ProcessAware => "process-aware",
        };
        f.write_str(s)
    }
}

/// A CPU-time metering scheme driven by a [`MeterEvent`] stream.
///
/// Implementations must tolerate events for tasks they have never seen
/// before (lazily creating accounts) and must never panic on exit events for
/// unknown tasks.
pub trait MeteringScheme {
    /// Which scheme this is.
    fn kind(&self) -> SchemeKind;

    /// Observes one event. Events arrive in non-decreasing timestamp order.
    fn on_event(&mut self, event: &MeterEvent);

    /// The usage accumulated so far for `task`.
    fn usage(&self, task: TaskId) -> CpuTime;

    /// All per-task usages accumulated so far.
    fn usages(&self) -> BTreeMap<TaskId, CpuTime>;

    /// Cycles attributed to nobody (idle CPU, or unowned interrupt handling
    /// under the process-aware scheme).
    fn unattributed(&self) -> Cycles;

    /// Sum of every task's accounted total plus the unattributed bucket.
    fn grand_total(&self) -> Cycles {
        self.usages().values().map(|u| u.total()).sum::<Cycles>() + self.unattributed()
    }
}

// ---------------------------------------------------------------------------
// Tick accounting
// ---------------------------------------------------------------------------

/// The commodity tick/jiffy accounting scheme (paper §III-A).
///
/// At every timer interrupt one full jiffy is charged to the current task,
/// as user or system time depending on the mode the tick interrupted. Tasks
/// that ran between ticks but were not current at a tick are charged
/// nothing.
///
/// # Example
///
/// ```
/// use trustmeter_core::{MeterEvent, MeteringScheme, Mode, TaskId, TickAccounting};
/// use trustmeter_sim::Cycles;
///
/// let mut acct = TickAccounting::new(Cycles(1_000));
/// acct.on_event(&MeterEvent::TimerTick { at: Cycles(1_000), task: Some(TaskId(1)), mode: Mode::User });
/// acct.on_event(&MeterEvent::TimerTick { at: Cycles(2_000), task: Some(TaskId(1)), mode: Mode::Kernel });
/// assert_eq!(acct.usage(TaskId(1)).utime, Cycles(1_000));
/// assert_eq!(acct.usage(TaskId(1)).stime, Cycles(1_000));
/// ```
#[derive(Debug, Clone)]
pub struct TickAccounting {
    jiffy: Cycles,
    accounts: Accounts,
    idle_ticks: u64,
    total_ticks: u64,
}

impl TickAccounting {
    /// Creates a tick accountant charging `jiffy` cycles per timer tick.
    ///
    /// # Panics
    /// Panics if `jiffy` is zero.
    pub fn new(jiffy: Cycles) -> TickAccounting {
        assert!(!jiffy.is_zero(), "jiffy length must be positive");
        TickAccounting {
            jiffy,
            accounts: Accounts::default(),
            idle_ticks: 0,
            total_ticks: 0,
        }
    }

    /// The jiffy length in cycles.
    pub fn jiffy(&self) -> Cycles {
        self.jiffy
    }

    /// Number of ticks that found the CPU idle.
    pub fn idle_ticks(&self) -> u64 {
        self.idle_ticks
    }

    /// Total number of timer ticks observed.
    pub fn total_ticks(&self) -> u64 {
        self.total_ticks
    }
}

impl MeteringScheme for TickAccounting {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Tick
    }

    fn on_event(&mut self, event: &MeterEvent) {
        if let MeterEvent::TimerTick { task, mode, .. } = *event {
            self.total_ticks += 1;
            match task {
                Some(t) => self.accounts.charge(t, mode, self.jiffy),
                None => self.idle_ticks += 1,
            }
        }
    }

    fn usage(&self, task: TaskId) -> CpuTime {
        self.accounts.usage(task)
    }

    fn usages(&self) -> BTreeMap<TaskId, CpuTime> {
        self.accounts.to_map()
    }

    fn unattributed(&self) -> Cycles {
        self.jiffy * self.idle_ticks
    }
}

// ---------------------------------------------------------------------------
// Dense per-task accounts
// ---------------------------------------------------------------------------

/// Per-task CPU-time accounts stored densely, indexed by the `TaskId`
/// value. The substrate allocates task ids from a small counter, so a
/// vector lookup beats a tree on the per-event hot path; [`Accounts::to_map`]
/// materializes the sorted map the reporting API exposes. A task appears in
/// that map exactly when it was ever charged (every charge is a positive
/// number of cycles), matching the old tree's insert-on-first-charge
/// behaviour bit for bit.
#[derive(Debug, Clone, Default)]
struct Accounts {
    by_id: Vec<CpuTime>,
}

impl Accounts {
    #[inline]
    fn charge(&mut self, task: TaskId, mode: Mode, cycles: Cycles) {
        let idx = task.0 as usize;
        if idx >= self.by_id.len() {
            self.by_id.resize(idx + 1, CpuTime::ZERO);
        }
        self.by_id[idx].charge(mode, cycles);
    }

    fn usage(&self, task: TaskId) -> CpuTime {
        self.by_id.get(task.0 as usize).copied().unwrap_or_default()
    }

    fn to_map(&self) -> BTreeMap<TaskId, CpuTime> {
        self.by_id
            .iter()
            .enumerate()
            .filter(|(_, time)| !time.total().is_zero())
            .map(|(id, time)| (TaskId(id as u32), *time))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Fine-grained accounting (shared core)
// ---------------------------------------------------------------------------

/// Interrupt attribution policy for the fine-grained accountant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IrqPolicy {
    /// Charge handler time to the interrupted task (classic behaviour).
    ChargeCurrent,
    /// Charge handler time to the interrupt's owner, or to the unattributed
    /// bucket when it has none (process-aware behaviour).
    ChargeOwner,
}

/// Execution context the fine-grained accountant believes the CPU is in.
#[derive(Debug, Clone)]
struct FineState {
    last_at: Cycles,
    current: Option<TaskId>,
    mode: Mode,
    exception_depth: u32,
    irq_stack: Vec<(IrqLine, Option<TaskId>)>,
}

impl FineState {
    fn new() -> FineState {
        FineState {
            last_at: Cycles::ZERO,
            current: None,
            mode: Mode::User,
            exception_depth: 0,
            irq_stack: Vec::new(),
        }
    }
}

/// Shared implementation of the two fine-grained schemes.
#[derive(Debug, Clone)]
struct FineGrained {
    policy: IrqPolicy,
    state: FineState,
    accounts: Accounts,
    unattributed: Cycles,
    idle: Cycles,
}

impl FineGrained {
    fn new(policy: IrqPolicy) -> FineGrained {
        FineGrained {
            policy,
            state: FineState::new(),
            accounts: Accounts::default(),
            unattributed: Cycles::ZERO,
            idle: Cycles::ZERO,
        }
    }

    /// Attributes the interval `[state.last_at, now)` according to the state
    /// the CPU was in during that interval.
    fn settle(&mut self, now: Cycles) {
        let delta = now.saturating_sub(self.state.last_at);
        self.state.last_at = self.state.last_at.max(now);
        if delta.is_zero() {
            return;
        }
        if let Some((_, owner)) = self.state.irq_stack.last().copied() {
            // Time inside a device interrupt handler: always system time,
            // attribution depends on policy.
            let beneficiary = match self.policy {
                IrqPolicy::ChargeCurrent => self.state.current,
                IrqPolicy::ChargeOwner => owner,
            };
            match beneficiary {
                Some(t) => self.accounts.charge(t, Mode::Kernel, delta),
                None => self.unattributed += delta,
            }
            return;
        }
        match self.state.current {
            Some(t) => {
                let mode = if self.state.exception_depth > 0 {
                    Mode::Kernel
                } else {
                    self.state.mode
                };
                self.accounts.charge(t, mode, delta);
            }
            None => self.idle += delta,
        }
    }

    fn on_event(&mut self, event: &MeterEvent) {
        let at = event.at();
        self.settle(at);
        match *event {
            MeterEvent::SwitchIn { task, mode, .. } => {
                self.state.current = Some(task);
                self.state.mode = mode;
                self.state.exception_depth = 0;
            }
            MeterEvent::SwitchOut { .. } => {
                self.state.current = None;
                self.state.exception_depth = 0;
            }
            MeterEvent::ModeChange { mode, .. } => {
                self.state.mode = mode;
            }
            MeterEvent::TimerTick { .. } => {
                // Fine-grained schemes derive nothing from the tick itself;
                // the settle() above already attributed the elapsed time.
            }
            MeterEvent::IrqEnter { irq, owner, .. } => {
                self.state.irq_stack.push((irq, owner));
            }
            MeterEvent::IrqExit { .. } => {
                self.state.irq_stack.pop();
            }
            MeterEvent::ExceptionEnter { .. } => {
                self.state.exception_depth += 1;
            }
            MeterEvent::ExceptionExit { .. } => {
                self.state.exception_depth = self.state.exception_depth.saturating_sub(1);
            }
            MeterEvent::TaskExit { task, .. } => {
                if self.state.current == Some(task) {
                    self.state.current = None;
                    self.state.exception_depth = 0;
                }
            }
        }
    }

    fn usage(&self, task: TaskId) -> CpuTime {
        self.accounts.usage(task)
    }
}

// ---------------------------------------------------------------------------
// TSC accounting
// ---------------------------------------------------------------------------

/// Fine-grained TSC-based accounting (paper §VI-B, "Fine-grained Metering").
///
/// Exact cycle deltas are attributed at every transition, eliminating the
/// partial-jiffy mis-attribution the scheduling attack exploits. Interrupt
/// handler time is still charged to the interrupted task, so the
/// interrupt-flooding attack still (mildly) succeeds against this scheme —
/// see [`ProcessAwareAccounting`] for the full fix.
///
/// # Example
///
/// ```
/// use trustmeter_core::{MeterEvent, MeteringScheme, Mode, TaskId, TscAccounting};
/// use trustmeter_sim::Cycles;
///
/// let mut acct = TscAccounting::new();
/// acct.on_event(&MeterEvent::SwitchIn { at: Cycles(0), task: TaskId(1), mode: Mode::User });
/// acct.on_event(&MeterEvent::ModeChange { at: Cycles(600), task: TaskId(1), mode: Mode::Kernel });
/// acct.on_event(&MeterEvent::SwitchOut { at: Cycles(1_000), task: TaskId(1) });
/// assert_eq!(acct.usage(TaskId(1)).utime, Cycles(600));
/// assert_eq!(acct.usage(TaskId(1)).stime, Cycles(400));
/// ```
#[derive(Debug, Clone)]
pub struct TscAccounting {
    inner: FineGrained,
}

impl TscAccounting {
    /// Creates a TSC accountant.
    pub fn new() -> TscAccounting {
        TscAccounting {
            inner: FineGrained::new(IrqPolicy::ChargeCurrent),
        }
    }

    /// Cycles during which the CPU was idle.
    pub fn idle(&self) -> Cycles {
        self.inner.idle
    }
}

impl Default for TscAccounting {
    fn default() -> Self {
        TscAccounting::new()
    }
}

impl MeteringScheme for TscAccounting {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Tsc
    }

    fn on_event(&mut self, event: &MeterEvent) {
        self.inner.on_event(event);
    }

    fn usage(&self, task: TaskId) -> CpuTime {
        self.inner.usage(task)
    }

    fn usages(&self) -> BTreeMap<TaskId, CpuTime> {
        self.inner.accounts.to_map()
    }

    fn unattributed(&self) -> Cycles {
        self.inner.unattributed + self.inner.idle
    }
}

// ---------------------------------------------------------------------------
// Process-aware accounting
// ---------------------------------------------------------------------------

/// Fine-grained accounting with process-aware interrupt attribution.
///
/// Identical to [`TscAccounting`] except that device-interrupt handler time
/// is charged to the interrupt's *owner* (the task that requested the I/O)
/// when known, and to an unattributed system bucket otherwise. A victim of
/// the interrupt-flooding attack is therefore never billed for junk packets
/// it did not ask for.
#[derive(Debug, Clone)]
pub struct ProcessAwareAccounting {
    inner: FineGrained,
}

impl ProcessAwareAccounting {
    /// Creates a process-aware accountant.
    pub fn new() -> ProcessAwareAccounting {
        ProcessAwareAccounting {
            inner: FineGrained::new(IrqPolicy::ChargeOwner),
        }
    }

    /// Cycles during which the CPU was idle.
    pub fn idle(&self) -> Cycles {
        self.inner.idle
    }

    /// Cycles spent in interrupt handlers that no task owned.
    pub fn unowned_irq_cycles(&self) -> Cycles {
        self.inner.unattributed
    }
}

impl Default for ProcessAwareAccounting {
    fn default() -> Self {
        ProcessAwareAccounting::new()
    }
}

impl MeteringScheme for ProcessAwareAccounting {
    fn kind(&self) -> SchemeKind {
        SchemeKind::ProcessAware
    }

    fn on_event(&mut self, event: &MeterEvent) {
        self.inner.on_event(event);
    }

    fn usage(&self, task: TaskId) -> CpuTime {
        self.inner.usage(task)
    }

    fn usages(&self) -> BTreeMap<TaskId, CpuTime> {
        self.inner.accounts.to_map()
    }

    fn unattributed(&self) -> Cycles {
        self.inner.unattributed + self.inner.idle
    }
}

// ---------------------------------------------------------------------------
// Meter bank
// ---------------------------------------------------------------------------

/// Runs several metering schemes side by side over one event stream.
///
/// The experiment harness uses a bank holding the commodity tick scheme and
/// the two fine-grained schemes so that a single simulated run yields all
/// three readings for comparison.
///
/// # Example
///
/// ```
/// use trustmeter_core::{MeterBank, MeterEvent, Mode, SchemeKind, TaskId};
/// use trustmeter_sim::Cycles;
///
/// let mut bank = MeterBank::standard(Cycles(1_000));
/// bank.on_event(&MeterEvent::SwitchIn { at: Cycles(0), task: TaskId(1), mode: Mode::User });
/// bank.on_event(&MeterEvent::TimerTick { at: Cycles(1_000), task: Some(TaskId(1)), mode: Mode::User });
/// bank.on_event(&MeterEvent::SwitchOut { at: Cycles(1_000), task: TaskId(1) });
/// assert_eq!(bank.usage(SchemeKind::Tick, TaskId(1)).utime, Cycles(1_000));
/// assert_eq!(bank.usage(SchemeKind::Tsc, TaskId(1)).utime, Cycles(1_000));
/// ```
pub struct MeterBank {
    schemes: Vec<Box<dyn MeteringScheme + Send>>,
    events_seen: u64,
}

impl fmt::Debug for MeterBank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MeterBank")
            .field("schemes", &self.kinds())
            .field("events_seen", &self.events_seen)
            .finish()
    }
}

impl MeterBank {
    /// Creates an empty bank.
    pub fn new() -> MeterBank {
        MeterBank {
            schemes: Vec::new(),
            events_seen: 0,
        }
    }

    /// Creates the standard three-scheme bank used throughout the
    /// experiments: tick (with the given jiffy), TSC, and process-aware.
    pub fn standard(jiffy: Cycles) -> MeterBank {
        let mut bank = MeterBank::new();
        bank.add(Box::new(TickAccounting::new(jiffy)));
        bank.add(Box::new(TscAccounting::new()));
        bank.add(Box::new(ProcessAwareAccounting::new()));
        bank
    }

    /// Adds a scheme to the bank.
    pub fn add(&mut self, scheme: Box<dyn MeteringScheme + Send>) {
        self.schemes.push(scheme);
    }

    /// Broadcasts one event to every scheme.
    pub fn on_event(&mut self, event: &MeterEvent) {
        self.events_seen += 1;
        for s in &mut self.schemes {
            s.on_event(event);
        }
    }

    /// The kinds of schemes registered, in registration order.
    pub fn kinds(&self) -> Vec<SchemeKind> {
        self.schemes.iter().map(|s| s.kind()).collect()
    }

    /// Number of events broadcast so far.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// The scheme of the given kind, if registered.
    pub fn scheme(&self, kind: SchemeKind) -> Option<&(dyn MeteringScheme + Send)> {
        self.schemes
            .iter()
            .find(|s| s.kind() == kind)
            .map(|b| b.as_ref())
    }

    /// Usage of `task` as reported by the scheme of the given kind.
    ///
    /// # Panics
    /// Panics if no scheme of that kind is registered.
    pub fn usage(&self, kind: SchemeKind, task: TaskId) -> CpuTime {
        self.scheme(kind)
            .unwrap_or_else(|| panic!("no {kind} scheme registered"))
            .usage(task)
    }

    /// All per-task usages reported by the scheme of the given kind.
    ///
    /// # Panics
    /// Panics if no scheme of that kind is registered.
    pub fn usages(&self, kind: SchemeKind) -> BTreeMap<TaskId, CpuTime> {
        self.scheme(kind)
            .unwrap_or_else(|| panic!("no {kind} scheme registered"))
            .usages()
    }
}

impl Default for MeterBank {
    fn default() -> Self {
        MeterBank::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick_ev(at: u64, task: Option<u32>, mode: Mode) -> MeterEvent {
        MeterEvent::TimerTick {
            at: Cycles(at),
            task: task.map(TaskId),
            mode,
        }
    }

    #[test]
    fn tick_charges_whole_jiffy_to_current() {
        let mut acct = TickAccounting::new(Cycles(100));
        acct.on_event(&tick_ev(100, Some(1), Mode::User));
        acct.on_event(&tick_ev(200, Some(1), Mode::Kernel));
        acct.on_event(&tick_ev(300, Some(2), Mode::User));
        acct.on_event(&tick_ev(400, None, Mode::User));
        assert_eq!(
            acct.usage(TaskId(1)),
            CpuTime::new(Cycles(100), Cycles(100))
        );
        assert_eq!(acct.usage(TaskId(2)), CpuTime::user(Cycles(100)));
        assert_eq!(acct.idle_ticks(), 1);
        assert_eq!(acct.total_ticks(), 4);
        assert_eq!(acct.unattributed(), Cycles(100));
        assert_eq!(acct.grand_total(), Cycles(400));
        assert_eq!(acct.kind(), SchemeKind::Tick);
    }

    #[test]
    fn tick_ignores_non_tick_events() {
        let mut acct = TickAccounting::new(Cycles(100));
        acct.on_event(&MeterEvent::SwitchIn {
            at: Cycles(0),
            task: TaskId(1),
            mode: Mode::User,
        });
        acct.on_event(&MeterEvent::SwitchOut {
            at: Cycles(50),
            task: TaskId(1),
        });
        assert_eq!(acct.usage(TaskId(1)), CpuTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn tick_rejects_zero_jiffy() {
        let _ = TickAccounting::new(Cycles::ZERO);
    }

    #[test]
    fn tsc_attributes_exact_intervals_by_mode() {
        let mut acct = TscAccounting::new();
        let t = TaskId(5);
        acct.on_event(&MeterEvent::SwitchIn {
            at: Cycles(0),
            task: t,
            mode: Mode::User,
        });
        acct.on_event(&MeterEvent::ModeChange {
            at: Cycles(30),
            task: t,
            mode: Mode::Kernel,
        });
        acct.on_event(&MeterEvent::ModeChange {
            at: Cycles(50),
            task: t,
            mode: Mode::User,
        });
        acct.on_event(&MeterEvent::SwitchOut {
            at: Cycles(80),
            task: t,
        });
        acct.on_event(&MeterEvent::SwitchIn {
            at: Cycles(100),
            task: t,
            mode: Mode::User,
        });
        acct.on_event(&MeterEvent::TaskExit {
            at: Cycles(130),
            task: t,
        });
        let u = acct.usage(t);
        assert_eq!(u.utime, Cycles(30 + 30 + 30));
        assert_eq!(u.stime, Cycles(20));
        // 80..100 the CPU was idle.
        assert_eq!(acct.idle(), Cycles(20));
        assert_eq!(acct.kind(), SchemeKind::Tsc);
    }

    #[test]
    fn tsc_misses_nothing_between_ticks() {
        // The scheduling-attack scenario from the lib.rs doc example, in
        // miniature: task 1 runs 60% of the jiffy, task 2 runs 40% and is
        // current at the tick.
        let jiffy = Cycles(1_000);
        let mut tick = TickAccounting::new(jiffy);
        let mut tsc = TscAccounting::new();
        let stream = [
            MeterEvent::SwitchIn {
                at: Cycles(0),
                task: TaskId(1),
                mode: Mode::User,
            },
            MeterEvent::SwitchOut {
                at: Cycles(600),
                task: TaskId(1),
            },
            MeterEvent::SwitchIn {
                at: Cycles(600),
                task: TaskId(2),
                mode: Mode::User,
            },
            MeterEvent::TimerTick {
                at: Cycles(1_000),
                task: Some(TaskId(2)),
                mode: Mode::User,
            },
        ];
        for e in &stream {
            tick.on_event(e);
            tsc.on_event(e);
        }
        assert_eq!(tick.usage(TaskId(1)), CpuTime::ZERO);
        assert_eq!(tick.usage(TaskId(2)).utime, jiffy);
        assert_eq!(tsc.usage(TaskId(1)).utime, Cycles(600));
        assert_eq!(tsc.usage(TaskId(2)).utime, Cycles(400));
    }

    #[test]
    fn irq_time_charged_to_current_by_tsc_but_owner_by_process_aware() {
        let victim = TaskId(1);
        let io_owner = TaskId(9);
        let stream = [
            MeterEvent::SwitchIn {
                at: Cycles(0),
                task: victim,
                mode: Mode::User,
            },
            MeterEvent::IrqEnter {
                at: Cycles(100),
                irq: IrqLine::NIC,
                current: Some(victim),
                owner: Some(io_owner),
            },
            MeterEvent::IrqExit {
                at: Cycles(150),
                irq: IrqLine::NIC,
            },
            MeterEvent::SwitchOut {
                at: Cycles(200),
                task: victim,
            },
        ];
        let mut tsc = TscAccounting::new();
        let mut pa = ProcessAwareAccounting::new();
        for e in &stream {
            tsc.on_event(e);
            pa.on_event(e);
        }
        // TSC: victim pays for the handler (50 cycles of stime).
        assert_eq!(tsc.usage(victim), CpuTime::new(Cycles(150), Cycles(50)));
        assert_eq!(tsc.usage(io_owner), CpuTime::ZERO);
        // Process-aware: the I/O owner pays instead.
        assert_eq!(pa.usage(victim), CpuTime::user(Cycles(150)));
        assert_eq!(pa.usage(io_owner), CpuTime::system(Cycles(50)));
        assert_eq!(pa.kind(), SchemeKind::ProcessAware);
    }

    #[test]
    fn unowned_irq_goes_to_unattributed_bucket() {
        let victim = TaskId(1);
        let stream = [
            MeterEvent::SwitchIn {
                at: Cycles(0),
                task: victim,
                mode: Mode::User,
            },
            MeterEvent::IrqEnter {
                at: Cycles(10),
                irq: IrqLine::NIC,
                current: Some(victim),
                owner: None,
            },
            MeterEvent::IrqExit {
                at: Cycles(40),
                irq: IrqLine::NIC,
            },
            MeterEvent::SwitchOut {
                at: Cycles(50),
                task: victim,
            },
        ];
        let mut pa = ProcessAwareAccounting::new();
        for e in &stream {
            pa.on_event(e);
        }
        assert_eq!(pa.usage(victim), CpuTime::user(Cycles(20)));
        assert_eq!(pa.unowned_irq_cycles(), Cycles(30));
        // grand_total covers attributed + unattributed + idle.
        assert_eq!(pa.grand_total(), Cycles(50));
    }

    #[test]
    fn exception_time_is_system_time() {
        let t = TaskId(3);
        let stream = [
            MeterEvent::SwitchIn {
                at: Cycles(0),
                task: t,
                mode: Mode::User,
            },
            MeterEvent::ExceptionEnter {
                at: Cycles(100),
                task: t,
                kind: crate::ExceptionKind::PageFault,
            },
            MeterEvent::ExceptionExit {
                at: Cycles(180),
                task: t,
            },
            MeterEvent::SwitchOut {
                at: Cycles(200),
                task: t,
            },
        ];
        let mut tsc = TscAccounting::new();
        for e in &stream {
            tsc.on_event(e);
        }
        assert_eq!(tsc.usage(t), CpuTime::new(Cycles(120), Cycles(80)));
    }

    #[test]
    fn nested_exceptions_unwind() {
        let t = TaskId(3);
        let mut tsc = TscAccounting::new();
        tsc.on_event(&MeterEvent::SwitchIn {
            at: Cycles(0),
            task: t,
            mode: Mode::User,
        });
        tsc.on_event(&MeterEvent::ExceptionEnter {
            at: Cycles(10),
            task: t,
            kind: crate::ExceptionKind::PageFault,
        });
        tsc.on_event(&MeterEvent::ExceptionEnter {
            at: Cycles(20),
            task: t,
            kind: crate::ExceptionKind::PageFault,
        });
        tsc.on_event(&MeterEvent::ExceptionExit {
            at: Cycles(30),
            task: t,
        });
        tsc.on_event(&MeterEvent::ExceptionExit {
            at: Cycles(40),
            task: t,
        });
        tsc.on_event(&MeterEvent::SwitchOut {
            at: Cycles(50),
            task: t,
        });
        let u = tsc.usage(t);
        assert_eq!(u.stime, Cycles(30));
        assert_eq!(u.utime, Cycles(20));
    }

    #[test]
    fn bank_broadcasts_to_all_schemes() {
        let mut bank = MeterBank::standard(Cycles(500));
        assert_eq!(
            bank.kinds(),
            vec![SchemeKind::Tick, SchemeKind::Tsc, SchemeKind::ProcessAware]
        );
        bank.on_event(&MeterEvent::SwitchIn {
            at: Cycles(0),
            task: TaskId(1),
            mode: Mode::User,
        });
        bank.on_event(&MeterEvent::TimerTick {
            at: Cycles(500),
            task: Some(TaskId(1)),
            mode: Mode::User,
        });
        bank.on_event(&MeterEvent::SwitchOut {
            at: Cycles(500),
            task: TaskId(1),
        });
        assert_eq!(bank.events_seen(), 3);
        assert_eq!(bank.usage(SchemeKind::Tick, TaskId(1)).utime, Cycles(500));
        assert_eq!(bank.usage(SchemeKind::Tsc, TaskId(1)).utime, Cycles(500));
        assert_eq!(
            bank.usage(SchemeKind::ProcessAware, TaskId(1)).utime,
            Cycles(500)
        );
        assert_eq!(bank.usages(SchemeKind::Tsc).len(), 1);
        assert!(format!("{bank:?}").contains("events_seen"));
    }

    #[test]
    #[should_panic(expected = "no tick scheme registered")]
    fn bank_panics_on_missing_scheme() {
        let bank = MeterBank::new();
        let _ = bank.usage(SchemeKind::Tick, TaskId(1));
    }

    #[test]
    fn out_of_order_event_saturates_instead_of_panicking() {
        let mut tsc = TscAccounting::new();
        tsc.on_event(&MeterEvent::SwitchIn {
            at: Cycles(100),
            task: TaskId(1),
            mode: Mode::User,
        });
        // An event "in the past" contributes zero, never a negative interval.
        tsc.on_event(&MeterEvent::SwitchOut {
            at: Cycles(50),
            task: TaskId(1),
        });
        assert_eq!(tsc.usage(TaskId(1)), CpuTime::ZERO);
    }
}
