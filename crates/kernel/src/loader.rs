//! The dynamic loader: shared libraries, `LD_PRELOAD`, constructors and
//! symbol interposition.
//!
//! Program launch on Linux maps the dynamic linker, which maps the needed
//! shared libraries and runs their constructor routines *in the context of
//! the new process*, before `main()` is ever reached (paper §III-C). The
//! shared-library attacks of §IV-A2 exploit exactly this: a library named in
//! `LD_PRELOAD` gets its constructor executed (Fig. 5) and its exported
//! symbols interpose the genuine ones, adding attacker-controlled work to
//! every call (Fig. 6) — all billed to the victim's user time.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use trustmeter_core::{ImageKind, MeasuredImage};
use trustmeter_sim::Cycles;

/// A shared library known to the platform.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedLibrary {
    /// Library name (e.g. `"libc.so.6"`).
    pub name: String,
    /// Exported symbols and their per-call cost in cycles.
    pub symbols: BTreeMap<String, Cycles>,
    /// Constructor cost (runs at load, in the loading process's context).
    pub constructor_cycles: Cycles,
    /// Destructor cost (runs at unload / process exit).
    pub destructor_cycles: Cycles,
    /// Whether this library ships with the platform (`true`) or was
    /// injected by the operator (`false`) — used only for reporting; the
    /// integrity verifier works from the customer's whitelist, not from
    /// this flag.
    pub genuine: bool,
}

impl SharedLibrary {
    /// Creates a library with no symbols and zero-cost constructor.
    pub fn new(name: impl Into<String>) -> SharedLibrary {
        SharedLibrary {
            name: name.into(),
            symbols: BTreeMap::new(),
            constructor_cycles: Cycles::ZERO,
            destructor_cycles: Cycles::ZERO,
            genuine: true,
        }
    }

    /// Adds an exported symbol with its per-call cost.
    pub fn with_symbol(mut self, symbol: impl Into<String>, cost: Cycles) -> SharedLibrary {
        self.symbols.insert(symbol.into(), cost);
        self
    }

    /// Sets the constructor cost.
    pub fn with_constructor(mut self, cycles: Cycles) -> SharedLibrary {
        self.constructor_cycles = cycles;
        self
    }

    /// Sets the destructor cost.
    pub fn with_destructor(mut self, cycles: Cycles) -> SharedLibrary {
        self.destructor_cycles = cycles;
        self
    }

    /// Marks the library as operator-injected (not part of the platform).
    pub fn injected(mut self) -> SharedLibrary {
        self.genuine = false;
        self
    }
}

/// The outcome of loading a process image: work to perform in the new
/// process's context and measurements for its log.
#[derive(Debug, Clone, Default)]
pub struct LoadPlan {
    /// User-mode work (dynamic linking is accounted as the linker running
    /// in the process, constructors as library code), in execution order
    /// with a label for the witness/trace.
    pub user_work: Vec<(String, Cycles)>,
    /// Destructor work to run at exit, in order.
    pub exit_work: Vec<(String, Cycles)>,
    /// Images to append to the measurement log, in measurement order.
    pub measurements: Vec<MeasuredImage>,
}

/// The platform's library registry plus the per-launch environment.
///
/// # Example
///
/// ```
/// use trustmeter_kernel::loader::{LibraryRegistry, SharedLibrary};
/// use trustmeter_sim::Cycles;
///
/// let mut reg = LibraryRegistry::with_standard_libraries(Cycles(1_000));
/// reg.install(
///     SharedLibrary::new("attack.so")
///         .with_symbol("malloc", Cycles(50_000))
///         .injected(),
/// );
/// // Preloading the attack library interposes malloc.
/// let (cost, provider) = reg.resolve("malloc", &["attack.so".to_string()]);
/// assert_eq!(provider, "attack.so");
/// assert!(cost > reg.resolve("malloc", &[]).0);
/// ```
#[derive(Debug, Clone)]
pub struct LibraryRegistry {
    libraries: BTreeMap<String, SharedLibrary>,
    /// Libraries every program links against at startup, in load order.
    startup_libraries: Vec<String>,
    /// Cost of the dynamic linker per library (set from the kernel config).
    linker_cost_per_library: Cycles,
}

impl LibraryRegistry {
    /// Creates a registry with the standard platform libraries (`ld-linux`,
    /// `libc`, `libm`) whose common symbols (`malloc`, `free`, `sqrt`,
    /// `memcpy`) have small baseline costs.
    pub fn with_standard_libraries(linker_cost_per_library: Cycles) -> LibraryRegistry {
        let mut reg = LibraryRegistry {
            libraries: BTreeMap::new(),
            startup_libraries: vec!["libc.so.6".to_string(), "libm.so.6".to_string()],
            linker_cost_per_library,
        };
        reg.install(
            SharedLibrary::new("libc.so.6")
                .with_symbol("malloc", Cycles(300))
                .with_symbol("free", Cycles(200))
                .with_symbol("memcpy", Cycles(150))
                .with_constructor(Cycles(20_000)),
        );
        reg.install(
            SharedLibrary::new("libm.so.6")
                .with_symbol("sqrt", Cycles(40))
                .with_symbol("sin", Cycles(60))
                .with_symbol("cos", Cycles(60))
                .with_constructor(Cycles(5_000)),
        );
        reg
    }

    /// Installs (or replaces) a library in the registry.
    pub fn install(&mut self, library: SharedLibrary) {
        self.libraries.insert(library.name.clone(), library);
    }

    /// Looks up a library by name.
    pub fn library(&self, name: &str) -> Option<&SharedLibrary> {
        self.libraries.get(name)
    }

    /// The libraries every program loads at startup.
    pub fn startup_libraries(&self) -> &[String] {
        &self.startup_libraries
    }

    /// Resolves a symbol through the preload list first (interposition),
    /// then the startup libraries. Returns the per-call cost and the name of
    /// the providing library. An interposed symbol *adds* the genuine
    /// symbol's cost, modelling a wrapper that does its extra work and then
    /// calls the real function (the paper's fake `malloc`).
    pub fn resolve(&self, symbol: &str, ld_preload: &[String]) -> (Cycles, String) {
        for lib_name in ld_preload {
            if let Some(lib) = self.libraries.get(lib_name) {
                if let Some(&cost) = lib.symbols.get(symbol) {
                    let genuine = self.resolve_genuine(symbol).unwrap_or(Cycles::ZERO);
                    return (cost + genuine, lib.name.clone());
                }
            }
        }
        match self.resolve_genuine_with_provider(symbol) {
            Some((cost, provider)) => (cost, provider),
            None => (Cycles(100), "unresolved".to_string()),
        }
    }

    fn resolve_genuine(&self, symbol: &str) -> Option<Cycles> {
        self.resolve_genuine_with_provider(symbol).map(|(c, _)| c)
    }

    fn resolve_genuine_with_provider(&self, symbol: &str) -> Option<(Cycles, String)> {
        for lib_name in &self.startup_libraries {
            if let Some(lib) = self.libraries.get(lib_name) {
                if let Some(&cost) = lib.symbols.get(symbol) {
                    return Some((cost, lib.name.clone()));
                }
            }
        }
        None
    }

    /// Builds the load plan for launching `executable` with the given
    /// preload list: linker work, constructors (preloads first, as the real
    /// loader runs them first), exit-time destructors and the measurement
    /// entries for the whole closure.
    pub fn load_plan(&self, executable: &str, ld_preload: &[String]) -> LoadPlan {
        let mut plan = LoadPlan::default();
        plan.measurements
            .push(MeasuredImage::new(executable, ImageKind::Executable));
        plan.measurements
            .push(MeasuredImage::new("ld-linux.so.2", ImageKind::Linker));

        let mut all_libs: Vec<&str> = Vec::new();
        all_libs.extend(ld_preload.iter().map(|s| s.as_str()));
        all_libs.extend(self.startup_libraries.iter().map(|s| s.as_str()));

        for lib_name in all_libs {
            let Some(lib) = self.libraries.get(lib_name) else {
                continue;
            };
            plan.user_work.push((
                format!("dynlink:{}", lib.name),
                self.linker_cost_per_library,
            ));
            plan.measurements
                .push(MeasuredImage::new(&lib.name, ImageKind::SharedLibrary));
            if !lib.constructor_cycles.is_zero() {
                plan.user_work
                    .push((format!("ctor:{}", lib.name), lib.constructor_cycles));
                plan.measurements.push(MeasuredImage::new(
                    format!("ctor:{}", lib.name),
                    ImageKind::Constructor,
                ));
            }
            if !lib.destructor_cycles.is_zero() {
                plan.exit_work
                    .push((format!("dtor:{}", lib.name), lib.destructor_cycles));
            }
        }
        plan
    }

    /// Builds the load plan for a runtime `dlopen` of one library.
    pub fn dlopen_plan(&self, library: &str) -> LoadPlan {
        let mut plan = LoadPlan::default();
        let Some(lib) = self.libraries.get(library) else {
            return plan;
        };
        plan.user_work.push((
            format!("dynlink:{}", lib.name),
            self.linker_cost_per_library,
        ));
        plan.measurements
            .push(MeasuredImage::new(&lib.name, ImageKind::SharedLibrary));
        if !lib.constructor_cycles.is_zero() {
            plan.user_work
                .push((format!("ctor:{}", lib.name), lib.constructor_cycles));
            plan.measurements.push(MeasuredImage::new(
                format!("ctor:{}", lib.name),
                ImageKind::Constructor,
            ));
        }
        if !lib.destructor_cycles.is_zero() {
            plan.exit_work
                .push((format!("dtor:{}", lib.name), lib.destructor_cycles));
        }
        plan
    }

    /// The destructor work for `dlclose` of one library.
    pub fn dlclose_plan(&self, library: &str) -> Vec<(String, Cycles)> {
        match self.libraries.get(library) {
            Some(lib) if !lib.destructor_cycles.is_zero() => {
                vec![(format!("dtor:{}", lib.name), lib.destructor_cycles)]
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> LibraryRegistry {
        LibraryRegistry::with_standard_libraries(Cycles(1_000))
    }

    #[test]
    fn standard_symbols_resolve() {
        let reg = registry();
        let (cost, provider) = reg.resolve("malloc", &[]);
        assert_eq!(provider, "libc.so.6");
        assert_eq!(cost, Cycles(300));
        let (sqrt_cost, sqrt_provider) = reg.resolve("sqrt", &[]);
        assert_eq!(sqrt_provider, "libm.so.6");
        assert_eq!(sqrt_cost, Cycles(40));
    }

    #[test]
    fn unresolved_symbol_gets_fallback() {
        let reg = registry();
        let (cost, provider) = reg.resolve("no_such_symbol", &[]);
        assert_eq!(provider, "unresolved");
        assert!(cost > Cycles::ZERO);
    }

    #[test]
    fn preload_interposes_and_adds_genuine_cost() {
        let mut reg = registry();
        reg.install(
            SharedLibrary::new("evil.so")
                .with_symbol("malloc", Cycles(10_000))
                .injected(),
        );
        let (cost, provider) = reg.resolve("malloc", &["evil.so".to_string()]);
        assert_eq!(provider, "evil.so");
        assert_eq!(cost, Cycles(10_300)); // wrapper + genuine malloc
                                          // Symbols the preload does not export fall through to the genuine one.
        let (free_cost, free_provider) = reg.resolve("free", &["evil.so".to_string()]);
        assert_eq!(free_provider, "libc.so.6");
        assert_eq!(free_cost, Cycles(200));
    }

    #[test]
    fn load_plan_includes_constructors_and_measurements() {
        let reg = registry();
        let plan = reg.load_plan("victim", &[]);
        // linker work for libc + libm, plus their constructors.
        assert_eq!(plan.user_work.len(), 4);
        // executable + linker + 2 libraries + 2 constructors measured.
        assert_eq!(plan.measurements.len(), 6);
        assert!(plan
            .measurements
            .iter()
            .any(|m| m.kind == ImageKind::Executable));
        assert!(plan
            .measurements
            .iter()
            .any(|m| m.kind == ImageKind::Linker));
        assert!(plan.exit_work.is_empty());
    }

    #[test]
    fn preloaded_constructor_runs_first() {
        let mut reg = registry();
        reg.install(
            SharedLibrary::new("attack_preload.so")
                .with_constructor(Cycles(1_000_000))
                .with_destructor(Cycles(500))
                .injected(),
        );
        let plan = reg.load_plan("victim", &["attack_preload.so".to_string()]);
        let first_ctor = plan
            .user_work
            .iter()
            .find(|(label, _)| label.starts_with("ctor:"))
            .expect("some constructor");
        assert_eq!(first_ctor.0, "ctor:attack_preload.so");
        assert_eq!(plan.exit_work.len(), 1);
        assert!(plan
            .measurements
            .iter()
            .any(|m| m.name == "attack_preload.so" && m.kind == ImageKind::SharedLibrary));
    }

    #[test]
    fn dlopen_and_dlclose_plans() {
        let mut reg = registry();
        reg.install(
            SharedLibrary::new("plugin.so")
                .with_constructor(Cycles(400))
                .with_destructor(Cycles(300)),
        );
        let plan = reg.dlopen_plan("plugin.so");
        assert_eq!(plan.user_work.len(), 2); // link + ctor
        assert_eq!(plan.exit_work.len(), 1);
        assert_eq!(reg.dlclose_plan("plugin.so").len(), 1);
        assert!(reg.dlopen_plan("missing.so").user_work.is_empty());
        assert!(reg.dlclose_plan("missing.so").is_empty());
    }

    #[test]
    fn library_accessors() {
        let reg = registry();
        assert!(reg.library("libc.so.6").is_some());
        assert!(reg.library("nope").is_none());
        assert_eq!(reg.startup_libraries().len(), 2);
    }
}
