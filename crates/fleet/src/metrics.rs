//! A small metrics registry with Prometheus-style text exposition.
//!
//! Modeled on the rezolus/metriken idiom of a flat metric namespace with
//! `metadata` labels (e.g. one `cpu_usage` metric split by a `state` label)
//! rather than a metric name per series. The registry is deterministic:
//! series render sorted by name then label set, so two runs over the same
//! records produce byte-identical dumps.
//!
//! ```
//! use trustmeter_fleet::metrics::MetricsRegistry;
//!
//! let mut registry = MetricsRegistry::new();
//! registry.counter_add("cpu_usage", "CPU time spent busy", &[("state", "user")], 1.5);
//! registry.counter_add("cpu_usage", "CPU time spent busy", &[("state", "user")], 0.5);
//! let text = registry.render();
//! assert!(text.contains("# TYPE cpu_usage counter"));
//! assert!(text.contains("cpu_usage{state=\"user\"} 2"));
//! ```

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Counter or gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotonically accumulating value.
    Counter,
    /// Point-in-time value, overwritten by `gauge_set`.
    Gauge,
}

impl MetricKind {
    fn exposition_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Family {
    help: String,
    kind: MetricKind,
    // label-set rendering -> value; BTreeMap keeps exposition deterministic.
    series: BTreeMap<String, f64>,
}

/// A deterministic metrics registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    families: BTreeMap<String, Family>,
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash first, then quote and newline.
fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort();
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn series_mut(
        &mut self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
    ) -> &mut f64 {
        let family = self
            .families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                help: help.to_string(),
                kind,
                series: BTreeMap::new(),
            });
        assert!(
            family.kind == kind,
            "metric `{name}` registered as {:?}, used as {kind:?}",
            family.kind
        );
        family.series.entry(render_labels(labels)).or_insert(0.0)
    }

    /// Adds `delta` to a counter series, creating it at zero on first use.
    /// The `help` text from the first registration of `name` wins.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a gauge, or if `delta` is
    /// negative (counters are monotonic).
    pub fn counter_add(&mut self, name: &str, help: &str, labels: &[(&str, &str)], delta: f64) {
        assert!(
            delta >= 0.0,
            "counter `{name}` cannot decrease (delta {delta})"
        );
        *self.series_mut(name, help, MetricKind::Counter, labels) += delta;
    }

    /// Sets a gauge series to `value`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a counter.
    pub fn gauge_set(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        *self.series_mut(name, help, MetricKind::Gauge, labels) = value;
    }

    /// Reads one series back (`None` if it was never touched).
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.families
            .get(name)?
            .series
            .get(&render_labels(labels))
            .copied()
    }

    /// Number of registered series across all families.
    pub fn series_count(&self) -> usize {
        self.families.values().map(|f| f.series.len()).sum()
    }

    /// A copy of the registry without the named families. Journal
    /// checkpoints use this to exclude process-local and live-pipeline
    /// series from the durable snapshot — they describe the process that
    /// wrote the checkpoint, not the metered workload.
    pub fn without_families(&self, families: &[&str]) -> MetricsRegistry {
        MetricsRegistry {
            families: self
                .families
                .iter()
                .filter(|(name, _)| !families.contains(&name.as_str()))
                .map(|(name, family)| (name.clone(), family.clone()))
                .collect(),
        }
    }

    /// Renders the whole registry in the Prometheus text exposition format,
    /// families and series in sorted order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, family) in &self.families {
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.exposition_type());
            for (labels, value) in &family.series {
                let _ = writeln!(out, "{name}{labels} {value}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render_sorted() {
        let mut registry = MetricsRegistry::new();
        registry.counter_add("jobs_total", "Jobs executed", &[("tenant", "t2")], 1.0);
        registry.counter_add("jobs_total", "Jobs executed", &[("tenant", "t1")], 2.0);
        registry.counter_add("jobs_total", "Jobs executed", &[("tenant", "t1")], 3.0);
        assert_eq!(registry.get("jobs_total", &[("tenant", "t1")]), Some(5.0));
        let text = registry.render();
        let t1 = text.find("tenant=\"t1\"").unwrap();
        let t2 = text.find("tenant=\"t2\"").unwrap();
        assert!(t1 < t2, "series must render in sorted label order");
        assert!(text.contains("# TYPE jobs_total counter"));
    }

    #[test]
    fn gauges_overwrite() {
        let mut registry = MetricsRegistry::new();
        registry.gauge_set("tenants", "Active tenants", &[], 3.0);
        registry.gauge_set("tenants", "Active tenants", &[], 5.0);
        assert_eq!(registry.get("tenants", &[]), Some(5.0));
        assert!(registry.render().contains("tenants 5"));
    }

    #[test]
    fn label_order_is_canonical() {
        let mut registry = MetricsRegistry::new();
        registry.counter_add("m", "h", &[("b", "2"), ("a", "1")], 1.0);
        registry.counter_add("m", "h", &[("a", "1"), ("b", "2")], 1.0);
        assert_eq!(registry.get("m", &[("b", "2"), ("a", "1")]), Some(2.0));
        assert_eq!(registry.series_count(), 1);
        assert!(registry.render().contains("m{a=\"1\",b=\"2\"} 2"));
    }

    #[test]
    fn label_values_escape_backslash_quote_newline() {
        let mut registry = MetricsRegistry::new();
        registry.counter_add("m", "h", &[("path", "C:\\x\"y\nz")], 1.0);
        let text = registry.render();
        assert!(text.contains("path=\"C:\\\\x\\\"y\\nz\""), "got: {text}");
    }

    #[test]
    #[should_panic(expected = "cannot decrease")]
    fn negative_counter_delta_rejected() {
        MetricsRegistry::new().counter_add("m", "h", &[], -1.0);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflict_rejected() {
        let mut registry = MetricsRegistry::new();
        registry.counter_add("m", "h", &[], 1.0);
        registry.gauge_set("m", "h", &[], 1.0);
    }
}
