//! A small metrics registry with Prometheus-style text exposition.
//!
//! Modeled on the rezolus/metriken idiom of a flat metric namespace with
//! `metadata` labels (e.g. one `cpu_usage` metric split by a `state` label)
//! rather than a metric name per series. The registry is deterministic:
//! series render sorted by name then label set, so two runs over the same
//! records produce byte-identical dumps.
//!
//! Three metric kinds: monotonic counters, point-in-time gauges, and
//! log-bucketed [`MetricKind::Histogram`]s rendered in the Prometheus
//! `_bucket`/`_sum`/`_count` exposition with quantile query helpers
//! ([`MetricsRegistry::histogram_quantile`]) — the fleet's per-stage
//! latency distributions ride on these.
//!
//! ```
//! use trustmeter_fleet::metrics::MetricsRegistry;
//!
//! let mut registry = MetricsRegistry::new();
//! registry.counter_add("cpu_usage", "CPU time spent busy", &[("state", "user")], 1.5);
//! registry.counter_add("cpu_usage", "CPU time spent busy", &[("state", "user")], 0.5);
//! let text = registry.render();
//! assert!(text.contains("# TYPE cpu_usage counter"));
//! assert!(text.contains("cpu_usage{state=\"user\"} 2"));
//! ```

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Log-spaced (1–2–5 per decade) latency bucket upper bounds in seconds,
/// from 1 µs to 10 s. The implicit `+Inf` overflow bucket catches
/// anything slower. Shared by every `fleet_stage_seconds*` histogram so
/// per-stage and per-tenant distributions are directly comparable.
pub const LATENCY_BUCKETS: [f64; 22] = [
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1,
    0.2, 0.5, 1.0, 2.0, 5.0, 10.0,
];

/// Counter, gauge or histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotonically accumulating value.
    Counter,
    /// Point-in-time value, overwritten by `gauge_set`.
    Gauge,
    /// Log-bucketed distribution, rendered as cumulative
    /// `_bucket{le=...}` series plus `_sum` and `_count`.
    Histogram,
}

impl MetricKind {
    fn exposition_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One series' stored value: a scalar for counters/gauges, bucket counts
/// plus sum/count for histograms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum SeriesValue {
    Scalar(f64),
    Histogram(HistogramCell),
}

/// The accumulator behind one histogram series. `counts` is
/// *non-cumulative* per bucket with one trailing overflow (`+Inf`) slot;
/// rendering accumulates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct HistogramCell {
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl HistogramCell {
    fn zeroed(buckets: usize) -> HistogramCell {
        HistogramCell {
            counts: vec![0; buckets + 1],
            sum: 0.0,
            count: 0,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Family {
    help: String,
    kind: MetricKind,
    /// Histogram bucket upper bounds, ascending (empty for scalar kinds).
    /// The `+Inf` overflow bucket is implicit.
    bounds: Vec<f64>,
    // label-set rendering -> value; BTreeMap keeps exposition deterministic.
    series: BTreeMap<String, SeriesValue>,
}

/// A handle to one pre-registered atomic counter cell — the metriken-style
/// fast path: resolve the (name, label set) pair to a dense index once with
/// [`MetricsRegistry::counter_cell`], then accumulate through
/// [`MetricsRegistry::cell_add`] with a shared reference and no string
/// rendering, map lookups or registry locking on the hot path.
///
/// A handle is only meaningful on the registry that issued it and becomes
/// stale when the registry is replaced wholesale (e.g. a checkpoint
/// restore) — re-resolve through `counter_cell` after such a swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterCell(usize);

/// The atomic fast-path store behind [`CounterCell`] handles. Cells hold
/// `f64` bit patterns in relaxed `AtomicU64`s; once a series has a cell,
/// the cell is its sole accumulator and every read path overlays the cell
/// value back over the registry's stored series.
#[derive(Debug, Default)]
struct CellBank {
    cells: Vec<AtomicU64>,
    /// family name -> rendered label set -> cell slot.
    index: BTreeMap<String, BTreeMap<String, usize>>,
}

impl CellBank {
    fn slot(&self, name: &str, key: &str) -> Option<usize> {
        self.index.get(name)?.get(key).copied()
    }

    fn load(&self, slot: usize) -> f64 {
        f64::from_bits(self.cells[slot].load(Ordering::Relaxed))
    }

    fn add(&self, slot: usize, delta: f64) {
        let cell = &self.cells[slot];
        let mut current = cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }
}

/// A deterministic metrics registry.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: BTreeMap<String, Family>,
    /// Atomic counter cells overlaying `families` (see [`CounterCell`]).
    bank: CellBank,
}

/// Snapshot/equality/serde all reconcile through [`MetricsRegistry::
/// materialized`], so a registry with live cells is indistinguishable from
/// one that accumulated the same values through the locked path — clones
/// and deserialized copies simply start with an empty bank.
impl Clone for MetricsRegistry {
    fn clone(&self) -> MetricsRegistry {
        MetricsRegistry {
            families: self.materialized(),
            bank: CellBank::default(),
        }
    }
}

impl PartialEq for MetricsRegistry {
    fn eq(&self, other: &MetricsRegistry) -> bool {
        self.materialized() == other.materialized()
    }
}

/// The derived serialization shape of the pre-cell registry (a struct with
/// one `families` field) — kept byte-compatible so journal checkpoints
/// written before the fast path replay unchanged.
#[derive(Serialize, Deserialize)]
struct RegistrySnapshot {
    families: BTreeMap<String, Family>,
}

impl Serialize for MetricsRegistry {
    fn to_value(&self) -> serde::Value {
        RegistrySnapshot {
            families: self.materialized(),
        }
        .to_value()
    }

    fn write_json(&self, out: &mut String) {
        RegistrySnapshot {
            families: self.materialized(),
        }
        .write_json(out);
    }
}

impl Deserialize for MetricsRegistry {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let snapshot = RegistrySnapshot::from_value(v)?;
        Ok(MetricsRegistry {
            families: snapshot.families,
            bank: CellBank::default(),
        })
    }
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash first, then quote and newline.
fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort();
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Splices `le="<bound>"` into an already-rendered label set (appended
/// after the sorted user labels, the conventional place for `le`).
fn labels_with_le(labels: &str, bound: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{bound}\"}}")
    } else {
        format!("{},le=\"{bound}\"}}", &labels[..labels.len() - 1])
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn family_mut(
        &mut self,
        name: &str,
        help: &str,
        kind: MetricKind,
        bounds: &[f64],
    ) -> &mut Family {
        let family = self
            .families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                help: help.to_string(),
                kind,
                bounds: bounds.to_vec(),
                series: BTreeMap::new(),
            });
        assert!(
            family.kind == kind,
            "metric `{name}` registered as {:?}, used as {kind:?}",
            family.kind
        );
        family
    }

    fn scalar_mut(&mut self, name: &str, help: &str, kind: MetricKind, key: String) -> &mut f64 {
        let family = self.family_mut(name, help, kind, &[]);
        match family.series.entry(key).or_insert(SeriesValue::Scalar(0.0)) {
            SeriesValue::Scalar(value) => value,
            SeriesValue::Histogram(_) => unreachable!("scalar family holds scalar series"),
        }
    }

    /// Resolves (registering if needed) a counter series to an atomic
    /// [`CounterCell`] handle. The cell takes over the series' current
    /// value and becomes its sole accumulator: subsequent
    /// [`MetricsRegistry::cell_add`] *and* [`MetricsRegistry::counter_add`]
    /// calls land in the cell, and every read path (get, render, clone,
    /// serialization, equality) overlays the cell value back — so the
    /// exposition is bit-identical to having accumulated the same deltas
    /// through the locked path, in the same order.
    ///
    /// # Panics
    /// Panics if `name` is already registered as another kind.
    pub fn counter_cell(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> CounterCell {
        let key = render_labels(labels);
        if let Some(slot) = self.bank.slot(name, &key) {
            return CounterCell(slot);
        }
        let value = *self.scalar_mut(name, help, MetricKind::Counter, key.clone());
        let slot = self.bank.cells.len();
        self.bank.cells.push(AtomicU64::new(value.to_bits()));
        self.bank
            .index
            .entry(name.to_string())
            .or_default()
            .insert(key, slot);
        CounterCell(slot)
    }

    /// Adds `delta` to a pre-registered counter cell: one relaxed
    /// compare-exchange loop on a dense slot, shared-reference access, no
    /// rendering or lookups. The hot path of
    /// [`MetricsRegistry::counter_add`] for series that post per job.
    ///
    /// # Panics
    /// Panics if `delta` is negative (counters are monotonic) or `cell`
    /// was issued by another registry (index out of bounds).
    pub fn cell_add(&self, cell: CounterCell, delta: f64) {
        assert!(delta >= 0.0, "counter cell cannot decrease (delta {delta})");
        self.bank.add(cell.0, delta);
    }

    /// Reads a counter cell's current value.
    pub fn cell_get(&self, cell: CounterCell) -> f64 {
        self.bank.load(cell.0)
    }

    /// Adds `delta` to a counter series, creating it at zero on first use.
    /// The `help` text from the first registration of `name` wins. Series
    /// resolved to a [`CounterCell`] route to their cell.
    ///
    /// # Panics
    /// Panics if `name` is already registered as another kind, or if
    /// `delta` is negative (counters are monotonic).
    pub fn counter_add(&mut self, name: &str, help: &str, labels: &[(&str, &str)], delta: f64) {
        assert!(
            delta >= 0.0,
            "counter `{name}` cannot decrease (delta {delta})"
        );
        let key = render_labels(labels);
        if let Some(slot) = self.bank.slot(name, &key) {
            self.bank.add(slot, delta);
            return;
        }
        *self.scalar_mut(name, help, MetricKind::Counter, key) += delta;
    }

    /// Sets a gauge series to `value`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as another kind.
    pub fn gauge_set(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        *self.scalar_mut(name, help, MetricKind::Gauge, render_labels(labels)) = value;
    }

    fn histogram_cell_mut(
        &mut self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> &mut HistogramCell {
        assert!(!bounds.is_empty(), "histogram `{name}` needs buckets");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram `{name}` buckets must ascend"
        );
        let family = self.family_mut(name, help, MetricKind::Histogram, bounds);
        let buckets = family.bounds.len();
        match family
            .series
            .entry(render_labels(labels))
            .or_insert_with(|| SeriesValue::Histogram(HistogramCell::zeroed(buckets)))
        {
            SeriesValue::Histogram(cell) => cell,
            SeriesValue::Scalar(_) => unreachable!("histogram family holds histogram series"),
        }
    }

    /// Records one observation into a histogram series, creating the
    /// family (with `bounds` as its bucket upper bounds; the first
    /// registration of `name` wins) and the series on first use. A value
    /// equal to a bucket's upper bound lands in that bucket (`le` is
    /// inclusive); values above every bound land in the implicit `+Inf`
    /// overflow bucket.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a scalar kind, if
    /// `bounds` is empty or not strictly ascending.
    pub fn histogram_observe(
        &mut self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let cell = self.histogram_cell_mut(name, help, bounds, labels);
        let slot = bounds
            .iter()
            .position(|bound| value <= *bound)
            .unwrap_or(bounds.len());
        cell.counts[slot] += 1;
        cell.sum += value;
        cell.count += 1;
    }

    /// Merges pre-aggregated bucket counts into a histogram series — the
    /// bulk path the pipeline tracer drains its observations through
    /// (`counts` must have `bounds.len() + 1` slots, the last being the
    /// `+Inf` overflow bucket). With all-zero counts this simply
    /// pre-registers the series, so the exposition is stable before the
    /// first observation.
    ///
    /// # Panics
    /// Panics on kind conflicts, ill-formed `bounds`, or a `counts` slice
    /// that does not match `bounds`.
    #[allow(clippy::too_many_arguments)]
    pub fn histogram_add(
        &mut self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
        counts: &[u64],
        sum: f64,
        count: u64,
    ) {
        assert!(
            counts.len() == bounds.len() + 1,
            "histogram `{name}` merge needs {} counts (incl. +Inf), got {}",
            bounds.len() + 1,
            counts.len()
        );
        let cell = self.histogram_cell_mut(name, help, bounds, labels);
        for (slot, delta) in cell.counts.iter_mut().zip(counts) {
            *slot += delta;
        }
        cell.sum += sum;
        cell.count += count;
    }

    /// Pre-registers a histogram series at zero observations (existing
    /// series are kept), so the exposition shows the full bucket ladder
    /// before anything is observed.
    pub fn histogram_zero(
        &mut self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) {
        self.histogram_cell_mut(name, help, bounds, labels);
    }

    /// Pre-registers a histogram *family* (help text, type, buckets) with
    /// no series yet — for label dimensions whose values (e.g. tenants)
    /// are unknown until traffic arrives.
    pub fn histogram_family(&mut self, name: &str, help: &str, bounds: &[f64]) {
        assert!(!bounds.is_empty(), "histogram `{name}` needs buckets");
        self.family_mut(name, help, MetricKind::Histogram, bounds);
    }

    /// Reads one scalar series back (`None` if it was never touched or is
    /// a histogram). Series resolved to a [`CounterCell`] read the cell.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = render_labels(labels);
        if let Some(slot) = self.bank.slot(name, &key) {
            return Some(self.bank.load(slot));
        }
        match self.families.get(name)?.series.get(&key)? {
            SeriesValue::Scalar(value) => Some(*value),
            SeriesValue::Histogram(_) => None,
        }
    }

    fn histogram_series(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<(&[f64], &HistogramCell)> {
        let family = self.families.get(name)?;
        match family.series.get(&render_labels(labels))? {
            SeriesValue::Histogram(cell) => Some((&family.bounds, cell)),
            SeriesValue::Scalar(_) => None,
        }
    }

    /// Total observations recorded into a histogram series (`None` if the
    /// series does not exist).
    pub fn histogram_count(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        Some(self.histogram_series(name, labels)?.1.count)
    }

    /// Sum of all values observed into a histogram series (`None` if the
    /// series does not exist).
    pub fn histogram_sum(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        Some(self.histogram_series(name, labels)?.1.sum)
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`, e.g. `0.5` = p50,
    /// `0.99` = p99) of a histogram series by linear interpolation within
    /// the bucket containing the target rank — the standard
    /// `histogram_quantile` estimator. Returns `None` for a missing
    /// series or one with zero observations. Ranks landing in the `+Inf`
    /// overflow bucket clamp to the highest finite bound (the estimator
    /// cannot see past the bucket ladder).
    pub fn histogram_quantile(&self, name: &str, labels: &[(&str, &str)], q: f64) -> Option<f64> {
        let (bounds, cell) = self.histogram_series(name, labels)?;
        if cell.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * cell.count as f64).max(1.0);
        let mut cumulative = 0u64;
        for (slot, bucket_count) in cell.counts.iter().enumerate() {
            let below = cumulative as f64;
            cumulative += bucket_count;
            if (cumulative as f64) < rank {
                continue;
            }
            let Some(upper) = bounds.get(slot).copied() else {
                // Overflow bucket: clamp to the highest finite bound.
                return Some(bounds[bounds.len() - 1]);
            };
            let lower = if slot == 0 { 0.0 } else { bounds[slot - 1] };
            let inside = (rank - below) / (*bucket_count).max(1) as f64;
            return Some(lower + (upper - lower) * inside.clamp(0.0, 1.0));
        }
        Some(bounds[bounds.len() - 1])
    }

    /// Number of registered series across all families (a histogram
    /// series counts once, however many lines it renders as).
    pub fn series_count(&self) -> usize {
        self.families.values().map(|f| f.series.len()).sum()
    }

    /// Every registered family as `(name, help, kind)`, in render order.
    pub fn family_info(&self) -> impl Iterator<Item = (&str, &str, MetricKind)> {
        self.families
            .iter()
            .map(|(name, family)| (name.as_str(), family.help.as_str(), family.kind))
    }

    /// The families map with every live cell value folded back over its
    /// backing series — what every read-side consumer (render, clone,
    /// serialization, equality) actually observes.
    fn materialized(&self) -> BTreeMap<String, Family> {
        let mut families = self.families.clone();
        for (name, series) in &self.bank.index {
            let family = families.get_mut(name).expect("indexed family exists");
            for (key, slot) in series {
                family
                    .series
                    .insert(key.clone(), SeriesValue::Scalar(self.bank.load(*slot)));
            }
        }
        families
    }

    /// A copy of the registry without the named families. Journal
    /// checkpoints use this to exclude process-local and live-pipeline
    /// series from the durable snapshot — they describe the process that
    /// wrote the checkpoint, not the metered workload.
    pub fn without_families(&self, families: &[&str]) -> MetricsRegistry {
        MetricsRegistry {
            families: self
                .materialized()
                .into_iter()
                .filter(|(name, _)| !families.contains(&name.as_str()))
                .collect(),
            bank: CellBank::default(),
        }
    }

    /// Renders the whole registry in the Prometheus text exposition format,
    /// families and series in sorted order. Histogram series render as
    /// cumulative `name_bucket{...,le="<bound>"}` lines (ending with
    /// `le="+Inf"`) followed by `name_sum` and `name_count`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, family) in &self.materialized() {
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.exposition_type());
            for (labels, value) in &family.series {
                match value {
                    SeriesValue::Scalar(value) => {
                        let _ = writeln!(out, "{name}{labels} {value}");
                    }
                    SeriesValue::Histogram(cell) => {
                        let mut cumulative = 0u64;
                        for (slot, bucket_count) in cell.counts.iter().enumerate() {
                            cumulative += bucket_count;
                            let bound = match family.bounds.get(slot) {
                                Some(bound) => bound.to_string(),
                                None => "+Inf".to_string(),
                            };
                            let le = labels_with_le(labels, &bound);
                            let _ = writeln!(out, "{name}_bucket{le} {cumulative}");
                        }
                        let _ = writeln!(out, "{name}_sum{labels} {}", cell.sum);
                        let _ = writeln!(out, "{name}_count{labels} {}", cell.count);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render_sorted() {
        let mut registry = MetricsRegistry::new();
        registry.counter_add("jobs_total", "Jobs executed", &[("tenant", "t2")], 1.0);
        registry.counter_add("jobs_total", "Jobs executed", &[("tenant", "t1")], 2.0);
        registry.counter_add("jobs_total", "Jobs executed", &[("tenant", "t1")], 3.0);
        assert_eq!(registry.get("jobs_total", &[("tenant", "t1")]), Some(5.0));
        let text = registry.render();
        let t1 = text.find("tenant=\"t1\"").unwrap();
        let t2 = text.find("tenant=\"t2\"").unwrap();
        assert!(t1 < t2, "series must render in sorted label order");
        assert!(text.contains("# TYPE jobs_total counter"));
    }

    #[test]
    fn gauges_overwrite() {
        let mut registry = MetricsRegistry::new();
        registry.gauge_set("tenants", "Active tenants", &[], 3.0);
        registry.gauge_set("tenants", "Active tenants", &[], 5.0);
        assert_eq!(registry.get("tenants", &[]), Some(5.0));
        assert!(registry.render().contains("tenants 5"));
    }

    #[test]
    fn label_order_is_canonical() {
        let mut registry = MetricsRegistry::new();
        registry.counter_add("m", "h", &[("b", "2"), ("a", "1")], 1.0);
        registry.counter_add("m", "h", &[("a", "1"), ("b", "2")], 1.0);
        assert_eq!(registry.get("m", &[("b", "2"), ("a", "1")]), Some(2.0));
        assert_eq!(registry.series_count(), 1);
        assert!(registry.render().contains("m{a=\"1\",b=\"2\"} 2"));
    }

    #[test]
    fn label_values_escape_backslash_quote_newline() {
        let mut registry = MetricsRegistry::new();
        registry.counter_add("m", "h", &[("path", "C:\\x\"y\nz")], 1.0);
        let text = registry.render();
        assert!(text.contains("path=\"C:\\\\x\\\"y\\nz\""), "got: {text}");
    }

    #[test]
    #[should_panic(expected = "cannot decrease")]
    fn negative_counter_delta_rejected() {
        MetricsRegistry::new().counter_add("m", "h", &[], -1.0);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflict_rejected() {
        let mut registry = MetricsRegistry::new();
        registry.counter_add("m", "h", &[], 1.0);
        registry.gauge_set("m", "h", &[], 1.0);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn histogram_kind_conflict_rejected() {
        let mut registry = MetricsRegistry::new();
        registry.counter_add("m", "h", &[], 1.0);
        registry.histogram_observe("m", "h", &LATENCY_BUCKETS, &[], 0.5);
    }

    #[test]
    fn histogram_renders_cumulative_buckets_sum_and_count() {
        let mut registry = MetricsRegistry::new();
        let bounds = [0.1, 1.0, 10.0];
        registry.histogram_observe("lat", "Latency", &bounds, &[("stage", "run")], 0.05);
        registry.histogram_observe("lat", "Latency", &bounds, &[("stage", "run")], 0.5);
        registry.histogram_observe("lat", "Latency", &bounds, &[("stage", "run")], 99.0);
        let text = registry.render();
        assert!(text.contains("# TYPE lat histogram"), "got: {text}");
        assert!(text.contains("lat_bucket{stage=\"run\",le=\"0.1\"} 1"));
        assert!(text.contains("lat_bucket{stage=\"run\",le=\"1\"} 2"));
        assert!(text.contains("lat_bucket{stage=\"run\",le=\"10\"} 2"));
        assert!(text.contains("lat_bucket{stage=\"run\",le=\"+Inf\"} 3"));
        assert!(text.contains("lat_sum{stage=\"run\"} 99.55"));
        assert!(text.contains("lat_count{stage=\"run\"} 3"));
        assert_eq!(
            registry.histogram_count("lat", &[("stage", "run")]),
            Some(3)
        );
        assert_eq!(
            registry.histogram_sum("lat", &[("stage", "run")]),
            Some(99.55)
        );
    }

    #[test]
    fn histogram_unlabeled_series_renders_bare_le() {
        let mut registry = MetricsRegistry::new();
        registry.histogram_observe("lat", "Latency", &[1.0], &[], 0.5);
        let text = registry.render();
        assert!(text.contains("lat_bucket{le=\"1\"} 1"), "got: {text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_sum 0.5"));
        assert!(text.contains("lat_count 1"));
    }

    #[test]
    fn histogram_boundary_value_lands_in_its_bucket() {
        // `le` is inclusive: a value exactly at a bound belongs to that
        // bucket, not the next one.
        let mut registry = MetricsRegistry::new();
        let bounds = [1.0, 2.0];
        registry.histogram_observe("m", "h", &bounds, &[], 1.0);
        let text = registry.render();
        assert!(text.contains("m_bucket{le=\"1\"} 1"), "got: {text}");
        assert!(text.contains("m_bucket{le=\"2\"} 1"));
    }

    #[test]
    fn histogram_overflow_bucket_catches_large_values() {
        let mut registry = MetricsRegistry::new();
        registry.histogram_observe("m", "h", &[1.0], &[], 1e9);
        let text = registry.render();
        assert!(text.contains("m_bucket{le=\"1\"} 0"), "got: {text}");
        assert!(text.contains("m_bucket{le=\"+Inf\"} 1"));
        // The quantile estimator cannot see past the ladder: it clamps to
        // the highest finite bound.
        assert_eq!(registry.histogram_quantile("m", &[], 0.5), Some(1.0));
    }

    #[test]
    fn histogram_zero_observations_render_but_have_no_quantile() {
        let mut registry = MetricsRegistry::new();
        registry.histogram_zero("m", "h", &[1.0, 2.0], &[]);
        let text = registry.render();
        assert!(text.contains("m_bucket{le=\"+Inf\"} 0"), "got: {text}");
        assert!(text.contains("m_count 0"));
        assert_eq!(registry.histogram_quantile("m", &[], 0.5), None);
        assert_eq!(registry.histogram_count("m", &[]), Some(0));
    }

    #[test]
    fn histogram_quantile_of_missing_series_is_none() {
        let registry = MetricsRegistry::new();
        assert_eq!(registry.histogram_quantile("nope", &[], 0.5), None);
    }

    #[test]
    fn histogram_single_bucket_quantiles_interpolate() {
        let mut registry = MetricsRegistry::new();
        for _ in 0..4 {
            registry.histogram_observe("m", "h", &[8.0], &[], 1.0);
        }
        // All mass in [0, 8): rank interpolation walks the bucket.
        assert_eq!(registry.histogram_quantile("m", &[], 0.25), Some(2.0));
        assert_eq!(registry.histogram_quantile("m", &[], 0.5), Some(4.0));
        assert_eq!(registry.histogram_quantile("m", &[], 1.0), Some(8.0));
        // q is clamped: out-of-range requests behave like 0 / 1.
        assert_eq!(registry.histogram_quantile("m", &[], -3.0), Some(2.0));
        assert_eq!(registry.histogram_quantile("m", &[], 7.0), Some(8.0));
    }

    #[test]
    fn histogram_quantile_spans_buckets() {
        let mut registry = MetricsRegistry::new();
        let bounds = [1.0, 2.0, 4.0];
        // 2 obs in (0,1], 6 in (1,2], 2 in (2,4].
        for value in [0.5, 0.6, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 3.0, 3.5] {
            registry.histogram_observe("m", "h", &bounds, &[], value);
        }
        // p50: rank 5 → 3rd obs of the (1,2] bucket → 1 + (5-2)/6.
        assert_eq!(registry.histogram_quantile("m", &[], 0.5), Some(1.5));
        // p90: rank 9 → 1st obs of the (2,4] bucket → 2 + (9-8)/2 * 2.
        assert_eq!(registry.histogram_quantile("m", &[], 0.9), Some(3.0));
    }

    #[test]
    fn histogram_add_merges_preaggregated_counts() {
        let mut registry = MetricsRegistry::new();
        let bounds = [1.0, 2.0];
        registry.histogram_add("m", "h", &bounds, &[], &[1, 2, 3], 10.0, 6);
        registry.histogram_add("m", "h", &bounds, &[], &[1, 0, 0], 0.5, 1);
        assert_eq!(registry.histogram_count("m", &[]), Some(7));
        assert_eq!(registry.histogram_sum("m", &[]), Some(10.5));
        let text = registry.render();
        assert!(text.contains("m_bucket{le=\"1\"} 2"), "got: {text}");
        assert!(text.contains("m_bucket{le=\"+Inf\"} 7"));
    }

    #[test]
    #[should_panic(expected = "counts (incl. +Inf)")]
    fn histogram_add_rejects_mismatched_counts() {
        MetricsRegistry::new().histogram_add("m", "h", &[1.0], &[], &[1], 1.0, 1);
    }

    #[test]
    #[should_panic(expected = "must ascend")]
    fn histogram_rejects_unsorted_buckets() {
        MetricsRegistry::new().histogram_observe("m", "h", &[2.0, 1.0], &[], 0.5);
    }

    #[test]
    fn histogram_family_preregisters_without_series() {
        let mut registry = MetricsRegistry::new();
        registry.histogram_family("m", "h", &[1.0]);
        let text = registry.render();
        assert!(text.contains("# HELP m h"));
        assert!(text.contains("# TYPE m histogram"));
        assert_eq!(registry.series_count(), 0);
        // First observation adopts the registered buckets.
        registry.histogram_observe("m", "h", &[1.0], &[], 0.5);
        assert_eq!(registry.histogram_count("m", &[]), Some(1));
    }

    #[test]
    fn latency_buckets_are_strictly_ascending() {
        assert!(LATENCY_BUCKETS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn counter_cell_takes_over_the_series_and_reads_overlay_it() {
        let mut registry = MetricsRegistry::new();
        registry.counter_add("jobs", "h", &[("tenant", "t1")], 2.0);
        let cell = registry.counter_cell("jobs", "h", &[("tenant", "t1")]);
        registry.cell_add(cell, 3.0);
        assert_eq!(registry.cell_get(cell), 5.0);
        assert_eq!(registry.get("jobs", &[("tenant", "t1")]), Some(5.0));
        assert!(registry.render().contains("jobs{tenant=\"t1\"} 5"));
        // The locked entry point routes to the cell — no double counting.
        registry.counter_add("jobs", "h", &[("tenant", "t1")], 1.0);
        assert_eq!(registry.get("jobs", &[("tenant", "t1")]), Some(6.0));
        // Re-resolving returns the same cell.
        assert_eq!(
            cell,
            registry.counter_cell("jobs", "h", &[("tenant", "t1")])
        );
        assert_eq!(registry.series_count(), 1);
    }

    #[test]
    fn cell_add_works_through_a_shared_reference() {
        let mut registry = MetricsRegistry::new();
        let cell = registry.counter_cell("posts", "h", &[]);
        let shared = &registry;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    for _ in 0..100 {
                        shared.cell_add(cell, 1.0);
                    }
                });
            }
        });
        assert_eq!(registry.get("posts", &[]), Some(400.0));
    }

    #[test]
    fn registries_with_cells_clone_compare_and_serialize_materialized() {
        let mut with_cells = MetricsRegistry::new();
        let cell = with_cells.counter_cell("m", "h", &[]);
        with_cells.cell_add(cell, 4.0);
        let mut locked = MetricsRegistry::new();
        locked.counter_add("m", "h", &[], 4.0);
        assert_eq!(with_cells, locked);
        assert_eq!(with_cells.clone(), locked);
        let json = serde_json::to_string(&with_cells).unwrap();
        assert_eq!(json, serde_json::to_string(&locked).unwrap());
        let back: MetricsRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("m", &[]), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "cannot decrease")]
    fn negative_cell_delta_rejected() {
        let mut registry = MetricsRegistry::new();
        let cell = registry.counter_cell("m", "h", &[]);
        registry.cell_add(cell, -1.0);
    }
}
