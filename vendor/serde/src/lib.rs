//! Local stub of `serde` for an offline build environment.
//!
//! The real serde uses a visitor-based zero-copy architecture; this stub
//! replaces it with a simple [`Value`] tree: `Serialize` renders a type into
//! a `Value`, `Deserialize` rebuilds it from one. The vendored `serde_json`
//! crate prints and parses `Value`s as JSON text. The API surface is exactly
//! what this workspace needs — plain `#[derive(Serialize, Deserialize)]` on
//! non-generic structs and enums, with no `#[serde(...)]` attributes.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value: the common tree both traits speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

/// Appends `s` to `out` as a quoted, escaped JSON string. Escapes by
/// byte-scan: contiguous clean runs (anything except `"`, `\` and
/// control bytes < 0x20 — multi-byte UTF-8 is ≥ 0x80 and passes through)
/// are copied with one `push_str` each.
pub fn write_escaped_str(out: &mut String, s: &str) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    out.push('"');
    let bytes = s.as_bytes();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b >= 0x20 && b != b'"' && b != b'\\' {
            i += 1;
            continue;
        }
        // `b` is ASCII, so `i` and `i + 1` are char boundaries.
        out.push_str(&s[start..i]);
        match b {
            b'"' => out.push_str("\\\""),
            b'\\' => out.push_str("\\\\"),
            b'\n' => out.push_str("\\n"),
            b'\r' => out.push_str("\\r"),
            b'\t' => out.push_str("\\t"),
            _ => {
                out.push_str("\\u00");
                out.push(HEX[(b >> 4) as usize] as char);
                out.push(HEX[(b & 0x0f) as usize] as char);
            }
        }
        i += 1;
        start = i;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

/// Appends `v` to `out` as compact JSON (the canonical compact printer —
/// `serde_json`'s compact entry points and [`Serialize::write_json`]'s
/// default both route through this, so tree-printed and streamed output
/// can never diverge).
pub fn write_compact_value(out: &mut String, v: &Value) {
    use std::fmt::Write as _;
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => write_compact_f64(out, *x),
        Value::Str(s) => write_escaped_str(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped_str(out, k);
                out.push(':');
                write_compact_value(out, item);
            }
            out.push('}');
        }
    }
}

/// Appends a JSON float: `{:?}` keeps a decimal point or exponent
/// (matching the real serde_json), non-finite prints `null`.
fn write_compact_f64(out: &mut String, x: f64) {
    use std::fmt::Write as _;
    if x.is_finite() {
        let _ = write!(out, "{x:?}");
    } else {
        out.push_str("null");
    }
}

impl Value {
    /// Looks up a field in a map value, yielding `Null` when the key is
    /// absent or the value is not a map (so `Option` fields default to
    /// `None` instead of erroring).
    pub fn field_or_null(&self, name: &str) -> &Value {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// Interprets the value as a sequence of exactly `len` elements.
    pub fn as_seq(&self, len: usize) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) if items.len() == len => Ok(items),
            Value::Seq(items) => Err(Error::custom(format!(
                "expected a sequence of {len} elements, got {}",
                items.len()
            ))),
            other => Err(Error::custom(format!("expected a sequence, got {other:?}"))),
        }
    }
}

/// A (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error from a message.
    pub fn custom(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;

    /// Streams `self` as compact JSON straight into `out`, with no
    /// intermediate [`Value`] tree. The default goes through
    /// [`Serialize::to_value`]; the primitive impls and derived impls
    /// override it to write directly — the zero-copy hot path the journal
    /// layer's group commits ride on.
    fn write_json(&self, out: &mut String) {
        write_compact_value(out, &self.to_value());
    }
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
            fn write_json(&self, out: &mut String) {
                use std::fmt::Write as _;
                let _ = write!(out, "{self}");
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    other => Err(Error::custom(format!(
                        "expected an unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 {
                    Value::I64(n)
                } else {
                    Value::U64(n as u64)
                }
            }
            fn write_json(&self, out: &mut String) {
                use std::fmt::Write as _;
                let _ = write!(out, "{self}");
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    other => Err(Error::custom(format!(
                        "expected an integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
            fn write_json(&self, out: &mut String) {
                write_compact_f64(out, *self as f64);
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(Error::custom(format!(
                        "expected a number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

/// A `Value` serializes to itself — like the real `serde_json::Value`,
/// so value trees can pass through the serialization entry points.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
    fn write_json(&self, out: &mut String) {
        write_compact_value(out, self);
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected a bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
    fn write_json(&self, out: &mut String) {
        write_escaped_str(out, self);
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected a string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
    fn write_json(&self, out: &mut String) {
        write_escaped_str(out, self);
    }
}

/// Borrowed strings serialize fine but cannot be rebuilt from an owned
/// value tree; the impl exists so derives on types with `&'static str`
/// fields compile (deserializing one errors at runtime, like the real
/// serde_json does for non-borrowable input).
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Err(Error::custom(format!(
            "cannot deserialize a borrowed str from an owned value ({v:?})"
        )))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
    fn write_json(&self, out: &mut String) {
        let mut buf = [0u8; 4];
        write_escaped_str(out, self.encode_utf8(&mut buf));
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected a one-char string, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
    fn write_json(&self, out: &mut String) {
        match self {
            Some(x) => x.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

/// Streams any iterable as a JSON array.
fn write_json_seq<'a, T: Serialize + 'a>(out: &mut String, items: impl IntoIterator<Item = &'a T>) {
    out.push('[');
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.write_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
    fn write_json(&self, out: &mut String) {
        write_json_seq(out, self);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected a sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
    fn write_json(&self, out: &mut String) {
        write_json_seq(out, self);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
    fn write_json(&self, out: &mut String) {
        write_json_seq(out, self);
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_seq(N)?;
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom(format!("expected an array of {N} elements")))
    }
}

/// Renders a map key as the JSON object key, the way serde_json does:
/// strings stay strings, integers and unit enum variants stringify.
///
/// # Panics
/// Panics when the key serializes to a compound value (seq/map), which JSON
/// cannot represent as an object key — the real serde_json errors there too.
fn key_to_string(key: &Value) -> String {
    match key {
        Value::Str(s) => s.clone(),
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must be string-like, got {other:?}"),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    // Unit enum variants and strings deserialize from Str; integer keys were
    // stringified on the way out, so retry as a number.
    K::from_value(&Value::Str(key.to_string())).or_else(|e| {
        if let Ok(n) = key.parse::<u64>() {
            K::from_value(&Value::U64(n))
        } else if let Ok(n) = key.parse::<i64>() {
            K::from_value(&Value::I64(n))
        } else {
            Err(e)
        }
    })
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped_str(out, &key_to_string(&k.to_value()));
            out.push(':');
            v.write_json(out);
        }
        out.push('}');
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected a map, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
            fn write_json(&self, out: &mut String) {
                out.push('[');
                $(
                    if $idx > 0 {
                        out.push(',');
                    }
                    self.$idx.write_json(out);
                )+
                out.push(']');
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = stringify!($idx); 1 })+;
                let items = v.as_seq(LEN)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip_distinguishes_null() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::U64(4)).unwrap(), Some(4));
        assert_eq!(Some("x".to_string()).to_value(), Value::Str("x".into()));
    }

    #[test]
    fn missing_map_field_reads_as_null() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.field_or_null("a"), &Value::U64(1));
        assert_eq!(v.field_or_null("b"), &Value::Null);
    }

    #[test]
    fn arrays_and_tuples_roundtrip() {
        let arr = [1u8, 2, 3];
        let back: [u8; 3] = Deserialize::from_value(&arr.to_value()).unwrap();
        assert_eq!(back, arr);
        let t = ("x".to_string(), 2u64, 1.5f64);
        let back: (String, u64, f64) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn signed_integers_choose_representation() {
        assert_eq!((-3i32).to_value(), Value::I64(-3));
        assert_eq!(3i32.to_value(), Value::U64(3));
        assert_eq!(i32::from_value(&Value::I64(-3)).unwrap(), -3);
    }
}
