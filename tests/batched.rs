//! Tier-1 equivalence suite for the batched hot path: `submit_all`
//! chunked submission and bulk release must be **bit-identical** to the
//! one-job-at-a-time path — reports, ledgers, metering exposition and
//! journal bytes — at 1, 2 and 8 workers, and a batch that dies mid-way
//! on a failing journal must quarantine without billing anything it
//! never journaled.

use trustmeter::prelude::*;

const SCALE: f64 = 0.001;

/// A mixed batch: four tenants, all four workloads, a mix of clean and
/// attacked runs (mirrors the `fleet.rs` suite).
fn batch(n: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let tenant = TenantId((i % 4) as u32 + 1);
            let workload = Workload::ALL[(i % 4) as usize];
            match i % 5 {
                0 => JobSpec::attacked(i, tenant, workload, SCALE, AttackSpec::Shell),
                1 => JobSpec::attacked(
                    i,
                    tenant,
                    workload,
                    SCALE,
                    AttackSpec::Scheduling { nice: -10 },
                ),
                _ => JobSpec::clean(i, tenant, workload, SCALE),
            }
        })
        .collect()
}

fn service(workers: usize) -> FleetService {
    let mut service = FleetService::new(FleetConfig::new(workers, 77));
    for id in 1..=4u32 {
        service.register(Tenant::new(
            TenantId(id),
            format!("tenant-{id}"),
            RateCard::per_cpu_second(0.01),
        ));
    }
    service
}

/// Streams `jobs` through a fresh service, submitting per job or in
/// `submit_all` chunks of `chunk` (0 = per job), pumping between chunks
/// like a live consumer. Returns the report and the final exposition.
fn stream_jobs(jobs: &[JobSpec], workers: usize, chunk: usize) -> (FleetReport, String) {
    let mut service = service(workers);
    let mut stream = service.stream(IngestConfig::new(workers));
    if chunk == 0 {
        for job in jobs {
            stream.submit(job.clone()).expect("queue sized for batch");
            stream.pump();
        }
    } else {
        for slice in jobs.chunks(chunk) {
            stream.submit_all(slice).expect("queue sized for batch");
            stream.pump();
        }
    }
    let report = stream.finish();
    (report, service.metrics_text())
}

#[test]
fn batched_submission_is_bit_identical_to_per_job_at_1_2_8_workers() {
    let jobs = batch(24);
    let mut reference = service(4);
    let reference_report = reference.process(&jobs);
    let reference_metering = metering_exposition(&reference.metrics_text());

    for workers in [1usize, 2, 8] {
        let (per_job, per_job_metrics) = stream_jobs(&jobs, workers, 0);
        for chunk in [5usize, 24] {
            let (batched, batched_metrics) = stream_jobs(&jobs, workers, chunk);
            // Records, verdicts and the ledger: the full report matches
            // the per-job stream and the plain batch API bit for bit.
            assert_eq!(
                batched, per_job,
                "chunk {chunk} at {workers} workers drifted from per-job"
            );
            assert_eq!(batched, reference_report);
            // The metering exposition — everything a billing consumer
            // reads — is byte-identical too.
            assert_eq!(
                metering_exposition(&batched_metrics),
                metering_exposition(&per_job_metrics),
                "metering drifted at chunk {chunk}, {workers} workers"
            );
            assert_eq!(metering_exposition(&batched_metrics), reference_metering);
        }
    }
}

/// Runs a journaled stream with all submissions staged up front and the
/// pipeline paused until `finish` (which overrides the pause and drains in
/// one release), so the journal line schedule is exact: every `Accepted`
/// marker in submission order, then one `Run` group and one receipts
/// group — deterministic at any worker count. Returns the journal text.
fn journal_text(jobs: &[JobSpec], workers: usize, chunk: usize) -> String {
    let journal = Journal::in_memory();
    let mut service = service(workers).with_journal(journal.clone());
    let stream = service.stream(IngestConfig::new(workers).paused());
    if chunk == 0 {
        for job in jobs {
            stream.submit(job.clone()).expect("queue sized for batch");
        }
    } else {
        for slice in jobs.chunks(chunk) {
            stream.submit_all(slice).expect("queue sized for batch");
        }
    }
    let report = stream.finish();
    assert_eq!(report.records.len(), jobs.len());
    journal.text().expect("read back in-memory journal")
}

#[test]
fn batched_journal_bytes_match_per_job_at_1_2_8_workers() {
    let jobs = batch(24);
    let baseline = journal_text(&jobs, 1, 0);
    assert!(!baseline.is_empty());
    for workers in [1usize, 2, 8] {
        for chunk in [0usize, 5, 24] {
            assert_eq!(
                journal_text(&jobs, workers, chunk),
                baseline,
                "journal bytes drifted at chunk {chunk}, {workers} workers"
            );
        }
    }
}

#[test]
fn quarantined_batch_never_bills_and_drains_after_failover() {
    let jobs = batch(8);

    // Clean reference: the same jobs over a healthy journal.
    let mut clean = service(2).with_journal(Journal::in_memory());
    let clean_report = clean.process(&jobs);

    // Lines 0-7 are the batch's grouped `Accepted` markers; the first
    // `Run` group commit starts at line 8 and hits a dead disk with no
    // retries — the release path must quarantine with nothing billed.
    let schedule = FaultSchedule::none().disk_full_at(8);
    let (sink, _probe) = FaultInjectingSink::wrap(Box::new(MemorySink::new()), schedule);
    let journal = Journal::with_sink(Box::new(sink)).expect("wrap sink");
    let mut service = service(2).with_journal(journal);
    let mut stream = service.stream(IngestConfig::new(2).with_retry_policy(RetryPolicy::none()));
    stream.submit_all(&jobs).expect("queue sized for batch");
    while !stream.health().quarantined {
        stream.pump();
        std::thread::yield_now();
    }
    assert_eq!(
        stream.verdicts().len(),
        0,
        "nothing posted while quarantined"
    );

    // Failover to a healthy sink: the parked batch drains, and the final
    // ledger matches the clean run bit for bit.
    stream
        .resume_with_sink(Box::new(MemorySink::new()))
        .expect("failover to healthy sink");
    while stream.verdicts().len() < jobs.len() {
        stream.pump();
        std::thread::yield_now();
    }
    let report = stream.finish();
    assert_eq!(report.records.len(), jobs.len());
    assert_eq!(report.ledger, clean_report.ledger);
    assert_eq!(report.verdicts, clean_report.verdicts);
}
