//! Reference π computations.
//!
//! The paper's second victim program, *Pi*, is "an open source C program to
//! calculate the value of pi". Two reference computations are provided:
//!
//! * [`machin`] — Machin's formula with `f64` arithmetic, the shape of the
//!   inner loop (repeated division, multiplication and a square root per
//!   term when computed naively) is what the simulated [`crate::VictimProgram`]
//!   bases its op mix on;
//! * [`spigot_digits`] — the Rabinowitz–Wagon spigot algorithm producing the
//!   first `n` decimal digits exactly, used by tests and the quickstart
//!   example as a self-checking workload.

/// Approximates π using Machin's formula
/// `π = 16·arctan(1/5) − 4·arctan(1/239)` with `terms` series terms per
/// arctangent. Returns the approximation.
///
/// # Example
///
/// ```
/// use trustmeter_workloads::native::pi;
/// let approx = pi::machin(20);
/// assert!((approx - std::f64::consts::PI).abs() < 1e-12);
/// ```
pub fn machin(terms: u32) -> f64 {
    16.0 * arctan_inv(5.0, terms) - 4.0 * arctan_inv(239.0, terms)
}

/// arctan(1/x) via the Taylor series, `terms` terms.
fn arctan_inv(x: f64, terms: u32) -> f64 {
    let mut sum = 0.0;
    let x2 = x * x;
    let mut power = x; // x^(2k+1)
    for k in 0..terms {
        let term = 1.0 / ((2 * k + 1) as f64 * power);
        if k % 2 == 0 {
            sum += term;
        } else {
            sum -= term;
        }
        power *= x2;
    }
    sum
}

/// Returns the first `n` decimal digits of π (starting `3, 1, 4, …`) using
/// the Rabinowitz–Wagon spigot algorithm.
///
/// # Example
///
/// ```
/// use trustmeter_workloads::native::pi;
/// assert_eq!(pi::spigot_digits(6), vec![3, 1, 4, 1, 5, 9]);
/// ```
///
/// # Panics
/// Panics if `n` is zero.
// The spigot really does flush runs of identical buffered digits (nines or
// zeros) — the same-item pushes are the algorithm, not an oversight.
#[allow(clippy::same_item_push)]
pub fn spigot_digits(n: usize) -> Vec<u8> {
    assert!(n > 0, "need at least one digit");
    let len = (n + 10) * 10 / 3 + 2;
    let mut a = vec![2u32; len];
    let mut digits: Vec<u8> = Vec::with_capacity(n + 2);
    let mut predigit = 0u32;
    let mut nines = 0u32;

    // One priming iteration emits a spurious leading zero; keep iterating
    // until enough real digits (plus that zero) have been emitted. Buffered
    // nines can delay emission by a few iterations, hence the slack in both
    // the array length above and the iteration bound here.
    for _ in 0..n + 10 {
        if digits.len() > n {
            break;
        }
        let mut carry = 0u32;
        for i in (0..len).rev() {
            let x = 10 * a[i] + carry * (i as u32 + 1);
            a[i] = x % (2 * i as u32 + 1);
            carry = x / (2 * i as u32 + 1);
        }
        a[0] = carry % 10;
        let q = carry / 10;
        if q == 9 {
            nines += 1;
        } else if q == 10 {
            digits.push((predigit + 1) as u8);
            for _ in 0..nines {
                digits.push(0);
            }
            nines = 0;
            predigit = 0;
        } else {
            digits.push(predigit as u8);
            predigit = q;
            for _ in 0..nines {
                digits.push(9);
            }
            nines = 0;
        }
    }
    // The first pushed digit is a spurious leading zero from the priming
    // iteration.
    digits.remove(0);
    digits.truncate(n);
    digits
}

/// Number of primitive floating-point operations one Machin term costs
/// (used to calibrate the simulated Pi program's per-iteration cycle cost).
pub const FLOPS_PER_TERM: u64 = 6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machin_converges() {
        assert!((machin(5) - std::f64::consts::PI).abs() < 1e-6);
        assert!((machin(15) - std::f64::consts::PI).abs() < 1e-12);
        // More terms never hurts.
        assert!(
            (machin(30) - std::f64::consts::PI).abs() <= (machin(5) - std::f64::consts::PI).abs()
        );
    }

    #[test]
    fn spigot_known_prefix() {
        let digits = spigot_digits(25);
        assert_eq!(
            digits,
            vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4, 6, 2, 6, 4, 3]
        );
    }

    #[test]
    fn spigot_single_digit() {
        assert_eq!(spigot_digits(1), vec![3]);
    }

    #[test]
    #[should_panic(expected = "at least one digit")]
    fn spigot_zero_rejected() {
        let _ = spigot_digits(0);
    }

    #[test]
    fn spigot_lengths_match_request() {
        for n in [2, 10, 40, 80] {
            assert_eq!(spigot_digits(n).len(), n);
        }
    }
}
