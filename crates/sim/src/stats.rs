//! Statistics helpers used by the experiment harness.
//!
//! The paper reports its results as bar charts of CPU seconds per program
//! (Figures 4–11). The experiment crate assembles those charts from
//! [`Series`] values; [`Summary`] and [`Histogram`] support the extended
//! ablation studies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics over a set of `f64` samples.
///
/// # Example
///
/// ```
/// use trustmeter_sim::Summary;
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.count, 4);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Population standard deviation (0 when empty).
    pub std_dev: f64,
    /// Minimum sample (0 when empty).
    pub min: f64,
    /// Maximum sample (0 when empty).
    pub max: f64,
    /// Sum of all samples.
    pub sum: f64,
}

impl Summary {
    /// Computes summary statistics for the given samples.
    pub fn from_samples(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        let count = samples.len();
        let sum: f64 = samples.iter().sum();
        let mean = sum / count as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
            sum,
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count, self.mean, self.std_dev, self.min, self.max
        )
    }
}

/// A labelled series of `(label, value)` points — one bar group or one line
/// of a paper figure.
///
/// # Example
///
/// ```
/// use trustmeter_sim::Series;
/// let mut s = Series::new("user time");
/// s.push("O", 155.2);
/// s.push("P", 148.0);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.value_for("P"), Some(148.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Name of the series (e.g. `"user time"`, `"CPU time of W"`).
    pub name: String,
    /// Ordered data points as `(x-label, y-value)` pairs.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Creates an empty series with the given name.
    pub fn new(name: impl Into<String>) -> Series {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, label: impl Into<String>, value: f64) {
        self.points.push((label.into(), value));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The value recorded for `label`, if present.
    pub fn value_for(&self, label: &str) -> Option<f64> {
        self.points
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, v)| *v)
    }

    /// Iterates over the points.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.points.iter().map(|(l, v)| (l.as_str(), *v))
    }

    /// The sum of all values.
    pub fn total(&self) -> f64 {
        self.points.iter().map(|(_, v)| v).sum()
    }

    /// The largest value (0 when empty).
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|(_, v)| *v).fold(0.0, f64::max)
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.name)?;
        for (i, (l, v)) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}={v:.2}")?;
        }
        Ok(())
    }
}

/// A fixed-width histogram over `f64` samples.
///
/// # Example
///
/// ```
/// use trustmeter_sim::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.record(1.0);
/// h.record(9.5);
/// h.record(100.0); // clamped into the last bucket
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_counts()[0], 1);
/// assert_eq!(h.bucket_counts()[4], 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram covering `[lo, hi)` with `buckets` equal-width
    /// buckets. Samples outside the range are clamped to the first/last
    /// bucket.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Histogram {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            count: 0,
            sum: 0.0,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, x: f64) {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        let idx = ((x - self.lo) / width).floor();
        let idx = idx.clamp(0.0, (self.buckets.len() - 1) as f64) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += x;
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Per-bucket sample counts.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Approximate quantile `q` in `[0, 1]` computed from bucket midpoints.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.lo + width * (i as f64 + 0.5);
            }
        }
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_zero() {
        let s = Summary::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_basic() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.sum, 40.0);
        assert!(format!("{s}").contains("n=8"));
    }

    #[test]
    fn series_accessors() {
        let mut s = Series::new("sys");
        s.push("O", 1.0);
        s.push("P", 2.0);
        s.push("W", 3.0);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.value_for("W"), Some(3.0));
        assert_eq!(s.value_for("missing"), None);
        assert_eq!(s.total(), 6.0);
        assert_eq!(s.max_value(), 3.0);
        assert_eq!(s.iter().count(), 3);
        assert!(format!("{s}").starts_with("sys:"));
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 49.5).abs() < 1e-9);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 100);
        let median = h.quantile(0.5);
        assert!((40.0..=60.0).contains(&median));
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.record(-5.0);
        h.record(50.0);
        assert_eq!(h.bucket_counts(), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn histogram_rejects_bad_range() {
        let _ = Histogram::new(5.0, 5.0, 3);
    }

    #[test]
    fn histogram_empty_quantile_is_zero() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.9), 0.0);
        assert_eq!(h.mean(), 0.0);
    }
}
