//! Fleet benchmarks: the shard-count sweep that motivates the sharded
//! executor, plus the auditing and metrics stages on top of a fixed batch.

use criterion::{criterion_group, criterion_main, Criterion};
use trustmeter_fleet::{
    AttackSpec, Fleet, FleetConfig, FleetService, JobSpec, RateCard, Tenant, TenantId,
};
use trustmeter_workloads::Workload;

const SCALE: f64 = 0.001;

fn batch(n: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let tenant = TenantId((i % 4) as u32 + 1);
            let workload = Workload::ALL[(i % 4) as usize];
            if i % 4 == 0 {
                JobSpec::attacked(i, tenant, workload, SCALE, AttackSpec::Shell)
            } else {
                JobSpec::clean(i, tenant, workload, SCALE)
            }
        })
        .collect()
}

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);

    let jobs = batch(32);
    for shards in [1usize, 2, 4, 8] {
        let fleet = Fleet::new(FleetConfig::new(shards, 0xf1ee7));
        group.bench_function(&format!("run_32_jobs_{shards}_shards"), |b| {
            b.iter(|| fleet.run(&jobs))
        });
    }

    group.bench_function("service_process_32_jobs_4_shards", |b| {
        b.iter(|| {
            let mut service = FleetService::new(FleetConfig::new(4, 0xf1ee7));
            for id in 1..=4u32 {
                service.register(Tenant::new(
                    TenantId(id),
                    format!("t{id}"),
                    RateCard::per_cpu_hour(0.10),
                ));
            }
            let report = service.process(&jobs);
            (report.verdicts.len(), service.metrics_text().len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
