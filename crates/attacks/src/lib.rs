//! # trustmeter-attacks
//!
//! Implementations of every attack on CPU-time metering described in *"On
//! Trustworthiness of CPU Usage Metering and Accounting"* (Liu & Ding,
//! ICDCSW 2010), §IV:
//!
//! | Attack | Paper | Type |
//! |--------|-------|------|
//! | [`ShellAttack`] | §IV-A1, Fig. 4 | launch-time, inflates utime |
//! | [`PreloadConstructorAttack`] | §IV-A2, Fig. 5 | launch-time, inflates utime |
//! | [`InterpositionAttack`] | §IV-A2, Fig. 6 | runtime, inflates utime |
//! | [`SchedulingAttack`] | §IV-B1, Figs. 7–8 | runtime, mis-attributes jiffies |
//! | [`ThrashingAttack`] | §IV-B2, Fig. 9 | runtime, inflates stime |
//! | [`InterruptFloodAttack`] | §IV-B3, Fig. 10 | runtime, inflates stime |
//! | [`ExceptionFloodAttack`] | §IV-B4, Fig. 11 | runtime, inflates stime |
//!
//! Each attack implements the [`Attack`] trait: [`Attack::install`] tampers
//! with the platform before the victim is launched (shell, `LD_PRELOAD`,
//! device configuration), and [`Attack::launch`] starts any attacker
//! processes once the victim exists.
//!
//! ```
//! use trustmeter_attacks::{Attack, ShellAttack};
//! use trustmeter_kernel::{Kernel, KernelConfig};
//! use trustmeter_workloads::Workload;
//!
//! let mut kernel = Kernel::new(KernelConfig::paper_machine());
//! let attack = ShellAttack::paper_default(0.01);
//! attack.install(&mut kernel);
//! let victim = kernel.spawn_process(Workload::LoopO.build(0.01), 0);
//! attack.launch(&mut kernel, victim, Some(Workload::LoopO));
//! let result = kernel.run();
//! assert!(result.process(victim).unwrap().billed().utime.as_u64() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attackers;

pub use attackers::{ForkAttacker, MemoryHog, Thrasher};

use serde::{Deserialize, Serialize};
use std::fmt;
use trustmeter_core::{AttackClass, TaskId};
use trustmeter_kernel::{Kernel, NicFlood, SharedLibrary};
use trustmeter_sim::{CpuFrequency, Cycles, Nanos};
use trustmeter_workloads::Workload;

fn secs_to_cycles(secs: f64) -> Cycles {
    CpuFrequency::E7200.cycles_for(Nanos::from_secs_f64(secs.max(0.0)))
}

/// The privilege level the dishonest operator needs to mount an attack
/// (paper §V-C, "Side Effects and Limitations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Privilege {
    /// No special privilege: anyone who can run a process suffices.
    None,
    /// Control over the victim's shell or environment variables.
    Environment,
    /// Ability to use ptrace on the victim (subject to LSM policies).
    Ptrace,
    /// Root (needed e.g. to raise the attacker's priority).
    Root,
    /// Control over another machine on the network.
    RemoteHost,
}

impl fmt::Display for Privilege {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Privilege::None => "none",
            Privilege::Environment => "shell/environment control",
            Privilege::Ptrace => "ptrace permission",
            Privilege::Root => "root",
            Privilege::RemoteHost => "a remote host",
        };
        f.write_str(s)
    }
}

/// An attack on CPU-time metering.
pub trait Attack: Send {
    /// Short name used in figures and reports.
    fn name(&self) -> &'static str;

    /// Which accounting component the attack targets.
    fn class(&self) -> AttackClass;

    /// The privilege the operator needs.
    fn required_privilege(&self) -> Privilege;

    /// Tampers with the platform before the victim is launched.
    fn install(&self, kernel: &mut Kernel);

    /// Starts attacker processes after the victim has been spawned.
    fn launch(&self, kernel: &mut Kernel, victim: TaskId, victim_workload: Option<Workload>);
}

// ---------------------------------------------------------------------------
// Launch-time attacks
// ---------------------------------------------------------------------------

/// The shell attack (§IV-A1): the operator patches the shell to execute a
/// CPU-bound loop in the child between `fork()` and `execve()`. The loop's
/// time is charged to the victim's user time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShellAttack {
    /// CPU seconds of injected work (the paper injects a 2³⁴-iteration loop
    /// worth about 34 seconds).
    pub injected_secs: f64,
}

impl ShellAttack {
    /// The paper's configuration (≈34 s of injected work) scaled by `scale`.
    pub fn paper_default(scale: f64) -> ShellAttack {
        ShellAttack {
            injected_secs: 34.0 * scale,
        }
    }
}

impl Attack for ShellAttack {
    fn name(&self) -> &'static str {
        "shell"
    }
    fn class(&self) -> AttackClass {
        AttackClass::UserTimeInflation
    }
    fn required_privilege(&self) -> Privilege {
        Privilege::Environment
    }
    fn install(&self, kernel: &mut Kernel) {
        kernel.set_shell_injection(vec![(
            "shell-injected-loop".to_string(),
            secs_to_cycles(self.injected_secs),
        )]);
    }
    fn launch(&self, _kernel: &mut Kernel, _victim: TaskId, _workload: Option<Workload>) {}
}

/// The shared-library constructor attack (§IV-A2, Fig. 5): a malicious
/// library named in `LD_PRELOAD` runs an expensive constructor in the
/// victim's context before `main()`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreloadConstructorAttack {
    /// CPU seconds the constructor burns.
    pub constructor_secs: f64,
    /// CPU seconds the destructor burns at exit.
    pub destructor_secs: f64,
}

impl PreloadConstructorAttack {
    /// The paper's configuration (the same ≈34 s loop as the shell attack,
    /// now inside a constructor) scaled by `scale`.
    pub fn paper_default(scale: f64) -> PreloadConstructorAttack {
        PreloadConstructorAttack {
            constructor_secs: 34.0 * scale,
            destructor_secs: 0.0,
        }
    }

    /// Name of the malicious library.
    pub const LIBRARY: &'static str = "attack_preload.so";
}

impl Attack for PreloadConstructorAttack {
    fn name(&self) -> &'static str {
        "preload-constructor"
    }
    fn class(&self) -> AttackClass {
        AttackClass::UserTimeInflation
    }
    fn required_privilege(&self) -> Privilege {
        Privilege::Environment
    }
    fn install(&self, kernel: &mut Kernel) {
        kernel.libraries_mut().install(
            SharedLibrary::new(Self::LIBRARY)
                .with_constructor(secs_to_cycles(self.constructor_secs))
                .with_destructor(secs_to_cycles(self.destructor_secs))
                .injected(),
        );
        kernel.set_ld_preload(vec![Self::LIBRARY.to_string()]);
    }
    fn launch(&self, _kernel: &mut Kernel, _victim: TaskId, _workload: Option<Workload>) {}
}

/// The shared-library function-substitution attack (§IV-A2, Fig. 6): the
/// preloaded library interposes `malloc()` and `sqrt()`; every call first
/// executes attack code and then the genuine function, so the inflation is
/// amplified by the number of calls the victim makes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterpositionAttack {
    /// Extra work per interposed call, in microseconds.
    pub per_call_us: f64,
    /// The symbols to interpose.
    pub symbols: Vec<String>,
}

impl InterpositionAttack {
    /// The paper's configuration: fake `malloc` and `sqrt` with roughly
    /// 10 ms of attack code per call. The per-call cost is *not* scaled —
    /// the victim's call count already scales with the workload, which is
    /// exactly the amplification the paper points out.
    pub fn paper_default(_scale: f64) -> InterpositionAttack {
        InterpositionAttack {
            per_call_us: 10_000.0,
            symbols: vec!["malloc".to_string(), "sqrt".to_string()],
        }
    }

    /// Name of the malicious library.
    pub const LIBRARY: &'static str = "attack_interpose.so";
}

impl Attack for InterpositionAttack {
    fn name(&self) -> &'static str {
        "interposition"
    }
    fn class(&self) -> AttackClass {
        AttackClass::UserTimeInflation
    }
    fn required_privilege(&self) -> Privilege {
        Privilege::Environment
    }
    fn install(&self, kernel: &mut Kernel) {
        let per_call = CpuFrequency::E7200.cycles_for(Nanos::from_secs_f64(self.per_call_us / 1e6));
        let mut lib = SharedLibrary::new(Self::LIBRARY).injected();
        for s in &self.symbols {
            lib = lib.with_symbol(s.clone(), per_call);
        }
        kernel.libraries_mut().install(lib);
        kernel.set_ld_preload(vec![Self::LIBRARY.to_string()]);
    }
    fn launch(&self, _kernel: &mut Kernel, _victim: TaskId, _workload: Option<Workload>) {}
}

// ---------------------------------------------------------------------------
// Runtime attacks
// ---------------------------------------------------------------------------

/// The process-scheduling attack (§IV-B1, Figs. 7–8): a fork/wait attacker
/// relinquishes the CPU many times per jiffy so the timer tick almost always
/// samples the victim, and whole jiffies that the attacker actually consumed
/// are charged to the victim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulingAttack {
    /// The attacker's nice value (the paper sweeps 0 to −20; negative values
    /// need root).
    pub nice: i8,
    /// Number of fork/wait cycles.
    pub forks: u64,
}

impl SchedulingAttack {
    /// The paper's configuration (2²¹ forks) scaled by `scale`.
    pub fn paper_default(scale: f64, nice: i8) -> SchedulingAttack {
        SchedulingAttack {
            nice,
            forks: ((1u64 << 21) as f64 * scale).round().max(1.0) as u64,
        }
    }
}

impl Attack for SchedulingAttack {
    fn name(&self) -> &'static str {
        "scheduling"
    }
    fn class(&self) -> AttackClass {
        AttackClass::Misattribution
    }
    fn required_privilege(&self) -> Privilege {
        if self.nice < 0 {
            Privilege::Root
        } else {
            Privilege::None
        }
    }
    fn install(&self, _kernel: &mut Kernel) {}
    fn launch(&self, kernel: &mut Kernel, _victim: TaskId, _workload: Option<Workload>) {
        let attacker = ForkAttacker::new(self.forks, 40.0, 20.0, self.nice);
        kernel.spawn_raw(Box::new(attacker), self.nice);
    }
}

/// The execution-thrashing attack (§IV-B2, Fig. 9): ptrace + hardware
/// breakpoint on a hot variable force a stop/resume cycle per access,
/// inflating the victim's system time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThrashingAttack {
    /// Nice value of the tracer process.
    pub tracer_nice: i8,
}

impl ThrashingAttack {
    /// The paper's configuration.
    pub fn paper_default() -> ThrashingAttack {
        ThrashingAttack { tracer_nice: 0 }
    }
}

impl Attack for ThrashingAttack {
    fn name(&self) -> &'static str {
        "thrashing"
    }
    fn class(&self) -> AttackClass {
        AttackClass::SystemTimeInflation
    }
    fn required_privilege(&self) -> Privilege {
        Privilege::Ptrace
    }
    fn install(&self, _kernel: &mut Kernel) {}
    fn launch(&self, kernel: &mut Kernel, victim: TaskId, workload: Option<Workload>) {
        let addr = workload
            .map(|w| w.hot_variable_addr())
            .unwrap_or(0x6000_0000);
        kernel.spawn_raw(Box::new(Thrasher::new(victim, addr)), self.tracer_nice);
    }
}

/// The interrupt-flooding attack (§IV-B3, Fig. 10): a remote machine floods
/// the NIC with junk packets; the receive handler's time is charged to the
/// victim's system time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterruptFloodAttack {
    /// Junk packets per second.
    pub packets_per_sec: f64,
}

impl InterruptFloodAttack {
    /// The paper's configuration: a steady junk-packet stream from another
    /// PC (we use 20 000 packets/s, about 12 % of the CPU in handler time).
    pub fn paper_default() -> InterruptFloodAttack {
        InterruptFloodAttack {
            packets_per_sec: 20_000.0,
        }
    }
}

impl Attack for InterruptFloodAttack {
    fn name(&self) -> &'static str {
        "interrupt-flood"
    }
    fn class(&self) -> AttackClass {
        AttackClass::SystemTimeInflation
    }
    fn required_privilege(&self) -> Privilege {
        Privilege::RemoteHost
    }
    fn install(&self, kernel: &mut Kernel) {
        kernel.set_nic_flood(NicFlood::steady(self.packets_per_sec));
    }
    fn launch(&self, _kernel: &mut Kernel, _victim: TaskId, _workload: Option<Workload>) {}
}

/// The exception-flooding attack (§IV-B4, Fig. 11): a memory hog exhausts
/// physical memory so the victim's memory accesses fault and the fault
/// service (plus swap-in) is billed to the victim.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExceptionFloodAttack {
    /// Hog size as a multiple of physical memory.
    pub overcommit_factor: f64,
    /// How long the hog keeps re-dirtying memory, in victim-lifetime
    /// seconds.
    pub duration_secs: f64,
    /// Nice value of the hog (the paper's hog competes as an ordinary
    /// process).
    pub hog_nice: i8,
}

impl ExceptionFloodAttack {
    /// The paper's configuration: request more than the 2 GiB of physical
    /// memory and keep writing/reading it while the victim runs for about
    /// `victim_secs`.
    pub fn paper_default(victim_secs: f64) -> ExceptionFloodAttack {
        ExceptionFloodAttack {
            overcommit_factor: 1.5,
            duration_secs: victim_secs,
            hog_nice: 0,
        }
    }
}

impl Attack for ExceptionFloodAttack {
    fn name(&self) -> &'static str {
        "exception-flood"
    }
    fn class(&self) -> AttackClass {
        AttackClass::SystemTimeInflation
    }
    fn required_privilege(&self) -> Privilege {
        Privilege::None
    }
    fn install(&self, _kernel: &mut Kernel) {}
    fn launch(&self, kernel: &mut Kernel, _victim: TaskId, _workload: Option<Workload>) {
        let physical = kernel.config().physical_pages;
        let total = (physical as f64 * self.overcommit_factor) as u64;
        let hog = MemoryHog::new(
            total,
            physical / 8,
            (self.duration_secs * 100.0).max(1.0) as u64,
        );
        kernel.spawn_raw(Box::new(hog), self.hog_nice);
    }
}

/// Convenience: every attack at its paper-default configuration, scaled by
/// `scale`, for iteration in the comparison experiment (§V-C).
pub fn paper_attack_suite(scale: f64, victim_secs: f64) -> Vec<Box<dyn Attack>> {
    vec![
        Box::new(ShellAttack::paper_default(scale)),
        Box::new(PreloadConstructorAttack::paper_default(scale)),
        Box::new(InterpositionAttack::paper_default(scale)),
        Box::new(SchedulingAttack::paper_default(scale, -10)),
        Box::new(ThrashingAttack::paper_default()),
        Box::new(InterruptFloodAttack::paper_default()),
        Box::new(ExceptionFloodAttack::paper_default(victim_secs)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustmeter_core::SchemeKind;
    use trustmeter_kernel::KernelConfig;

    const SCALE: f64 = 0.005;

    fn run_with(attack: &dyn Attack, workload: Workload) -> (f64, f64, f64, f64) {
        // Returns (clean utime, clean stime, attacked utime, attacked stime)
        // in seconds under tick accounting.
        let cfg = KernelConfig::paper_machine().with_seed(11);
        let mut clean = Kernel::new(cfg.clone());
        let v = clean.spawn_process(workload.build(SCALE), 0);
        let clean_result = clean.run();
        let cu = clean_result.process(v).unwrap().billed();

        let mut attacked = Kernel::new(cfg);
        attack.install(&mut attacked);
        let v2 = attacked.spawn_process(workload.build(SCALE), 0);
        attack.launch(&mut attacked, v2, Some(workload));
        let attacked_result = attacked.run();
        let au = attacked_result.process(v2).unwrap().billed();
        let f = clean_result.frequency;
        (
            cu.utime_secs(f),
            cu.stime_secs(f),
            au.utime_secs(f),
            au.stime_secs(f),
        )
    }

    #[test]
    fn shell_attack_inflates_user_time_only() {
        let (cu, cs, au, as_) = run_with(&ShellAttack::paper_default(SCALE), Workload::LoopO);
        assert!(au > cu + 0.1, "user time should grow: {cu} -> {au}");
        assert!(
            (as_ - cs).abs() < 0.05,
            "system time should be unaffected: {cs} -> {as_}"
        );
    }

    #[test]
    fn preload_attack_matches_shell_attack_shape() {
        let (cu, _, au, _) = run_with(
            &PreloadConstructorAttack::paper_default(SCALE),
            Workload::Pi,
        );
        let injected = 34.0 * SCALE;
        let growth = au - cu;
        assert!(
            (growth - injected).abs() / injected < 0.25,
            "growth {growth} should be close to the injected {injected}"
        );
    }

    #[test]
    fn interposition_attack_amplifies_with_call_count() {
        let (cu, _, au, _) = run_with(
            &InterpositionAttack::paper_default(SCALE),
            Workload::Whetstone,
        );
        assert!(
            au > cu * 1.1,
            "interposition should visibly inflate: {cu} -> {au}"
        );
    }

    #[test]
    fn scheduling_attack_overcharges_whetstone_but_not_its_ground_truth() {
        let cfg = KernelConfig::paper_machine().with_seed(3);
        let attack = SchedulingAttack::paper_default(SCALE, -10);
        let mut kernel = Kernel::new(cfg);
        let victim = kernel.spawn_process(Workload::Whetstone.build(SCALE), 0);
        attack.launch(&mut kernel, victim, Some(Workload::Whetstone));
        let result = kernel.run();
        let p = result.process(victim).unwrap();
        let billed = p.usage(SchemeKind::Tick).total().as_f64();
        let truth = p.usage(SchemeKind::Tsc).total().as_f64();
        assert!(
            billed > truth * 1.15,
            "tick accounting should overcharge the victim: billed {billed} vs truth {truth}"
        );
    }

    #[test]
    fn thrashing_attack_inflates_system_time() {
        // Compare ground-truth (TSC) system time, which captures the debug
        // exception and signal-delivery work exactly even at small scale.
        let cfg = KernelConfig::paper_machine().with_seed(11);
        let mut clean = Kernel::new(cfg.clone());
        let v1 = clean.spawn_process(Workload::Whetstone.build(SCALE), 0);
        let r1 = clean.run();
        let mut attacked = Kernel::new(cfg);
        let attack = ThrashingAttack::paper_default();
        let v2 = attacked.spawn_process(Workload::Whetstone.build(SCALE), 0);
        attack.launch(&mut attacked, v2, Some(Workload::Whetstone));
        let r2 = attacked.run();
        let clean_stime = r1
            .process(v1)
            .unwrap()
            .usage(SchemeKind::Tsc)
            .stime_secs(r1.frequency);
        let attacked_stime = r2
            .process(v2)
            .unwrap()
            .usage(SchemeKind::Tsc)
            .stime_secs(r2.frequency);
        assert!(
            attacked_stime > clean_stime + 0.005,
            "thrashing should add system time: {clean_stime} -> {attacked_stime}"
        );
        assert!(
            r2.stats.debug_traps > 500,
            "traps: {}",
            r2.stats.debug_traps
        );
        // The billed (tick) total also grows.
        let clean_total = r1.process(v1).unwrap().billed().total_secs(r1.frequency);
        let attacked_total = r2.process(v2).unwrap().billed().total_secs(r2.frequency);
        assert!(attacked_total > clean_total);
    }

    #[test]
    fn interrupt_flood_inflates_system_time_slightly() {
        let (cu, cs, au, as_) = run_with(&InterruptFloodAttack::paper_default(), Workload::LoopO);
        assert!(as_ > cs, "stime should grow: {cs} -> {as_}");
        // The effect is present but modest compared to the launch-time
        // attacks (paper: "their system time are slightly increased").
        assert!((au + as_) - (cu + cs) < 34.0 * SCALE);
    }

    #[test]
    fn exception_flood_inflates_system_time() {
        // Use a smaller machine so the hog can exhaust memory quickly.
        let cfg = KernelConfig::paper_machine()
            .with_physical_pages(64 * 1024)
            .with_seed(5);
        let attack = ExceptionFloodAttack::paper_default(3.0);
        let mut clean = Kernel::new(cfg.clone());
        let v1 = clean.spawn_process(Workload::Pi.build(SCALE), 0);
        let r1 = clean.run();
        let mut attacked = Kernel::new(cfg);
        attack.install(&mut attacked);
        let v2 = attacked.spawn_process(Workload::Pi.build(SCALE), 0);
        attack.launch(&mut attacked, v2, Some(Workload::Pi));
        let r2 = attacked.run();
        let cs = r1.process(v1).unwrap().billed().stime_secs(r1.frequency);
        let as_ = r2.process(v2).unwrap().billed().stime_secs(r2.frequency);
        assert!(
            as_ > cs,
            "page-fault flood should add system time: {cs} -> {as_}"
        );
        assert!(r2.stats.major_faults > 0);
    }

    #[test]
    fn attack_metadata_is_consistent() {
        for attack in paper_attack_suite(0.01, 1.0) {
            assert!(!attack.name().is_empty());
            // Launch-time attacks inflate user time; event floods inflate
            // system time.
            match attack.name() {
                "shell" | "preload-constructor" | "interposition" => {
                    assert_eq!(attack.class(), AttackClass::UserTimeInflation)
                }
                "thrashing" | "interrupt-flood" | "exception-flood" => {
                    assert_eq!(attack.class(), AttackClass::SystemTimeInflation)
                }
                "scheduling" => assert_eq!(attack.class(), AttackClass::Misattribution),
                other => panic!("unknown attack {other}"),
            }
        }
        assert_eq!(
            SchedulingAttack::paper_default(1.0, -5).required_privilege(),
            Privilege::Root
        );
        assert_eq!(
            SchedulingAttack::paper_default(1.0, 0).required_privilege(),
            Privilege::None
        );
        assert_eq!(format!("{}", Privilege::Ptrace), "ptrace permission");
    }
}
