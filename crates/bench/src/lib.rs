//! # trustmeter-bench
//!
//! Criterion benchmark harness for the trustmeter workspace. The benches
//! live under `benches/`:
//!
//! * `figures` — one benchmark group per paper figure (Figs. 4–11), running
//!   the corresponding experiment at a small scale so the full suite stays
//!   fast while preserving every ratio.
//! * `ablations` — the HZ sweep, scheduler choice and flood-rate sweep
//!   studies plus the §V-C comparison and §VI-B defense replays.
//! * `substrate` — microbenchmarks of the building blocks (event queue,
//!   SHA-256, MD5, accounting schemes, a whole small kernel run) so
//!   performance regressions in the simulator itself are visible.
//!
//! This library crate only exposes the shared configuration helpers used by
//! those benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use trustmeter_experiments::ExperimentConfig;

/// The workload scale used by the figure benches. Small enough that one
/// iteration takes well under a second, large enough that every attack still
/// produces a measurable effect.
pub const BENCH_SCALE: f64 = 0.001;

/// The experiment configuration shared by the benches.
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig {
        scale: BENCH_SCALE,
        seed: 0xbe_c4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_small_scale() {
        let cfg = bench_config();
        assert!(cfg.scale <= 0.01);
        assert!(cfg.scale > 0.0);
    }
}
