//! A from-scratch SHA-256 implementation (FIPS 180-4).
//!
//! Used for image measurement, PCR extension, execution witnesses and
//! attestation MACs. The implementation favours clarity over speed; it is
//! not intended to be constant-time and must not be used to protect real
//! secrets — inside the simulator that is irrelevant.

/// Streaming SHA-256 hasher.
///
/// # Example
///
/// ```
/// use trustmeter_core::Sha256;
/// let digest = Sha256::digest(b"abc");
/// assert_eq!(
///     Sha256::to_hex(&digest),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Convenience: hashes `data` in one call.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Feeds more data into the hasher.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.process_block(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finishes the computation and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update_padding(&[0x80]);
        while self.buffer_len != 56 {
            self.update_padding(&[0]);
        }
        self.update_padding(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Like `update` but without advancing `total_len` (used only for
    /// padding bytes).
    fn update_padding(&mut self, data: &[u8]) {
        for &b in data {
            self.buffer[self.buffer_len] = b;
            self.buffer_len += 1;
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            }
        }
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }

    /// Renders a digest as lowercase hex.
    pub fn to_hex(digest: &[u8; 32]) -> String {
        let mut s = String::with_capacity(64);
        for b in digest {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Computes an HMAC-SHA256 MAC (RFC 2104 construction).
    pub fn hmac(key: &[u8], message: &[u8]) -> [u8; 32] {
        let mut key_block = [0u8; 64];
        if key.len() > 64 {
            let kd = Sha256::digest(key);
            key_block[..32].copy_from_slice(&kd);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut inner = Sha256::new();
        let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
        inner.update(&ipad);
        inner.update(message);
        let inner_digest = inner.finalize();
        let mut outer = Sha256::new();
        let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
        outer.update(&opad);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string_vector() {
        assert_eq!(
            Sha256::to_hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            Sha256::to_hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            Sha256::to_hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn long_repeated_vector() {
        // One million 'a' characters (FIPS 180-4 test vector).
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            Sha256::to_hex(&Sha256::digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(10_000).collect();
        let oneshot = Sha256::digest(&data);
        let mut h = Sha256::new();
        for chunk in data.chunks(17) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn hmac_rfc4231_case1() {
        let key = [0x0b; 20];
        let mac = Sha256::hmac(&key, b"Hi There");
        assert_eq!(
            Sha256::to_hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_rfc4231_case2() {
        let mac = Sha256::hmac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            Sha256::to_hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_long_key_is_hashed() {
        let key = vec![0xaa; 131];
        let mac = Sha256::hmac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            Sha256::to_hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_inputs_different_digests() {
        assert_ne!(Sha256::digest(b"hello"), Sha256::digest(b"hellp"));
    }
}
