//! A Rust port of the classic Whetstone floating-point benchmark kernel.
//!
//! The paper's third victim program, *W*, is the netlib `whetstone.c`
//! benchmark. This module reimplements its module structure (array
//! elements, trigonometric functions, procedure calls, integer arithmetic,
//! standard functions) closely enough that the per-iteration operation mix
//! — and therefore the simulated program's op stream — is faithful, and the
//! final values can be sanity-checked for numerical stability.

/// Result of one whetstone run: the classic benchmark's checkpoint values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhetstoneResult {
    /// Final value of the `e1` array elements (module 2).
    pub e1_sum: f64,
    /// Final `x` from the trig module (module 7).
    pub x_trig: f64,
    /// Final `x` from the standard-functions module (module 11).
    pub x_std: f64,
    /// Total simulated "Whetstone instructions" executed.
    pub instructions: u64,
}

/// Runs `loops` iterations of the Whetstone kernel (one "major loop" each).
///
/// # Example
///
/// ```
/// use trustmeter_workloads::native::whetstone;
/// let r = whetstone::run(10);
/// assert!(r.x_trig.is_finite());
/// assert!(r.instructions > 0);
/// ```
pub fn run(loops: u32) -> WhetstoneResult {
    let t = 0.499975f64;
    let t1 = 0.50025f64;
    let t2 = 2.0f64;

    // Scale factors from the original benchmark.
    let n1 = 0u32;
    let n2 = 12 * loops;
    let n3 = 14 * loops;
    let n6 = 210 * loops;
    let n7 = 32 * loops;
    let n8 = 899 * loops;
    let n10 = 0u32;
    let n11 = 93 * loops;

    let mut e1 = [1.0f64, -1.0, -1.0, -1.0];
    let mut instructions: u64 = 0;

    // Module 2: array elements.
    for _ in 0..n2 {
        e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t;
        e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t;
        e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t;
        e1[3] = (-e1[0] + e1[1] + e1[2] + e1[3]) * t;
        instructions += 4;
    }

    // Module 3: array as parameter (pa procedure).
    for _ in 0..n3 {
        pa(&mut e1, t, t2);
        instructions += 1;
    }

    // Module 6: integer arithmetic.
    let mut j = 1i64;
    let mut k = 2i64;
    let mut l = 3i64;
    for _ in 0..n6 {
        j = j * (k - j) * (l - k);
        k = l * k - (l - j) * k;
        l = (l - k) * (k + j);
        e1[(l.rem_euclid(2)) as usize] = (j + k + l) as f64;
        e1[(k.rem_euclid(2)) as usize + 1] = (j * k * l) as f64;
        // Keep the integers bounded the way the original benchmark's values
        // stay bounded (they cycle); clamp to avoid overflow in long runs.
        j = j.rem_euclid(1 << 20);
        k = k.rem_euclid(1 << 20).max(1);
        l = l.rem_euclid(1 << 20).max(1);
        instructions += 5;
    }

    // Module 7: trigonometric functions.
    let mut x = 0.5f64;
    let mut y = 0.5f64;
    for _ in 0..n7 {
        x = t * ((x * y).cos() + (x * y).sin() - x.sin() * y.sin()).atan() * t2;
        y = t * ((x * y).cos() + (x * y).sin() - x.sin() * y.sin()).atan() * t2;
        instructions += 2;
    }
    let x_trig = x;

    // Module 8: procedure calls.
    let mut px = 1.0f64;
    let mut py = 1.0f64;
    let mut pz = 1.0f64;
    for _ in 0..n8 {
        p3(&mut px, &mut py, &mut pz, t, t1, t2);
        instructions += 1;
    }

    // Module 11: standard functions.
    let mut xs = 0.75f64;
    for _ in 0..n11 {
        xs = (xs.ln() / t1).exp().sqrt();
        instructions += 3;
    }

    let _ = (n1, n10);
    WhetstoneResult {
        e1_sum: e1.iter().sum(),
        x_trig,
        x_std: xs,
        instructions,
    }
}

fn pa(e: &mut [f64; 4], t: f64, t2: f64) {
    for _ in 0..6 {
        e[0] = (e[0] + e[1] + e[2] - e[3]) * t;
        e[1] = (e[0] + e[1] - e[2] + e[3]) * t;
        e[2] = (e[0] - e[1] + e[2] + e[3]) * t;
        e[3] = (-e[0] + e[1] + e[2] + e[3]) / t2;
    }
}

fn p3(x: &mut f64, y: &mut f64, z: &mut f64, t: f64, t1: f64, t2: f64) {
    let x1 = t * (*z + *x);
    let y1 = t * (x1 + *y);
    *x = x1;
    *y = y1;
    *z = (x1 + y1) / t2;
    let _ = t1;
}

/// Number of library-function calls (`sin`, `cos`, `atan`, `sqrt`, `exp`,
/// `ln`) per major loop — used to derive the simulated program's `LibCall`
/// mix.
pub const LIBM_CALLS_PER_LOOP: u64 = 32 * 5 + 93 * 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_finite_and_stable() {
        let r = run(5);
        assert!(r.e1_sum.is_finite());
        assert!(r.x_trig.is_finite());
        assert!(r.x_std.is_finite());
        assert!(r.instructions > 0);
        // Deterministic: same input, same output.
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn std_function_module_converges_near_one() {
        // x = sqrt(exp(ln(x)/t1)) converges to a fixed point close to 1.
        let r = run(20);
        assert!((r.x_std - 1.0).abs() < 0.2, "x_std = {}", r.x_std);
    }

    #[test]
    fn instruction_count_scales_linearly() {
        let r1 = run(2);
        let r2 = run(4);
        assert_eq!(r2.instructions, r1.instructions * 2);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn libm_call_constant_is_positive() {
        assert!(LIBM_CALLS_PER_LOOP > 0);
    }
}
