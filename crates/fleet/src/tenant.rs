//! Tenants, accounts and ledgers: turning per-run metering results into
//! per-customer bills.
//!
//! A [`Tenant`] is one customer of the metered platform, billed through its
//! own [`RateCard`]. A [`TenantLedger`] accumulates every run the tenant
//! submitted — the provider-billed CPU time, the TSC ground truth, and the
//! [`Invoice`]s both produce — so the overcharge the paper quantifies
//! per-run becomes visible at the monthly-bill granularity where customers
//! actually notice it. The [`Ledger`] holds one account per tenant with a
//! deterministic iteration order.

use crate::executor::JobId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use trustmeter_core::{CpuTime, Invoice, RateCard};
use trustmeter_sim::CpuFrequency;

/// Identifies one tenant (customer) of the metered platform.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// One customer: identity plus pricing.
///
/// # Examples
///
/// ```
/// use trustmeter_fleet::{RateCard, Tenant, TenantId};
///
/// let tenant = Tenant::new(TenantId(7), "acme", RateCard::per_cpu_hour(0.10));
/// assert_eq!(tenant.id.to_string(), "tenant-7");
/// assert_eq!(tenant.name, "acme");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tenant {
    /// The tenant's id.
    pub id: TenantId,
    /// Human-readable name.
    pub name: String,
    /// How this tenant's CPU time is priced.
    pub rate_card: RateCard,
}

impl Tenant {
    /// Creates a tenant with the given pricing.
    pub fn new(id: TenantId, name: impl Into<String>, rate_card: RateCard) -> Tenant {
        Tenant {
            id,
            name: name.into(),
            rate_card,
        }
    }
}

/// The set of known tenants, with a deterministic order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantDirectory {
    tenants: BTreeMap<TenantId, Tenant>,
}

impl TenantDirectory {
    /// An empty directory.
    pub fn new() -> TenantDirectory {
        TenantDirectory::default()
    }

    /// Registers a tenant, replacing any previous registration with the
    /// same id.
    pub fn register(&mut self, tenant: Tenant) {
        self.tenants.insert(tenant.id, tenant);
    }

    /// Looks up a tenant.
    pub fn get(&self, id: TenantId) -> Option<&Tenant> {
        self.tenants.get(&id)
    }

    /// Iterates tenants in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Tenant> {
        self.tenants.values()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }
}

/// One tenant's accumulated account over many runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantLedger {
    /// Whose account this is.
    pub tenant: TenantId,
    /// Number of runs posted.
    pub runs: u64,
    /// Total CPU time the provider billed (commodity tick accounting).
    pub billed: CpuTime,
    /// Total TSC ground-truth CPU time.
    pub truth: CpuTime,
    /// Total process-aware accounting reading.
    pub process_aware: CpuTime,
    /// Every posted invoice, in posting order: `(job, billed invoice,
    /// ground-truth invoice)`.
    pub invoices: Vec<(JobId, Invoice, Invoice)>,
    /// Sum of the billed invoice totals (currency).
    pub billed_charge: f64,
    /// Sum of the ground-truth invoice totals (currency).
    pub truth_charge: f64,
    /// Runs the auditor flagged with at least one anomaly.
    pub flagged_runs: u64,
}

impl TenantLedger {
    /// An empty account for `tenant`.
    pub fn new(tenant: TenantId) -> TenantLedger {
        TenantLedger {
            tenant,
            runs: 0,
            billed: CpuTime::ZERO,
            truth: CpuTime::ZERO,
            process_aware: CpuTime::ZERO,
            invoices: Vec::new(),
            billed_charge: 0.0,
            truth_charge: 0.0,
            flagged_runs: 0,
        }
    }

    /// Posts one run: the usage readings plus the invoices the tenant's
    /// rate card produced for the billed and ground-truth usage.
    pub fn post(
        &mut self,
        job: JobId,
        billed: CpuTime,
        truth: CpuTime,
        process_aware: CpuTime,
        billed_invoice: Invoice,
        truth_invoice: Invoice,
    ) {
        self.runs += 1;
        self.billed += billed;
        self.truth += truth;
        self.process_aware += process_aware;
        self.billed_charge += billed_invoice.total;
        self.truth_charge += truth_invoice.total;
        self.invoices.push((job, billed_invoice, truth_invoice));
    }

    /// Marks one posted run as anomalous.
    pub fn flag(&mut self) {
        self.flagged_runs += 1;
    }

    /// How much more the tenant was charged than the ground truth warrants,
    /// in currency units (never negative).
    pub fn overcharge(&self) -> f64 {
        (self.billed_charge - self.truth_charge).max(0.0)
    }

    /// billed currency / ground-truth currency (1.0 for an empty account).
    pub fn overcharge_ratio(&self) -> f64 {
        if self.truth_charge == 0.0 {
            if self.billed_charge == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.billed_charge / self.truth_charge
        }
    }

    /// Sum of the posted billed-invoice totals — by construction equal to
    /// [`TenantLedger::billed_charge`]; exposed for auditing the ledger
    /// arithmetic itself.
    pub fn invoice_sum(&self) -> f64 {
        self.invoices
            .iter()
            .map(|(_, billed, _)| billed.total)
            .sum()
    }
}

impl fmt::Display for TenantLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} runs, billed {:.4}, truth {:.4} ({:.2}x, {} flagged)",
            self.tenant,
            self.runs,
            self.billed_charge,
            self.truth_charge,
            self.overcharge_ratio(),
            self.flagged_runs,
        )
    }
}

/// All tenant accounts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Ledger {
    accounts: BTreeMap<TenantId, TenantLedger>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// Posts one run for `tenant`, pricing both usage readings through the
    /// tenant's `rate_card` on a machine of frequency `freq`. Returns the
    /// `(billed, truth)` invoices exactly as posted, so callers (the
    /// fleet's journal receipts) can persist what the ledger accumulated
    /// without re-deriving it.
    #[allow(clippy::too_many_arguments)]
    pub fn post_run(
        &mut self,
        tenant: TenantId,
        rate_card: &RateCard,
        freq: CpuFrequency,
        job: JobId,
        billed: CpuTime,
        truth: CpuTime,
        process_aware: CpuTime,
    ) -> (Invoice, Invoice) {
        let billed_invoice = rate_card.invoice(billed, freq);
        let truth_invoice = rate_card.invoice(truth, freq);
        self.account_mut(tenant).post(
            job,
            billed,
            truth,
            process_aware,
            billed_invoice.clone(),
            truth_invoice.clone(),
        );
        (billed_invoice, truth_invoice)
    }

    /// The account for `tenant`, created empty on first use.
    pub fn account_mut(&mut self, tenant: TenantId) -> &mut TenantLedger {
        self.accounts
            .entry(tenant)
            .or_insert_with(|| TenantLedger::new(tenant))
    }

    /// The account for `tenant`, if any runs were posted.
    pub fn account(&self, tenant: TenantId) -> Option<&TenantLedger> {
        self.accounts.get(&tenant)
    }

    /// Iterates accounts in tenant-id order.
    pub fn iter(&self) -> impl Iterator<Item = &TenantLedger> {
        self.accounts.values()
    }

    /// Number of accounts with posted runs.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// Whether no runs were posted at all.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Total billed currency across all tenants.
    pub fn total_billed_charge(&self) -> f64 {
        self.accounts.values().map(|a| a.billed_charge).sum()
    }

    /// Total ground-truth currency across all tenants.
    pub fn total_truth_charge(&self) -> f64 {
        self.accounts.values().map(|a| a.truth_charge).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustmeter_sim::{Cycles, Nanos};

    fn freq() -> CpuFrequency {
        CpuFrequency::from_mhz(1000)
    }

    fn secs(s: f64) -> Cycles {
        freq().cycles_for(Nanos::from_secs_f64(s))
    }

    #[test]
    fn ledger_totals_equal_sum_of_invoices() {
        let card = RateCard::per_cpu_second(0.01);
        let mut ledger = Ledger::new();
        let tenant = TenantId(7);
        for i in 0..10u64 {
            let billed = CpuTime::user(secs(10.0 + i as f64));
            let truth = CpuTime::user(secs(10.0));
            ledger.post_run(tenant, &card, freq(), JobId(i), billed, truth, truth);
        }
        let account = ledger.account(tenant).expect("account exists");
        assert_eq!(account.runs, 10);
        assert_eq!(account.invoices.len(), 10);
        assert!((account.billed_charge - account.invoice_sum()).abs() < 1e-12);
        // 10×10s truth, billed adds 0+1+..+9 = 45 extra seconds at $0.01/s.
        assert!((account.truth_charge - 1.0).abs() < 1e-9);
        assert!((account.overcharge() - 0.45).abs() < 1e-9);
        assert!(account.overcharge_ratio() > 1.4);
    }

    #[test]
    fn accounts_are_separate_and_ordered() {
        let card = RateCard::per_cpu_second(1.0);
        let mut ledger = Ledger::new();
        for id in [3u32, 1, 2] {
            ledger.post_run(
                TenantId(id),
                &card,
                freq(),
                JobId(id as u64),
                CpuTime::user(secs(1.0)),
                CpuTime::user(secs(1.0)),
                CpuTime::user(secs(1.0)),
            );
        }
        let order: Vec<u32> = ledger.iter().map(|a| a.tenant.0).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(ledger.len(), 3);
        assert!((ledger.total_billed_charge() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_account_ratio_is_one() {
        let account = TenantLedger::new(TenantId(1));
        assert_eq!(account.overcharge_ratio(), 1.0);
        assert_eq!(account.overcharge(), 0.0);
    }

    #[test]
    fn directory_registers_and_orders() {
        let mut dir = TenantDirectory::new();
        assert!(dir.is_empty());
        dir.register(Tenant::new(
            TenantId(2),
            "beta",
            RateCard::per_cpu_hour(0.2),
        ));
        dir.register(Tenant::new(
            TenantId(1),
            "alpha",
            RateCard::per_cpu_hour(0.1),
        ));
        assert_eq!(dir.len(), 2);
        assert_eq!(dir.get(TenantId(1)).unwrap().name, "alpha");
        let names: Vec<&str> = dir.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta"]);
    }
}
