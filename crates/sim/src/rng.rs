//! Deterministic random number generation for simulations.
//!
//! Every source of randomness in the simulated kernel and workloads draws
//! from a [`SimRng`] seeded from the scenario configuration, so that a whole
//! experiment is reproducible bit-for-bit. The generator is SplitMix64 —
//! small, fast, and statistically adequate for workload jitter (it is not a
//! cryptographic RNG and must not be used as one).

use serde::{Deserialize, Serialize};

/// A small deterministic pseudo-random number generator (SplitMix64).
///
/// # Example
///
/// ```
/// use trustmeter_sim::SimRng;
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range(10, 20);
/// assert!((10..20).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Two generators built from the same
    /// seed produce identical streams.
    pub fn seed_from(seed: u64) -> SimRng {
        SimRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range requires lo < hi (got {lo}..{hi})");
        lo + self.next_u64() % (hi - lo)
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// Samples an exponentially distributed value with the given mean.
    /// Useful for Poisson inter-arrival times (e.g. interrupt floods).
    ///
    /// # Panics
    /// Panics if `mean` is not positive and finite.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        let u = loop {
            let u = self.gen_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Forks a new independent generator deterministically derived from this
    /// one (used to give each process its own stream).
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }
}

impl Default for SimRng {
    fn default() -> Self {
        SimRng::seed_from(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = SimRng::seed_from(9);
        for _ in 0..1000 {
            let x = r.gen_range(5, 15);
            assert!((5..15).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn range_rejects_empty() {
        SimRng::seed_from(0).gen_range(3, 3);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from(77);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut r = SimRng::seed_from(5);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn exp_mean_is_roughly_right() {
        let mut r = SimRng::seed_from(42);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| r.gen_exp(mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() < 0.25, "observed mean {observed}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::seed_from(11);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
