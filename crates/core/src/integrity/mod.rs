//! Trust properties: source integrity and execution integrity.
//!
//! Paper §VI-B argues that a trustworthy metering platform needs, besides
//! fine-grained metering, two integrity properties:
//!
//! * **Source integrity** — only the expected code (the user's program plus
//!   the standard subroutines it legitimately needs) executes in the context
//!   of the user's process. The shell attack and the shared-library attacks
//!   violate this property. We provide a TPM-style *measured launch*: every
//!   image that enters the process context (executable, shared library,
//!   constructor, interposed symbol, shell-injected code) is hashed into a
//!   [`MeasurementLog`] and folded into a [`PcrBank`]; a verifier compares
//!   the log against a whitelist and produces a [`SourceIntegrityReport`].
//! * **Execution integrity** — the control flow of the program is not
//!   tampered with. We provide an [`ExecutionWitness`] hash chain over the
//!   executed basic-block/op stream that a verifier can compare against the
//!   expected chain from a reference execution.
//!
//! Hashing uses the crate's own [`Sha256`] implementation (no external
//! crypto dependency), validated against FIPS 180-4 test vectors.

mod measurement;
mod sha256;
mod witness;

pub use measurement::{
    Digest, ImageKind, MeasuredImage, MeasurementLog, PcrBank, SourceIntegrityReport,
};
pub use sha256::Sha256;
pub use witness::{ExecutionWitness, WitnessMismatch};
